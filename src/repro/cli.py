"""Command-line interface: ``repro-dls`` / ``python -m repro``.

Subcommands::

    repro-dls list                         # the paper's artifacts
    repro-dls run fig5 --runs 10           # regenerate one artifact
    repro-dls techniques                   # registered DLS techniques
    repro-dls backends                     # simulation backends + fallbacks
    repro-dls schedule --technique gss --n 1000 --p 4
    repro-dls simulate --technique fac2 --n 4096 --p 16 --dist exponential
    repro-dls stats journal.jsonl          # summarise a --trace journal
    repro-dls trace-export journal.jsonl --out trace.json   # Perfetto
    repro-dls cache stats ~/.repro-cache   # result-cache inspection
    repro-dls scenarios list               # perturbation-scenario presets
    repro-dls serve --port 8787            # SimAS advisor HTTP service
    repro-dls figures --quick --check      # artifact pipeline + drift check

The ``--simulator`` choices everywhere are the registered simulation
backends (:mod:`repro.backends`); an unknown name fails with the list of
registered backends.  ``--trace FILE`` writes a JSONL run journal,
``--metrics FILE`` exports campaign metrics (Prometheus text for
``.prom``/``.txt``, JSON otherwise), and ``--progress`` renders live
heartbeats to stderr.

``--cache DIR`` serves repeat runs from the content-addressed result
cache (:mod:`repro.cache`) and stores fresh ones; the ``REPRO_CACHE``
environment variable supplies a default directory and ``--no-cache``
turns caching off regardless.  ``--cache-verify F`` re-simulates the
fraction ``F`` of cache hits and fails loudly if a stored result
diverges from a fresh one.

``--scenario NAME|FILE`` (run/simulate/campaign) perturbs the simulated
machine with a :mod:`repro.scenarios` descriptor — a registered preset
name (``repro-dls scenarios list``) or a JSON scenario file.  Perturbed
runs key the cache separately from clean ones and surface fault counters
in journals and ``repro-dls stats``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .backends import backend_names
from .core.base import chunk_sizes
from .core.params import SchedulingParams
from .core.registry import get_technique, iter_techniques


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """The result-cache knobs shared by run/simulate/campaign."""
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="serve repeat runs from the result cache at DIR and store "
             "fresh ones (default: the REPRO_CACHE environment variable; "
             "unset = no caching)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable result caching even when REPRO_CACHE is set",
    )
    parser.add_argument(
        "--cache-verify", type=float, default=0.0, metavar="FRACTION",
        help="re-simulate this fraction of cache hits and fail loudly "
             "when a stored result diverges from a fresh run (default 0)",
    )


def _cache_dir_from_args(args: argparse.Namespace) -> str | None:
    """The cache directory the flags select (None = caching off)."""
    from .cache import default_cache_dir

    if args.no_cache:
        return None
    return args.cache or default_cache_dir()


def _add_scenario_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", metavar="NAME|FILE", default=None,
        help="perturb the simulated machine with a scenario: a preset "
             "name (see `repro-dls scenarios list`) or a JSON scenario "
             "file written by repro.scenarios",
    )


def _scenario_from_args(args: argparse.Namespace):
    """Resolve --scenario to a Scenario, or None when the flag is unset."""
    if args.scenario is None:
        return None
    from .scenarios import load_scenario

    return load_scenario(args.scenario)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dls",
        description=(
            "Dynamic loop scheduling techniques, verified via "
            "reproducibility (Hoffeins, Ciorba & Banicescu 2017)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's reproducible artifacts")

    run = sub.add_parser("run", help="regenerate one artifact")
    run.add_argument("experiment", help="experiment id, e.g. fig5 or table2")
    run.add_argument("--runs", type=int, default=None,
                     help="replications (default: experiment-specific)")
    run.add_argument("--simulator",
                     choices=backend_names(),
                     default=None,
                     help="registered simulation backend (see "
                          "`repro-dls backends`); requests the backend "
                          "cannot serve degrade along its declared "
                          "fallback chain and are reported")
    run.add_argument("--seed", type=int, default=None, help="campaign seed")
    run.add_argument("--workers", type=int, default=None,
                     help="replication process-pool size (default: "
                          "REPRO_WORKERS env var or CPU count)")
    _add_scenario_option(run)
    _add_cache_options(run)

    sub.add_parser("techniques", help="list DLS techniques and requirements")

    sub.add_parser(
        "backends",
        help="list simulation backends, capabilities and fallback chains",
    )

    sched = sub.add_parser(
        "schedule", help="print the chunk sizes a technique produces"
    )
    sched.add_argument("--technique", required=True)
    sched.add_argument("--n", type=int, required=True, help="number of tasks")
    sched.add_argument("--p", type=int, required=True, help="number of PEs")
    sched.add_argument("--h", type=float, default=0.0)
    sched.add_argument("--mu", type=float, default=1.0)
    sched.add_argument("--sigma", type=float, default=1.0)
    sched.add_argument("--min-chunk", type=int, default=1)
    sched.add_argument("--chunk-size", type=int, default=None)

    simu = sub.add_parser(
        "simulate", help="simulate one run and print its metrics"
    )
    simu.add_argument("--technique", required=True)
    simu.add_argument("--n", type=int, required=True)
    simu.add_argument("--p", type=int, required=True)
    simu.add_argument("--h", type=float, default=0.0)
    simu.add_argument(
        "--dist",
        choices=("constant", "exponential", "uniform", "gamma"),
        default="exponential",
    )
    simu.add_argument("--mean", type=float, default=1.0)
    simu.add_argument("--runs", type=int, default=1)
    simu.add_argument("--seed", type=int, default=0)
    simu.add_argument("--simulator", choices=backend_names(), default="msg")
    simu.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL run journal to FILE (see `repro-dls stats`)",
    )
    simu.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="export run metrics to FILE (.prom/.txt: Prometheus text "
             "exposition, otherwise JSON)",
    )
    simu.add_argument(
        "--progress", action="store_true",
        help="render live progress heartbeats to stderr",
    )
    _add_scenario_option(simu)
    _add_cache_options(simu)

    rec = sub.add_parser(
        "recommend",
        help="predict the best technique for a problem, prior to execution",
    )
    rec.add_argument("--n", type=int, required=True)
    rec.add_argument("--p", type=int, required=True)
    rec.add_argument("--h", type=float, default=0.0)
    rec.add_argument("--mu", type=float, default=1.0)
    rec.add_argument("--sigma", type=float, default=1.0)

    campaign = sub.add_parser(
        "campaign", help="run the full reproduction campaign"
    )
    campaign.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    campaign.add_argument(
        "--quick", action="store_true",
        help="drastically reduced run counts (smoke-test scale)",
    )
    campaign.add_argument(
        "--simulator", choices=backend_names(), default="msg",
        help="registered simulation backend for the BOLD experiments",
    )
    campaign.add_argument(
        "--workers", type=int, default=None,
        help="replication process-pool size (default: REPRO_WORKERS env "
             "var or CPU count)",
    )
    campaign.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL run journal to FILE (see `repro-dls stats`)",
    )
    campaign.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="export campaign metrics to FILE (.prom/.txt: Prometheus "
             "text exposition, otherwise JSON)",
    )
    campaign.add_argument(
        "--progress", action="store_true",
        help="render live progress heartbeats to stderr",
    )
    _add_scenario_option(campaign)
    _add_cache_options(campaign)

    figures = sub.add_parser(
        "figures",
        help="regenerate every figure/table with provenance manifests "
             "(see docs/reproducing.md)",
    )
    figures.add_argument(
        "--out", metavar="DIR", default="artifacts",
        help="output directory for CSVs, plots and manifests "
             "(default: ./artifacts)",
    )
    figures.add_argument(
        "--quick", action="store_true",
        help="reduced sweeps on the fast bit-identical backends "
             "(the variant the committed references pin down)",
    )
    figures.add_argument(
        "--check", action="store_true",
        help="after generating, diff CSVs and manifests against the "
             "committed references (exit 1 on drift; implies --quick)",
    )
    figures.add_argument(
        "--only", metavar="ID", action="append", default=None,
        help="restrict to one artifact id (repeatable; see the registry "
             "ids in docs/reproducing.md)",
    )
    figures.add_argument(
        "--reference", metavar="DIR", default=None,
        help="check against this reference tree instead of the "
             "committed one",
    )
    figures.add_argument(
        "--tolerance", type=float, default=1e-6, metavar="PERCENT",
        help="numeric drift tolerance for --check, in percent "
             "(default: effectively exact — quick runs are seeded)",
    )
    figures.add_argument(
        "--no-plot", action="store_true",
        help="skip plot rendering even when matplotlib is available",
    )
    figures.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL run journal to FILE (see `repro-dls stats`)",
    )
    figures.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="export pipeline metrics to FILE (.prom/.txt: Prometheus "
             "text exposition, otherwise JSON)",
    )
    _add_cache_options(figures)

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain a result cache (see docs/caching.md)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count, size, and hit/miss counters per session"),
        ("clear", "remove every cached entry and session record"),
        ("gc", "collect stale-schema, aged, or over-budget entries"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "dir", nargs="?", default=None,
            help="cache directory (default: REPRO_CACHE env var)",
        )
    cache_sub.choices["stats"].add_argument(
        "--json", action="store_true",
        help="machine-readable output instead of the human summary",
    )
    cache_sub.choices["gc"].add_argument(
        "--max-age-days", type=float, default=None,
        help="additionally remove entries older than this many days",
    )
    cache_sub.choices["gc"].add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest entries until the store fits this many bytes",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="inspect perturbation scenarios (see docs/scenarios.md)",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenarios_sub.add_parser(
        "list", help="list the registered scenario presets"
    )

    stats = sub.add_parser(
        "stats", help="summarise a JSONL run journal written by --trace"
    )
    stats.add_argument("journal", help="journal file written by --trace")
    stats.add_argument(
        "--top", type=int, default=5,
        help="how many of the slowest tasks to list (default 5)",
    )

    trace_export = sub.add_parser(
        "trace-export",
        help="export a Chrome Trace Event JSON (Perfetto-loadable) from "
             "a --trace journal or a freshly simulated run",
    )
    trace_export.add_argument(
        "journal", nargs="?", default=None,
        help="a JSONL run journal written by --trace (omit to simulate "
             "one run instead; requires --technique/--n/--p)",
    )
    trace_export.add_argument(
        "--out", "-o", metavar="FILE", required=True,
        help="output path for the Chrome trace JSON",
    )
    trace_export.add_argument("--technique", default=None)
    trace_export.add_argument("--n", type=int, default=None)
    trace_export.add_argument("--p", type=int, default=None)
    trace_export.add_argument("--h", type=float, default=0.0)
    trace_export.add_argument(
        "--dist",
        choices=("constant", "exponential", "uniform", "gamma"),
        default="exponential",
    )
    trace_export.add_argument("--mean", type=float, default=1.0)
    trace_export.add_argument("--seed", type=int, default=0)
    trace_export.add_argument(
        "--simulator", choices=backend_names(), default="msg-fast",
    )

    files = sub.add_parser(
        "simulate-files",
        help="run from SimGrid-style platform + deployment XML files",
    )
    files.add_argument("platform", help="platform XML file")
    files.add_argument("deployment", help="deployment XML file")
    files.add_argument("--technique", required=True)
    files.add_argument("--n", type=int, required=True)
    files.add_argument("--h", type=float, default=0.0)
    files.add_argument(
        "--dist", choices=("constant", "exponential", "uniform", "gamma"),
        default="exponential",
    )
    files.add_argument("--mean", type=float, default=1.0)
    files.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the SimAS advisor HTTP service (see docs/serve.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; the service is unauthenticated"
             " — do not expose it beyond trusted networks)",
    )
    serve.add_argument(
        "--port", type=int, default=8787,
        help="bind port (default 8787; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="replication process-pool size shared by all queries "
             "(default: REPRO_WORKERS env var or CPU count)",
    )
    serve.add_argument(
        "--runs", type=int, default=None, metavar="N",
        help="default replications per candidate technique when a query "
             "does not say (default 5)",
    )
    serve.add_argument(
        "--simulator", choices=backend_names(), default="direct-batch",
        help="default simulation backend for queries that do not name "
             "one (default direct-batch)",
    )
    serve.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL journal with one `advise` record per query",
    )
    serve.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="additionally save the metrics registry to FILE on shutdown "
             "(the live registry is always scrapeable at GET /metrics)",
    )
    _add_cache_options(serve)

    gantt = sub.add_parser(
        "gantt", help="render a run's chunk schedule as an ASCII Gantt chart"
    )
    gantt.add_argument("--technique", required=True)
    gantt.add_argument("--n", type=int, required=True)
    gantt.add_argument("--p", type=int, required=True)
    gantt.add_argument("--h", type=float, default=0.0)
    gantt.add_argument(
        "--dist", choices=("constant", "exponential", "uniform", "gamma"),
        default="exponential",
    )
    gantt.add_argument("--mean", type=float, default=1.0)
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--width", type=int, default=72)
    gantt.add_argument(
        "--paje", metavar="FILE", default=None,
        help="additionally export a Paje trace to FILE",
    )
    return parser


def _cmd_list() -> int:
    from .experiments.descriptors import EXPERIMENTS

    for exp in EXPERIMENTS.values():
        print(f"{exp.id:8s} {exp.paper_artifact:10s} {exp.description}")
    return 0


#: which CLI knobs each experiment's runner accepts
_RUN_KNOBS: dict[str, frozenset[str]] = {
    "table2": frozenset(),
    "table3": frozenset(),
    "fig3": frozenset({"simulator", "seed"}),
    "fig4": frozenset({"simulator", "seed"}),
    "fig5": frozenset({"runs", "simulator", "seed", "processes", "scenario"}),
    "fig6": frozenset({"runs", "simulator", "seed", "processes", "scenario"}),
    "fig7": frozenset({"runs", "simulator", "seed", "processes", "scenario"}),
    "fig8": frozenset({"runs", "simulator", "seed", "processes", "scenario"}),
    "fig9": frozenset({"runs", "simulator", "seed", "processes", "scenario"}),
    "robustness": frozenset(
        {"runs", "simulator", "seed", "processes", "scenario"}
    ),
    "scalability": frozenset({"runs", "seed"}),
    "css-sweep": frozenset({"seed"}),
    "tss-shapes": frozenset({"seed"}),
    "remote-ratio": frozenset({"seed"}),
}


def _cmd_run(args: argparse.Namespace) -> int:
    import contextlib

    from .cache import cache_to
    from .experiments.descriptors import get_experiment

    kwargs: dict = {}
    if args.runs is not None:
        kwargs["runs"] = args.runs
    if args.simulator is not None:
        kwargs["simulator"] = args.simulator
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.workers is not None:
        kwargs["processes"] = args.workers
    if args.scenario is not None:
        try:
            kwargs["scenario"] = _scenario_from_args(args)
        except ValueError as exc:
            print(f"run: {exc}", file=sys.stderr)
            return 2
    exp = get_experiment(args.experiment)
    allowed = _RUN_KNOBS.get(args.experiment, frozenset())
    if "scenario" in kwargs and "scenario" not in allowed:
        print(
            f"run: experiment {args.experiment!r} does not accept "
            "--scenario",
            file=sys.stderr,
        )
        return 2
    kwargs = {k: v for k, v in kwargs.items() if k in allowed}
    cache_dir = _cache_dir_from_args(args)
    with contextlib.ExitStack() as stack:
        if cache_dir is not None:
            stack.enter_context(
                cache_to(cache_dir, verify_fraction=args.cache_verify)
            )
        print(exp.run(**kwargs))
    return 0


def _cmd_techniques() -> int:
    from .core.base import PARAM_SYMBOLS

    print(f"{'name':8s} {'label':8s} {'adaptive':8s} requires")
    for cls in iter_techniques():
        req = ", ".join(s for s in PARAM_SYMBOLS if s in cls.requires) or "-"
        print(f"{cls.name:8s} {cls.label:8s} {str(cls.adaptive):8s} {req}")
    return 0


def _cmd_backends() -> int:
    from .backends import capability_names, iter_backends

    for backend in iter_backends():
        caps = ", ".join(
            name for name in capability_names()
            if getattr(backend.capabilities, name)
        ) or "-"
        fallback = backend.fallback or "-"
        print(f"{backend.name:12s} fallback: {fallback}")
        print(f"{'':12s} {backend.description}")
        print(f"{'':12s} capabilities: {caps}")
    return 0


def _params_from_args(args: argparse.Namespace) -> SchedulingParams:
    return SchedulingParams(
        n=args.n,
        p=args.p,
        h=args.h,
        mu=getattr(args, "mu", None) or getattr(args, "mean", 1.0),
        sigma=getattr(args, "sigma", None) or getattr(args, "mean", 1.0),
        min_chunk=getattr(args, "min_chunk", 1),
        chunk_size=getattr(args, "chunk_size", None),
    )


def _workload_from_args(args: argparse.Namespace):
    from .workloads import (
        ConstantWorkload,
        ExponentialWorkload,
        GammaWorkload,
        UniformWorkload,
    )

    return {
        "constant": lambda: ConstantWorkload(args.mean),
        "exponential": lambda: ExponentialWorkload(args.mean),
        "uniform": lambda: UniformWorkload(0.0, 2 * args.mean),
        "gamma": lambda: GammaWorkload(2.0, args.mean / 2.0),
    }[args.dist]()


def _cmd_schedule(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    scheduler = get_technique(args.technique)(params)
    sizes = chunk_sizes(scheduler)
    print(f"{scheduler.label}: {len(sizes)} chunks, sum={sum(sizes)}")
    print(" ".join(map(str, sizes)))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import contextlib
    import dataclasses
    import statistics

    from .backends import drain_fallback_events
    from .cache import cache_to
    from .experiments.runner import RunTask, run_campaign
    from .obs import journal_to, metrics_to, progress_to, stream_renderer

    params = _params_from_args(args)
    workload = _workload_from_args(args)
    try:
        scenario = _scenario_from_args(args)
    except ValueError as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    # Which simulator executes is decided by the backend registry's
    # capability-checked resolution (repro.backends), not here; the
    # per-run integer seeds reproduce the historical CLI outputs
    # (SeedSequence(entropy=[s]) equals SeedSequence(s)).
    task = RunTask(
        technique=args.technique,
        params=params,
        workload=workload,
        simulator=args.simulator,
        scenario=scenario,
    )
    drain_fallback_events()
    tasks = [
        dataclasses.replace(task, seed_entropy=(args.seed + i,))
        for i in range(args.runs)
    ]
    cache_dir = _cache_dir_from_args(args)
    with contextlib.ExitStack() as stack:
        if args.trace:
            stack.enter_context(journal_to(args.trace))
        if args.metrics:
            stack.enter_context(metrics_to(args.metrics))
        if args.progress:
            stack.enter_context(progress_to(stream_renderer()))
        cache = None
        if cache_dir is not None:
            cache = stack.enter_context(
                cache_to(cache_dir, verify_fraction=args.cache_verify)
            )
        results = run_campaign(tasks, processes=1)
    awt = [r.average_wasted_time for r in results]
    sp = [r.speedup for r in results]
    print(
        f"{results[0].technique} on {args.simulator}: "
        f"n={args.n}, p={args.p}, {args.runs} run(s)"
    )
    for event in drain_fallback_events():
        print(f"  note: {event.describe()}")
    print(f"  makespan           : {statistics.mean(r.makespan for r in results):.4f} s")
    print(f"  avg wasted time    : {statistics.mean(awt):.4f} s")
    print(f"  speedup            : {statistics.mean(sp):.3f} (ideal {args.p})")
    print(f"  scheduling chunks  : {statistics.mean(r.num_chunks for r in results):.1f}")
    if scenario is not None:
        lost_chunks = sum(r.extras.get("lost_chunks", 0) for r in results)
        lost_tasks = sum(r.extras.get("lost_tasks", 0) for r in results)
        print(
            f"  scenario           : {scenario.name} — "
            f"{lost_chunks} chunk(s) lost to faults "
            f"({lost_tasks} task(s) requeued)"
        )
    if args.metrics:
        print(f"  wrote metrics {args.metrics}")
    if cache is not None:
        s = cache.stats
        print(
            f"  cache              : {s.hits} hit(s), {s.misses} "
            f"miss(es), {s.stores} store(s) in {cache_dir}"
        )
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .core.prediction import prediction_report, recommend_technique

    params = SchedulingParams(
        n=args.n, p=args.p, h=args.h, mu=args.mu, sigma=args.sigma
    )
    print(prediction_report(params))
    best = recommend_technique(params)
    print(
        f"\nrecommended: {best.technique} "
        f"(predicted wasted time {best.predicted_wasted_time:.2f} s)"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import contextlib

    from .experiments.campaign import run_full_campaign
    from .obs import journal_to, metrics_to, progress_to, stream_renderer

    kwargs: dict = {}
    if args.quick:
        kwargs["campaign_runs"] = {1024: 5, 8192: 3}
        kwargs["fig9_runs"] = 50
        kwargs["include_tss"] = False
    kwargs["simulator"] = args.simulator
    kwargs["workers"] = args.workers
    try:
        scenario = _scenario_from_args(args)
    except ValueError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    if scenario is not None:
        kwargs["scenario"] = scenario
    cache_dir = _cache_dir_from_args(args)
    if cache_dir is not None:
        kwargs["cache"] = cache_dir
        kwargs["cache_verify"] = args.cache_verify
    with contextlib.ExitStack() as stack:
        if args.trace:
            stack.enter_context(journal_to(args.trace))
        if args.metrics:
            stack.enter_context(metrics_to(args.metrics))
        if args.progress:
            stack.enter_context(progress_to(stream_renderer()))
        if args.out:
            with open(args.out, "w") as fh:
                run_full_campaign(out=fh, **kwargs)
            print(f"wrote {args.out}")
        else:
            run_full_campaign(**kwargs)
    if args.trace:
        print(f"wrote journal {args.trace}")
    if args.metrics:
        print(f"wrote metrics {args.metrics}")
    if cache_dir is not None:
        print(f"result cache: {cache_dir} (see `repro-dls cache stats`)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import contextlib

    from .cache import cache_to
    from .figures import (
        check_against_reference,
        generate_artifacts,
        get_artifact,
        plot_available,
    )
    from .obs import journal_to, metrics_to

    mode = "quick" if (args.quick or args.check) else "full"
    if args.only:
        try:
            for artifact_id in args.only:
                get_artifact(artifact_id)
        except ValueError as exc:
            print(f"figures: {exc}", file=sys.stderr)
            return 2
    cache_dir = _cache_dir_from_args(args)
    with contextlib.ExitStack() as stack:
        if cache_dir is not None:
            stack.enter_context(
                cache_to(cache_dir, verify_fraction=args.cache_verify)
            )
        if args.trace:
            stack.enter_context(journal_to(args.trace))
        if args.metrics:
            stack.enter_context(metrics_to(args.metrics))
        run = generate_artifacts(
            args.out, mode=mode, only=args.only,
            plot=not args.no_plot, echo=print,
        )
    plot_note = (
        "png" if (plot_available() and not args.no_plot)
        else "text (matplotlib not installed)" if not args.no_plot
        else "disabled"
    )
    print(
        f"\n{len(run.artifacts)} artifact(s) -> {args.out} "
        f"in {run.elapsed_s:.1f}s (mode={mode}, plots={plot_note})"
    )
    if run.cache:
        print(
            f"cache: {run.cache['hits']} hit(s), "
            f"{run.cache['misses']} miss(es), "
            f"{run.cache['corrupt']} corrupt"
        )
    if run.fallbacks:
        print(f"backend fallbacks: {run.fallbacks} (see the manifests)")
    if args.trace:
        print(f"wrote journal {args.trace}")
    if args.metrics:
        print(f"wrote metrics {args.metrics}")
    if not args.check:
        return 0
    report = check_against_reference(
        args.out,
        reference_dir=args.reference,
        artifacts=args.only,
        tolerance_percent=args.tolerance,
    )
    print()
    print(report.describe())
    return 0 if report.ok else 1


def _format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count:.0f} B"
        count /= 1024
    raise AssertionError  # pragma: no cover


def _cmd_cache(args: argparse.Namespace) -> int:
    import json as _json

    from .cache import ResultCache, default_cache_dir

    root = args.dir or default_cache_dir()
    if root is None:
        print(
            "cache: no directory given and REPRO_CACHE is not set",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(root)

    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {root}: removed {removed} entr(ies)")
        return 0

    if args.cache_command == "gc":
        max_age_s = (
            args.max_age_days * 86400.0
            if args.max_age_days is not None else None
        )
        removed, remaining = cache.gc(
            max_age_s=max_age_s, max_bytes=args.max_bytes
        )
        cache.flush_session()
        print(
            f"gc {root}: removed {removed} entr(ies), "
            f"{cache.entry_count()} remaining "
            f"({_format_bytes(remaining)})"
        )
        return 0

    summary = cache.describe_store()
    if args.json:
        print(_json.dumps(summary, indent=1))
        return 0
    print(
        f"cache {summary['root']}: {summary['entries']} entr(ies), "
        f"{_format_bytes(summary['total_bytes'])}, "
        f"schema v{summary['schema']}"
    )
    last = summary["last_session"]
    if last is None:
        print("no recorded sessions yet")
        return 0
    print(
        f"last session (pid {last.get('pid', '?')}): "
        f"{last.get('hits', 0)} hit(s), {last.get('misses', 0)} miss(es), "
        f"{last.get('stores', 0)} store(s), "
        f"{last.get('verified', 0)} verified — "
        f"hit-rate {last.get('hit_rate_percent', 0.0):.1f}%, "
        f"est. {last.get('saved_wall_s', 0.0):.2f}s of simulation saved"
    )
    life = summary["lifetime"]
    print(
        f"lifetime ({summary['sessions']} session(s)): "
        f"{life['hits']} hit(s), {life['misses']} miss(es), "
        f"{life['stores']} store(s), {life['evictions']} eviction(s), "
        f"hit-rate {life['hit_rate_percent']:.1f}%, "
        f"est. {life['saved_wall_s']:.2f}s saved"
    )
    if life.get("corrupt"):
        print(
            f"warning: {life['corrupt']} corrupt entr(ies) encountered "
            "across sessions — see `cache` journal records (op=corrupt)"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import PRESETS, preset_notes

    if args.scenarios_command != "list":  # pragma: no cover
        raise AssertionError(args.scenarios_command)
    width = max(len(name) for name in PRESETS)
    for name, scenario in PRESETS.items():
        print(f"{name:<{width}s}  {scenario.describe()}")
        note = preset_notes().get(name)
        if note:
            print(f"{'':<{width}s}  {note}")
    print()
    print(
        "use one with `--scenario NAME`, or save a custom scenario to "
        "JSON (repro.scenarios.Scenario.save) and pass the file path"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import load_journal, summarize_journal

    records = load_journal(args.journal)
    print(summarize_journal(records, top=args.top))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .obs import (
        chrome_trace_from_journal,
        chrome_trace_from_results,
        load_journal,
        save_chrome_trace,
    )

    if args.journal is not None:
        trace = chrome_trace_from_journal(load_journal(args.journal))
        source = args.journal
    else:
        if args.technique is None or args.n is None or args.p is None:
            print(
                "trace-export: without a journal, --technique, --n and "
                "--p are required to simulate a run",
                file=sys.stderr,
            )
            return 2
        from .experiments.runner import RunTask

        task = RunTask(
            technique=args.technique,
            params=_params_from_args(args),
            workload=_workload_from_args(args),
            simulator=args.simulator,
            seed_entropy=(args.seed,),
            collect_chunk_log=True,
        )
        try:
            result = task.execute()
            trace = chrome_trace_from_results([result])
        except ValueError as exc:
            print(f"trace-export: {exc}", file=sys.stderr)
            print(
                "hint: pick a backend that records chunk logs "
                "(msg, msg-fast, direct) or request fewer constraints",
                file=sys.stderr,
            )
            return 2
        source = f"{args.technique}(n={args.n}, p={args.p})"
    save_chrome_trace(trace, args.out)
    slices = sum(
        1 for e in trace["traceEvents"] if e.get("ph") in ("X", "i", "C")
    )
    print(
        f"wrote {args.out}: {slices} event(s) from {source} — load it "
        "at https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _cmd_simulate_files(args: argparse.Namespace) -> int:
    from .simgrid.app import ApplicationConfig, run_from_files
    from .workloads import (
        ConstantWorkload,
        ExponentialWorkload,
        GammaWorkload,
        UniformWorkload,
    )

    workload = {
        "constant": lambda: ConstantWorkload(args.mean),
        "exponential": lambda: ExponentialWorkload(args.mean),
        "uniform": lambda: UniformWorkload(0.0, 2 * args.mean),
        "gamma": lambda: GammaWorkload(2.0, args.mean / 2.0),
    }[args.dist]()
    app = ApplicationConfig(
        technique=args.technique, n=args.n, workload=workload, h=args.h
    )
    result = run_from_files(
        args.platform, args.deployment, app, seed=args.seed
    )
    print(
        f"{result.technique}: p={result.p} (from deployment), n={result.n}"
    )
    print(f"  makespan        : {result.makespan:.4f} s")
    print(f"  avg wasted time : {result.average_wasted_time:.4f} s")
    print(f"  speedup         : {result.speedup:.3f} (ideal {result.p})")
    print(f"  chunks          : {result.num_chunks}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .directsim import DirectSimulator
    from .simgrid.visualization import (
        ascii_gantt,
        save_paje_trace,
        utilization_summary,
    )
    from .workloads import (
        ConstantWorkload,
        ExponentialWorkload,
        GammaWorkload,
        UniformWorkload,
    )

    params = _params_from_args(args)
    workload = {
        "constant": lambda: ConstantWorkload(args.mean),
        "exponential": lambda: ExponentialWorkload(args.mean),
        "uniform": lambda: UniformWorkload(0.0, 2 * args.mean),
        "gamma": lambda: GammaWorkload(2.0, args.mean / 2.0),
    }[args.dist]()
    sim = DirectSimulator(params, workload, record_chunks=True)
    result = sim.run(get_technique(args.technique), seed=args.seed)
    try:
        chart = ascii_gantt(result, width=args.width)
    except ValueError as exc:
        print(f"gantt: {exc}", file=sys.stderr)
        print(
            "hint: the run recorded no per-chunk log — rerun with a "
            "simulator that records chunk logs (msg, msg-fast, direct)",
            file=sys.stderr,
        )
        return 2
    print(chart)
    print()
    print(utilization_summary(result))
    if args.paje:
        save_paje_trace(result, args.paje)
        print(f"\nwrote Paje trace: {args.paje}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib

    from .cache import cache_to
    from .obs import journal_to
    from .obs.metrics import clear_registry, set_registry
    from .serve import Advisor, make_server
    from .serve.advisor import DEFAULT_RUNS

    cache_dir = _cache_dir_from_args(args)
    with contextlib.ExitStack() as stack:
        # The /metrics endpoint scrapes the active registry, so the
        # server always installs one even without --metrics.
        registry = set_registry()
        stack.callback(clear_registry)
        if args.metrics:
            stack.callback(lambda: registry.save(args.metrics))
        if args.trace:
            stack.enter_context(journal_to(args.trace))
        if cache_dir is not None:
            stack.enter_context(
                cache_to(cache_dir, verify_fraction=args.cache_verify)
            )
        advisor = Advisor(
            processes=args.workers,
            default_runs=args.runs or DEFAULT_RUNS,
            default_simulator=args.simulator,
        )
        server = make_server(args.host, args.port, advisor)
        host, port = server.server_address[:2]
        print(f"repro-dls serve: advising on http://{host}:{port}")
        print(
            f"  POST /advise   what-if sweep over "
            f"{len(advisor.parse({'n': 1, 'p': 1}).techniques)} techniques"
        )
        print("  GET  /metrics  Prometheus exposition")
        if cache_dir is not None:
            print(f"  result cache   {cache_dir}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.server_close()
            # terminate the worker pool now, in a normal interpreter
            # state — leaving it to multiprocessing's atexit finalizer
            # after a Ctrl-C produces "Exception ignored in atexit
            # callback" noise over the clean shutdown message
            from .experiments.runner import shutdown_pool

            shutdown_pool()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "techniques":
        return _cmd_techniques()
    if args.command == "backends":
        return _cmd_backends()
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace-export":
        return _cmd_trace_export(args)
    if args.command == "simulate-files":
        return _cmd_simulate_files(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "gantt":
        return _cmd_gantt(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
