"""Real execution backend: DLS-chunked thread pools for actual work."""

from .executor import DLSExecutor, ExecutionReport, dls_map

__all__ = ["DLSExecutor", "ExecutionReport", "dls_map"]
