"""DLS execution of real Python work — the library beyond simulation.

The same `Scheduler` objects that drive the simulators can schedule
*actual* computation: :class:`DLSExecutor` runs a function over a list
of items with a pool of worker threads, each thread repeatedly
requesting a chunk (under a lock, like the master of Figure 1),
executing it, and reporting the measured wall time back to the scheduler
— so the adaptive techniques (AWF-C, AF, ...) adapt to *real* machine
behaviour.

Python threads suit I/O-bound or GIL-releasing (NumPy) tasks; the
executor is nevertheless faithful for CPU-bound work too, it just won't
speed it up.  The point is API parity: one `Scheduler` implementation,
three backends (direct simulator, MSG simulator, real threads).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..core.base import Scheduler
from ..core.params import SchedulingParams
from ..core.registry import get_technique


@dataclass
class ExecutionReport:
    """What happened during a :meth:`DLSExecutor.map` call."""

    technique: str
    n: int
    workers: int
    wall_time: float
    num_chunks: int
    chunks_per_worker: list[int]
    busy_time_per_worker: list[float]
    results: list[Any] = field(repr=False, default_factory=list)

    @property
    def average_wasted_time(self) -> float:
        """Mean (wall - busy) over workers — the paper's idle metric."""
        return sum(
            self.wall_time - b for b in self.busy_time_per_worker
        ) / self.workers

    @property
    def utilization(self) -> float:
        """Total busy time over workers * wall time."""
        denom = self.workers * self.wall_time
        if denom <= 0:
            return 1.0
        return sum(self.busy_time_per_worker) / denom


class DLSExecutor:
    """Run ``func`` over items with DLS-chunked worker threads.

    Parameters
    ----------
    technique:
        Registry name, e.g. ``"fac2"`` or ``"awf-c"``.
    workers:
        Thread count (the ``p`` of the scheduling parameters).
    h:
        Estimated per-chunk scheduling overhead passed to the technique
        (techniques like FSC and BOLD need it to size chunks).
    mu, sigma:
        Optional a-priori task-time statistics for the techniques that
        want them; adaptive techniques measure their own.
    technique_kwargs:
        Extra arguments for the technique's constructor.
    """

    def __init__(
        self,
        technique: str = "fac2",
        workers: int = 4,
        h: float = 0.0,
        mu: float | None = None,
        sigma: float | None = None,
        technique_kwargs: dict | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.technique = technique
        self.workers = workers
        self.h = h
        self.mu = mu
        self.sigma = sigma
        self.technique_kwargs = technique_kwargs or {}

    def map(self, func: Callable[[Any], Any],
            items: Sequence[Any]) -> ExecutionReport:
        """Apply ``func`` to every item; results keep item order."""
        items = list(items)
        n = len(items)
        params = SchedulingParams(
            n=n, p=self.workers, h=self.h, mu=self.mu, sigma=self.sigma
        )
        scheduler: Scheduler = get_technique(self.technique)(
            params, **self.technique_kwargs
        )
        lock = threading.Lock()
        results: list[Any] = [None] * n
        chunk_counts = [0] * self.workers
        busy = [0.0] * self.workers
        errors: list[BaseException] = []

        def request(worker: int) -> tuple[int, int]:
            with lock:
                size = scheduler.next_chunk(worker)
                if size == 0:
                    return (0, 0)
                record = scheduler.last_chunk
                return (record.start, size)

        def report(worker: int, size: int, elapsed: float) -> None:
            with lock:
                scheduler.record_finished(worker, size, elapsed)

        def worker_loop(worker: int) -> None:
            try:
                while True:
                    start, size = request(worker)
                    if size == 0:
                        return
                    t0 = time.perf_counter()
                    for i in range(start, start + size):
                        results[i] = func(items[i])
                    elapsed = time.perf_counter() - t0
                    busy[worker] += elapsed
                    chunk_counts[worker] += 1
                    report(worker, size, elapsed)
            except BaseException as exc:  # propagate to the caller
                with lock:
                    errors.append(exc)

        t_begin = time.perf_counter()
        if self.workers == 1:
            worker_loop(0)
        else:
            threads = [
                threading.Thread(
                    target=worker_loop, args=(w,), name=f"dls-worker-{w}"
                )
                for w in range(self.workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        wall = time.perf_counter() - t_begin
        if errors:
            raise errors[0]

        return ExecutionReport(
            technique=scheduler.label or scheduler.name,
            n=n,
            workers=self.workers,
            wall_time=wall,
            num_chunks=scheduler.num_scheduling_operations,
            chunks_per_worker=chunk_counts,
            busy_time_per_worker=busy,
            results=results,
        )


def dls_map(
    func: Callable[[Any], Any],
    items: Iterable[Any],
    technique: str = "fac2",
    workers: int = 4,
    **kwargs,
) -> list[Any]:
    """One-call convenience: DLS-scheduled map, returning the results."""
    executor = DLSExecutor(technique=technique, workers=workers, **kwargs)
    return executor.map(func, list(items)).results
