"""Exact reproduction of the POSIX ``rand48`` generator family.

The BOLD publication (Hagerup, 1997) generated its task execution times
"with the aid of the random number generators ``erand48`` and ``nrand48``".
This module reproduces the 48-bit linear congruential generator bit-for-bit
so that, given a seed, our direct simulator consumes the same random stream
a C implementation would:

.. math::

   X_{n+1} = (a X_n + c) \\bmod 2^{48},
   \\quad a = \\texttt{0x5DEECE66D}, \\; c = \\texttt{0xB}

* ``erand48`` returns ``X / 2^48`` as a double in ``[0, 1)``;
* ``nrand48`` returns the high 31 bits (``X >> 17``);
* ``srand48(seed)`` sets ``X = (seed << 16) | 0x330E``.
"""

from __future__ import annotations

import math

import numpy as np

_A = 0x5DEECE66D
_C = 0xB
_MASK = (1 << 48) - 1
_SRAND48_PAD = 0x330E


class Rand48:
    """A drand48-family generator with explicit 48-bit state."""

    __slots__ = ("state",)

    def __init__(self, seed: int = 0):
        """Seed like ``srand48``: the 32-bit ``seed`` fills the high bits."""
        self.state = ((seed & 0xFFFFFFFF) << 16) | _SRAND48_PAD

    @classmethod
    def from_xsubi(cls, xsubi: int) -> "Rand48":
        """Construct from a raw 48-bit state (the ``xsubi[3]`` of POSIX)."""
        gen = cls.__new__(cls)
        gen.state = xsubi & _MASK
        return gen

    def _step(self) -> int:
        self.state = (_A * self.state + _C) & _MASK
        return self.state

    def erand48(self) -> float:
        """Uniform double in [0, 1) — the full 48 bits."""
        return self._step() / float(1 << 48)

    def nrand48(self) -> int:
        """Non-negative long in [0, 2**31) — the high 31 bits."""
        return self._step() >> 17

    def drand48(self) -> float:
        """Alias of :meth:`erand48` (shared state in this model)."""
        return self.erand48()

    def exponential(self, mean: float = 1.0) -> float:
        """Exponential variate by inversion, as a late-90s C program would.

        Uses ``-mean * log(1 - u)``; ``u`` from ``erand48`` is < 1 so the
        logarithm is always defined.
        """
        return -mean * math.log(1.0 - self.erand48())

    def exponential_array(self, size: int, mean: float = 1.0) -> np.ndarray:
        """``size`` sequential exponential variates as a NumPy array."""
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.exponential(mean)
        return out

    def uniform_array(self, size: int) -> np.ndarray:
        """``size`` sequential erand48 draws as a NumPy array."""
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.erand48()
        return out
