"""Task execution time distributions (Figure 2: "Task Execution Times").

A :class:`Workload` produces the execution times of tasks ``start ..
start+size-1``.  Three access paths exist:

* :meth:`Workload.sample` — per-task times (faithful path);
* :meth:`Workload.chunk_times_batch` — an ``(reps, C)`` matrix of chunk
  sums for a whole replication batch in one vectorised draw.  This is the
  *single* closed-form dispatch point: distributions with an exact
  closed-form sum override it (constant → ``k * value``; exponential →
  ``Gamma(k, mean)``), which is statistically identical and faster.
* :meth:`Workload.chunk_time` — the sum of one chunk's task times; it
  delegates to :meth:`chunk_times_batch` with ``reps=1``, so the scalar
  and batch paths share one implementation (no duplicated closed forms).
  For the closed-form distributions the delegated draw consumes the RNG
  stream identically to a scalar draw, so seeded results are unchanged.

The scalar/batch equivalence is property-tested in
``tests/test_batch_kernel.py`` and ``tests/test_distributions.py``, and
the speed difference is measured by the ablation benchmarks.

Stationary workloads ignore ``start``; the position-dependent ones
(increasing, decreasing, trace) use it, which is why chunk boundaries are
expressed as ``(start, size)`` pairs everywhere in the simulators.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


def _validate_batch(
    starts: np.ndarray, sizes: np.ndarray, reps: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Normalise and validate ``chunk_times_batch`` arguments."""
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if starts.ndim != 1 or sizes.ndim != 1 or starts.size != sizes.size:
        raise ValueError(
            f"starts and sizes must be equal-length 1-D arrays, got "
            f"shapes {starts.shape} and {sizes.shape}"
        )
    if int(reps) < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    return starts, sizes, int(reps)


class Workload(ABC):
    """Distribution of task execution times, in seconds."""

    #: True when task times depend on the task index.
    position_dependent: bool = False

    #: True when task times are a pure function of the task index — no
    #: RNG is consumed, so every replication (and every simulator path)
    #: produces bit-identical chunk times.  The batch stepping kernel's
    #: bit-identity contract and the result cache's per-task
    #: ``result_version`` both key off this flag.
    deterministic: bool = False

    @property
    @abstractmethod
    def mean(self) -> float:
        """Theoretical mean task time (the paper's ``mu``)."""

    @property
    @abstractmethod
    def std(self) -> float:
        """Theoretical standard deviation (the paper's ``sigma``)."""

    @abstractmethod
    def sample(self, start: int, size: int, rng: np.random.Generator) -> np.ndarray:
        """Execution times of tasks ``start .. start+size-1``."""

    def chunk_time(self, start: int, size: int, rng: np.random.Generator) -> float:
        """Total execution time of a chunk (sum of its task times).

        Delegates to :meth:`chunk_times_batch` with a single replication
        so both paths share one closed-form dispatch.
        """
        if size <= 0:
            return 0.0
        starts = np.asarray([start], dtype=np.int64)
        sizes = np.asarray([size], dtype=np.int64)
        return float(self.chunk_times_batch(starts, sizes, 1, rng)[0, 0])

    def chunk_times_batch(
        self,
        starts: np.ndarray,
        sizes: np.ndarray,
        reps: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Chunk sums for ``reps`` independent replications at once.

        Returns an ``(reps, C)`` array whose column ``c`` holds ``reps``
        independent draws of the total time of the chunk ``(starts[c],
        sizes[c])``.  The default draws per-task times through
        :meth:`sample` and sums them (the faithful path); distributions
        with an exact closed-form sum override this method, and the
        scalar :meth:`chunk_time` inherits the closed form through
        delegation.
        """
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        out = np.zeros((reps, sizes.size), dtype=np.float64)
        for c, (st, sz) in enumerate(zip(starts, sizes)):
            st, sz = int(st), int(sz)
            if sz <= 0:
                continue
            if self.position_dependent:
                for r in range(reps):
                    out[r, c] = float(self.sample(st, sz, rng).sum())
            else:
                # Stationary: one draw of reps*size task times fills the
                # column; element order matches reps successive draws.
                flat = self.sample(st, sz * reps, rng)
                out[:, c] = flat.reshape(reps, sz).sum(axis=1)
        return out

    def chunk_times_round(
        self,
        starts: np.ndarray,
        sizes: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One independent chunk-sum per ``(starts[k], sizes[k])`` pair.

        The sampling primitive of the batched *stepping* kernel
        (:mod:`repro.directsim.batch`): one scheduling round needs one
        draw per live replication, for replication-specific chunks — a
        ``(K,)`` vector rather than :meth:`chunk_times_batch`'s
        ``(reps, C)`` matrix.  The default loops over
        :meth:`chunk_time`; distributions with a closed-form chunk sum
        override it with one vectorised draw.
        """
        starts = np.asarray(starts, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        out = np.empty(starts.size, dtype=np.float64)
        for k in range(starts.size):
            out[k] = self.chunk_time(int(starts[k]), int(sizes[k]), rng)
        return out

    def serial_time(self, n: int) -> float:
        """Expected serial execution time of ``n`` tasks."""
        return n * self.mean

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in vars(self).items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({fields})"


class ConstantWorkload(Workload):
    """Every task takes exactly ``value`` seconds (TSS experiments)."""

    deterministic = True

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError(f"task time must be positive, got {value}")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def std(self) -> float:
        return 0.0

    def sample(self, start, size, rng) -> np.ndarray:
        return np.full(size, self.value)

    def chunk_times_batch(self, starts, sizes, reps, rng) -> np.ndarray:
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        # Exact: a chunk of k tasks always takes k * value seconds.  The
        # broadcast view is read-only but identical across replications.
        row = np.maximum(sizes, 0).astype(np.float64) * self.value
        return np.broadcast_to(row, (reps, sizes.size))

    def chunk_times_round(self, starts, sizes, rng) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=np.int64)
        return np.maximum(sizes, 0).astype(np.float64) * self.value


class ExponentialWorkload(Workload):
    """Exponential task times (the BOLD experiments: mu = sigma = 1 s)."""

    def __init__(self, mean: float = 1.0):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._mean

    def sample(self, start, size, rng) -> np.ndarray:
        return rng.exponential(self._mean, size=size)

    def chunk_times_batch(self, starts, sizes, reps, rng) -> np.ndarray:
        # Sum of k iid Exp(mean) is Gamma(k, mean): one draw per chunk,
        # exact; the whole (reps, C) matrix is a single vectorised call.
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        shapes = np.maximum(sizes, 0).astype(np.float64)
        return rng.gamma(shape=shapes, scale=self._mean,
                         size=(reps, sizes.size))

    def chunk_times_round(self, starts, sizes, rng) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=np.int64)
        shapes = np.maximum(sizes, 0).astype(np.float64)
        return rng.gamma(shape=shapes, scale=self._mean)


class UniformWorkload(Workload):
    """Uniform task times on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def std(self) -> float:
        return (self.high - self.low) / math.sqrt(12.0)

    def sample(self, start, size, rng) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)


class NormalWorkload(Workload):
    """Normal task times truncated below at ``floor`` (default 0)."""

    def __init__(self, mean: float, std: float, floor: float = 0.0):
        if mean <= 0 or std < 0:
            raise ValueError("need mean > 0 and std >= 0")
        self._mean = float(mean)
        self._std = float(std)
        self.floor = float(floor)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._std

    def sample(self, start, size, rng) -> np.ndarray:
        return np.maximum(rng.normal(self._mean, self._std, size=size), self.floor)


class GammaWorkload(Workload):
    """Gamma task times (shape ``k``, scale ``theta``) — heavy-ish tails."""

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError("need shape > 0 and scale > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def std(self) -> float:
        return math.sqrt(self.shape) * self.scale

    def sample(self, start, size, rng) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=size)

    def chunk_times_batch(self, starts, sizes, reps, rng) -> np.ndarray:
        # Sum of k iid Gamma(a, theta) is Gamma(k a, theta): exact.
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        shapes = self.shape * np.maximum(sizes, 0).astype(np.float64)
        return rng.gamma(shapes, self.scale, size=(reps, sizes.size))

    def chunk_times_round(self, starts, sizes, rng) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=np.int64)
        shapes = self.shape * np.maximum(sizes, 0).astype(np.float64)
        return rng.gamma(shapes, self.scale)


class BimodalWorkload(Workload):
    """Mixture of two task classes (fast with prob. ``p_fast``, else slow)."""

    def __init__(self, fast: float, slow: float, p_fast: float = 0.5):
        if fast <= 0 or slow <= 0:
            raise ValueError("task times must be positive")
        if not 0 < p_fast < 1:
            raise ValueError("p_fast must be strictly between 0 and 1")
        self.fast = float(fast)
        self.slow = float(slow)
        self.p_fast = float(p_fast)

    @property
    def mean(self) -> float:
        return self.p_fast * self.fast + (1 - self.p_fast) * self.slow

    @property
    def std(self) -> float:
        m = self.mean
        ex2 = self.p_fast * self.fast**2 + (1 - self.p_fast) * self.slow**2
        return math.sqrt(max(0.0, ex2 - m * m))

    def sample(self, start, size, rng) -> np.ndarray:
        choice = rng.random(size) < self.p_fast
        return np.where(choice, self.fast, self.slow)


class LinearWorkload(Workload):
    """Deterministic linearly varying task times (Tzen & Ni's
    "decreasing" / "increasing" workloads).

    Task ``i`` of ``n`` takes ``first + (last - first) * i / (n - 1)``
    seconds.
    """

    position_dependent = True
    deterministic = True

    def __init__(self, n: int, first: float, last: float):
        if n < 1:
            raise ValueError("n must be >= 1")
        if first <= 0 or last <= 0:
            raise ValueError("task times must be positive")
        self.n = int(n)
        self.first = float(first)
        self.last = float(last)

    @property
    def mean(self) -> float:
        return (self.first + self.last) / 2.0

    @property
    def std(self) -> float:
        return abs(self.last - self.first) / math.sqrt(12.0)

    def _times(self, start: int, size: int) -> np.ndarray:
        idx = np.arange(start, start + size, dtype=np.float64)
        if self.n == 1:
            return np.full(size, self.first)
        frac = np.clip(idx / (self.n - 1), 0.0, 1.0)
        return self.first + (self.last - self.first) * frac

    def sample(self, start, size, rng) -> np.ndarray:
        return self._times(start, size)

    def chunk_times_batch(self, starts, sizes, reps, rng) -> np.ndarray:
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        row = np.array([
            self._times(int(st), int(sz)).sum() if sz > 0 else 0.0
            for st, sz in zip(starts, sizes)
        ])
        return np.broadcast_to(row, (reps, sizes.size))

    def chunk_times_round(self, starts, sizes, rng) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        # The same per-chunk ``.sum()`` as the scalar path, so the
        # stepping kernel stays bit-identical to ``DirectSimulator``.
        return np.array([
            self._times(int(st), int(sz)).sum() if sz > 0 else 0.0
            for st, sz in zip(starts, sizes)
        ])


def decreasing_workload(n: int, first: float, last: float) -> LinearWorkload:
    """Tzen & Ni's decreasing workload: task times fall from first to last."""
    if first < last:
        raise ValueError("decreasing workload needs first >= last")
    return LinearWorkload(n, first, last)


def increasing_workload(n: int, first: float, last: float) -> LinearWorkload:
    """Tzen & Ni's increasing workload: task times rise from first to last."""
    if first > last:
        raise ValueError("increasing workload needs first <= last")
    return LinearWorkload(n, first, last)


class PerTaskSampling(Workload):
    """Force per-task sampling of a wrapped workload.

    Disables the wrapped distribution's closed-form chunk sums (e.g. the
    exponential's Gamma draw) so every task time is drawn individually
    and summed — the faithful path of the chunk-time sampling ablation
    (DESIGN.md §6).  This wrapper inherits the base class's per-task
    ``chunk_times_batch``/``chunk_time``, which route through
    :meth:`sample`, so the inner closed forms are never consulted.
    """

    def __init__(self, inner: Workload):
        self.inner = inner
        self.position_dependent = inner.position_dependent
        self.deterministic = inner.deterministic

    @property
    def mean(self) -> float:
        return self.inner.mean

    @property
    def std(self) -> float:
        return self.inner.std

    def sample(self, start, size, rng) -> np.ndarray:
        return self.inner.sample(start, size, rng)


class TraceWorkload(Workload):
    """Replay recorded per-task execution times (Figure 2's trace input)."""

    position_dependent = True
    deterministic = True

    def __init__(self, times: np.ndarray):
        times = np.asarray(times, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("trace must be a non-empty 1-D array")
        if np.any(times < 0):
            raise ValueError("trace task times must be non-negative")
        self.times = times

    @property
    def mean(self) -> float:
        return float(self.times.mean())

    @property
    def std(self) -> float:
        return float(self.times.std())

    def sample(self, start, size, rng) -> np.ndarray:
        if start < 0 or start + size > self.times.size:
            raise IndexError(
                f"chunk [{start}, {start + size}) outside trace of "
                f"{self.times.size} tasks"
            )
        return self.times[start:start + size]

    def chunk_times_batch(self, starts, sizes, reps, rng) -> np.ndarray:
        starts, sizes, reps = _validate_batch(starts, sizes, reps)
        if sizes.size and (
            starts.min(initial=0) < 0
            or (starts + sizes).max(initial=0) > self.times.size
        ):
            raise IndexError(
                f"chunks outside trace of {self.times.size} tasks"
            )
        csum = np.concatenate(([0.0], np.cumsum(self.times)))
        row = csum[starts + np.maximum(sizes, 0)] - csum[starts]
        return np.broadcast_to(row, (reps, sizes.size))

    def chunk_times_round(self, starts, sizes, rng) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size and (
            starts.min(initial=0) < 0
            or (starts + sizes).max(initial=0) > self.times.size
        ):
            raise IndexError(
                f"chunks outside trace of {self.times.size} tasks"
            )
        # Same prefix-sum differences as chunk_times_batch, cached:
        # the stepping kernel calls this once per scheduling round.
        if not hasattr(self, "_csum"):
            self._csum = np.concatenate(([0.0], np.cumsum(self.times)))
        return self._csum[starts + np.maximum(sizes, 0)] - self._csum[starts]
