"""Workload (task execution time) generation — Figure 2's application inputs."""

from .distributions import (
    BimodalWorkload,
    ConstantWorkload,
    ExponentialWorkload,
    GammaWorkload,
    LinearWorkload,
    NormalWorkload,
    PerTaskSampling,
    TraceWorkload,
    UniformWorkload,
    Workload,
    decreasing_workload,
    increasing_workload,
)
from .generator import make_rng, run_seed, spawn_seeds
from .hagerup import HagerupExponentialWorkload
from .rand48 import Rand48
from .traces import load_trace, load_trace_workload, save_trace

__all__ = [
    "BimodalWorkload",
    "ConstantWorkload",
    "ExponentialWorkload",
    "GammaWorkload",
    "HagerupExponentialWorkload",
    "LinearWorkload",
    "NormalWorkload",
    "PerTaskSampling",
    "Rand48",
    "TraceWorkload",
    "UniformWorkload",
    "Workload",
    "decreasing_workload",
    "increasing_workload",
    "load_trace",
    "load_trace_workload",
    "make_rng",
    "run_seed",
    "save_trace",
    "spawn_seeds",
]
