"""Seed and RNG management for reproducible replication campaigns.

Every stochastic component of this package takes an explicit seed.
Replications spawn independent child streams with
``numpy.random.SeedSequence`` so runs are reproducible regardless of how
they are distributed over processes (the role the HPC cluster *taurus*
played for the original measurement campaign).
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.SeedSequence | None) -> np.random.Generator:
    """A PCG64 generator from a seed (None = OS entropy)."""
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences of ``seed``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.random.SeedSequence(seed).spawn(count)


def run_seed(campaign_seed: int | None, run_index: int) -> np.random.SeedSequence:
    """The seed of replication ``run_index`` within a campaign.

    Deterministic in ``(campaign_seed, run_index)`` and independent across
    indices, so a campaign can be resumed or sharded across workers.
    """
    if run_index < 0:
        raise ValueError("run_index must be non-negative")
    return np.random.SeedSequence(campaign_seed).spawn(run_index + 1)[run_index]
