"""Task-time trace files.

Section III of the paper notes that reproducing application measurements
requires "a trace file or similar information describing the behavior of
the measured application".  These helpers read and write such traces in a
one-float-per-line text format (comment lines start with ``#``) and in
NumPy ``.npy`` binary format.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .distributions import TraceWorkload


def save_trace(path: str | Path, times: np.ndarray, comment: str = "") -> None:
    """Write per-task execution times to ``path``.

    ``.npy`` suffix selects binary format; anything else writes text with
    an optional leading ``#`` comment.
    """
    path = Path(path)
    times = np.asarray(times, dtype=np.float64)
    if path.suffix == ".npy":
        np.save(path, times)
        return
    with path.open("w") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        for t in times:
            fh.write(f"{float(t)!r}\n")


def load_trace(path: str | Path) -> np.ndarray:
    """Read per-task execution times written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".npy":
        return np.asarray(np.load(path), dtype=np.float64)
    values: list[float] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            values.append(float(line))
    return np.asarray(values, dtype=np.float64)


def load_trace_workload(path: str | Path) -> TraceWorkload:
    """Load a trace file directly as a :class:`TraceWorkload`."""
    return TraceWorkload(load_trace(path))
