"""Flow-level network model with bandwidth contention.

The basic :class:`~repro.simgrid.msg.Send` effect prices a transfer at
``latency + size / bottleneck`` *independently* of concurrent traffic.
SimGrid's flow model instead shares each link's bandwidth among the
flows crossing it.  :class:`FlowNetwork` implements that sharing with
the classic progressive-filling (max-min fairness) algorithm:

1. every unsaturated link divides its remaining capacity equally among
   its unfrozen flows;
2. the link offering the smallest share saturates first — its flows are
   frozen at that rate;
3. repeat until all flows are frozen.

Rates are recomputed whenever a flow starts or finishes; in-flight flows
carry their remaining bytes across recomputations.  Event cancellation
is implemented by versioning (the engine's heap entries are immutable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .engine import Effect, Engine, Process
from .msg import Mailbox, Message
from .platform import Host, Link, Platform, Route


@dataclass
class Flow:
    """One in-progress transfer."""

    id: int
    route: Route
    remaining: float                    # bytes still to transfer
    on_complete: Callable[[], None]
    rate: float = 0.0                   # bytes/s under the current sharing
    version: int = 0                    # bumps on every rate change
    started_at: float = 0.0

    def eta(self) -> float:
        """Seconds until completion at the current rate."""
        if self.remaining <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return self.remaining / self.rate


def max_min_rates(flows: list[Flow]) -> dict[int, float]:
    """Max-min fair rates for ``flows`` (progressive filling).

    Returns flow id -> rate in bytes/s.  Flows with empty routes
    (loopback) get infinite rate.
    """
    rates: dict[int, float] = {}
    unfrozen = [f for f in flows if f.route.links]
    for f in flows:
        if not f.route.links:
            rates[f.id] = float("inf")
    remaining_capacity: dict[Link, float] = {}
    link_flows: dict[Link, list[Flow]] = {}
    for f in unfrozen:
        for link in f.route.links:
            remaining_capacity.setdefault(link, link.bandwidth)
            link_flows.setdefault(link, []).append(f)
    frozen: set[int] = set()
    while len(frozen) < len(unfrozen):
        # Share offered by each link to its active flows.
        best_share = None
        for link, fs in link_flows.items():
            active = [f for f in fs if f.id not in frozen]
            if not active:
                continue
            share = remaining_capacity[link] / len(active)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            break
        # Freeze every flow crossing a link that offers exactly the
        # minimal share.
        newly_frozen: list[Flow] = []
        for link, fs in link_flows.items():
            active = [f for f in fs if f.id not in frozen]
            if not active:
                continue
            share = remaining_capacity[link] / len(active)
            if share <= best_share * (1 + 1e-12):
                newly_frozen.extend(active)
        for f in newly_frozen:
            if f.id in frozen:
                continue
            frozen.add(f.id)
            rates[f.id] = best_share
            for link in f.route.links:
                remaining_capacity[link] -= best_share
                remaining_capacity[link] = max(0.0, remaining_capacity[link])
    return rates


class FlowNetwork:
    """Tracks active flows and drives their completions on the engine."""

    def __init__(self, engine: Engine, platform: Platform):
        self.engine = engine
        self.platform = platform
        self._flows: dict[int, Flow] = {}
        self._next_id = 0
        self._last_update = engine.now

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def start_flow(self, src: str, dst: str, size: float,
                   on_complete: Callable[[], None]) -> int:
        """Begin transferring ``size`` bytes; fire ``on_complete`` at end.

        The route's total latency is charged up front (the flow's bytes
        start moving after it); bandwidth is then shared max-min fairly.
        """
        if size < 0:
            raise ValueError("size must be >= 0")
        route = self.platform.route(src, dst)
        flow_id = self._next_id
        self._next_id += 1
        latency = sum(link.latency for link in route.links)

        def begin() -> None:
            flow = Flow(
                id=flow_id,
                route=route,
                remaining=float(size),
                on_complete=on_complete,
                started_at=self.engine.now,
            )
            self._flows[flow_id] = flow
            self._reshare()

        self.engine.schedule(latency, begin)
        return flow_id

    # -- internals ---------------------------------------------------------
    def _advance_progress(self) -> None:
        """Drain bytes transferred since the last rate change."""
        dt = self.engine.now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                if flow.rate == float("inf"):
                    flow.remaining = 0.0
                else:
                    flow.remaining = max(
                        0.0, flow.remaining - flow.rate * dt
                    )
        self._last_update = self.engine.now

    def _reshare(self) -> None:
        """Recompute all rates and (re)schedule completions."""
        self._advance_progress()
        rates = max_min_rates(list(self._flows.values()))
        for flow in self._flows.values():
            flow.rate = rates.get(flow.id, 0.0)
            flow.version += 1
            self._schedule_completion(flow)

    def _schedule_completion(self, flow: Flow) -> None:
        eta = flow.eta()
        if eta == float("inf"):
            return
        version = flow.version

        def complete() -> None:
            current = self._flows.get(flow.id)
            if current is None or current.version != version:
                return  # stale event: rates changed since scheduling
            self._advance_progress()
            del self._flows[flow.id]
            flow.on_complete()
            self._reshare()

        self.engine.schedule(eta, complete)


class ContendedSend(Effect):
    """Blocking send through a :class:`FlowNetwork`.

    Drop-in replacement for :class:`~repro.simgrid.msg.Send` whose
    transfer time depends on concurrent traffic: the sender resumes and
    the message is delivered when the flow's bytes have drained under
    max-min fair sharing.
    """

    __slots__ = ("network", "src_host", "mailbox", "payload", "size")

    def __init__(self, network: FlowNetwork, src_host: Host,
                 mailbox: Mailbox, payload: Any, size: float):
        if size < 0:
            raise ValueError("message size must be >= 0")
        self.network = network
        self.src_host = src_host
        self.mailbox = mailbox
        self.payload = payload
        self.size = size

    def apply(self, engine: Engine, process: Process) -> None:
        sent_at = engine.now

        def complete() -> None:
            message = Message(
                payload=self.payload,
                source=self.src_host.name,
                size=self.size,
                sent_at=sent_at,
                delivered_at=engine.now,
            )
            self.mailbox.deliver(message)
            process.resume(None)

        self.network.start_flow(
            self.src_host.name, self.mailbox.host.name, self.size, complete
        )
