"""Discrete-event simulation kernel.

A minimal but complete process-oriented DES core in the style SimGrid's
surf/simix layers provide to MSG: a global simulated clock, an event heap,
and *processes* written as Python generators that yield effects
(:class:`Timeout`, :class:`Receive`, ...).  The kernel knows nothing about
hosts or networks — those live in :mod:`repro.simgrid.platform` and
:mod:`repro.simgrid.msg`.

Determinism: events at equal times fire in schedule order (a monotonic
sequence number breaks ties), so simulations are exactly reproducible.

The event heap stores flat ``(time, seq, callback, args)`` tuples — the
callback is whatever callable the scheduler passed in (typically a bound
``Process.resume``), never a wrapper lambda, so scheduling an event
allocates no closure.  Dead processes are dropped from the engine's
bookkeeping as they finish; only live processes are retained (for the
deadlock report), so long simulations do not accumulate garbage.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional


class SimulationError(RuntimeError):
    """Raised for structural simulation errors (deadlock, bad effect)."""


class Effect:
    """Base class for values a process may yield to the kernel."""

    __slots__ = ()

    def apply(self, engine: "Engine", process: "Process") -> None:
        raise NotImplementedError


class Timeout(Effect):
    """Suspend the process for ``duration`` simulated seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"timeout duration must be >= 0, got {duration}")
        self.duration = duration

    def apply(self, engine: "Engine", process: "Process") -> None:
        engine.schedule(self.duration, process.resume, None)


class Process:
    """A simulated process driving a generator of effects.

    The generator may ``yield`` any :class:`Effect`; the value sent back
    into the generator is effect-specific (e.g. the received message for a
    receive effect).  When the generator returns, the process is dead.
    """

    __slots__ = ("engine", "gen", "name", "alive")

    def __init__(self, engine: "Engine", gen: Generator[Effect, Any, None],
                 name: str = "process"):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.alive = True

    def resume(self, value: Any = None) -> None:
        """Advance the generator with ``value`` until its next effect."""
        if not self.alive:
            return
        try:
            effect = self.gen.send(value)
        except StopIteration:
            self.alive = False
            self.engine._process_finished(self)
            return
        if not isinstance(effect, Effect):
            raise SimulationError(
                f"process {self.name!r} yielded {effect!r}, not an Effect"
            )
        effect.apply(self.engine, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<Process {self.name} ({state})>"


class Engine:
    """The event loop: a clock and a heap of scheduled callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        # Live processes only (insertion-ordered); finished processes are
        # dropped immediately so the engine does not retain dead state.
        self._live: dict[Process, None] = {}
        # Kernel statistics (read by the simulators' RunStats blocks).
        self.events_processed: int = 0
        self.heap_peak: int = 0
        self.live_peak: int = 0

    # -- event scheduling -------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        The heap entry is the flat tuple ``(time, seq, callback, args)``;
        no per-event closure is allocated.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, args))
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)

    # -- processes ----------------------------------------------------------
    def spawn(self, gen: Generator[Effect, Any, None],
              name: str = "process", start_at: float = 0.0) -> Process:
        """Create a process and schedule its first step at ``start_at``."""
        delay = start_at - self.now
        if delay < 0:
            raise ValueError(
                f"cannot start process {name!r} in the past "
                f"({start_at} < {self.now})"
            )
        process = Process(self, gen, name=name)
        self._live[process] = None
        if len(self._live) > self.live_peak:
            self.live_peak = len(self._live)
        self.schedule(delay, process.resume, None)
        return process

    def _process_finished(self, process: Process) -> None:
        self._live.pop(process, None)

    @property
    def live_processes(self) -> int:
        """Number of processes that have not yet finished."""
        return len(self._live)

    # -- running ------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Process events until the heap drains (or a limit hits).

        Returns the final simulated time.  ``until`` stops the clock at a
        time bound; the clock never rewinds, so a bound already in the
        past (``until < now``) processes nothing and leaves the clock
        where it is.  ``max_events`` guards against runaway simulations.
        """
        count = 0
        heap = self._heap
        try:
            while heap:
                time, _, action, args = heap[0]
                if until is not None and time > until:
                    # Clamp forward only: resuming a run with an earlier
                    # bound must not rewind the simulated clock.
                    if until > self.now:
                        self.now = until
                    return self.now
                heapq.heappop(heap)
                if time < self.now:
                    raise SimulationError("event scheduled in the past")
                self.now = time
                action(*args)
                count += 1
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self.now}"
                    )
        finally:
            self.events_processed += count
        if self._live:
            waiting = [p.name for p in self._live]
            raise SimulationError(
                f"deadlock: no events left but processes are waiting: "
                f"{waiting[:10]}"
            )
        return self.now
