"""Per-worker time accounting for the master-worker simulation.

Mirrors what the paper measures (Section IV-B): for each run the overall
simulation time and, per worker, the time spent in computation; derived
from those, the per-worker wasted (idle) time.  Additionally records the
observables the event-driven simulator can see but the direct simulator
cannot: message counts and time spent communicating.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorkerTrace:
    """Accumulated times of one simulated worker."""

    worker: int
    compute_time: float = 0.0
    task_time: float = 0.0     # unscaled task-time seconds (serial work)
    wait_time: float = 0.0     # request-to-reply round trips (comm + queueing)
    chunks: int = 0
    tasks: int = 0
    requests: int = 0
    first_request_at: float | None = None
    finalized_at: float | None = None

    def record_request(self, at: float) -> None:
        self.requests += 1
        if self.first_request_at is None:
            self.first_request_at = at

    def record_chunk(self, size: int, elapsed: float, task_time: float) -> None:
        self.chunks += 1
        self.tasks += size
        self.compute_time += elapsed
        self.task_time += task_time


@dataclass
class SimulationTrace:
    """All per-worker traces plus master-side counters."""

    workers: list[WorkerTrace] = field(default_factory=list)
    master_messages: int = 0
    master_busy_time: float = 0.0

    @classmethod
    def for_workers(cls, p: int) -> "SimulationTrace":
        return cls(workers=[WorkerTrace(worker=i) for i in range(p)])

    @property
    def compute_times(self) -> list[float]:
        return [w.compute_time for w in self.workers]

    @property
    def chunks_per_worker(self) -> list[int]:
        return [w.chunks for w in self.workers]

    @property
    def total_tasks(self) -> int:
        return sum(w.tasks for w in self.workers)
