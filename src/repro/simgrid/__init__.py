"""A from-scratch SimGrid-MSG-like simulator (engine, platform, MSG layer,
master-worker DLS application)."""

from .app import (
    ApplicationConfig,
    run_from_files,
    simulation_from_files,
    split_deployment,
)
from .engine import Effect, Engine, Process, SimulationError, Timeout
from .fastpath import (
    FastMasterWorkerSimulation,
    fastpath_ineligibility,
    replicate_msg_fast,
)
from .masterworker import (
    MasterWorkerConfig,
    MasterWorkerSimulation,
    replicate_msg,
)
from .msg import (
    ComputeTask,
    Execute,
    Mailbox,
    Message,
    Receive,
    Send,
)
from .network import ContendedSend, Flow, FlowNetwork, max_min_rates
from .platform import (
    Host,
    Link,
    Platform,
    Route,
    cluster_platform,
    fast_network_platform,
    star_platform,
)
from .trace import SimulationTrace, WorkerTrace
from .visualization import (
    ascii_gantt,
    paje_trace,
    save_paje_trace,
    utilization_summary,
    worker_timelines,
)
from .xmlio import (
    ProcessPlacement,
    deployment_to_xml,
    load_deployment,
    load_platform,
    loads_deployment,
    loads_platform,
    master_worker_deployment,
    parse_bandwidth,
    parse_latency,
    parse_speed,
    platform_to_xml,
)

__all__ = [
    "ApplicationConfig",
    "ComputeTask",
    "ContendedSend",
    "Flow",
    "FlowNetwork",
    "max_min_rates",
    "run_from_files",
    "simulation_from_files",
    "split_deployment",
    "Effect",
    "Engine",
    "Execute",
    "FastMasterWorkerSimulation",
    "fastpath_ineligibility",
    "replicate_msg_fast",
    "Host",
    "Link",
    "Mailbox",
    "MasterWorkerConfig",
    "MasterWorkerSimulation",
    "Message",
    "Platform",
    "Process",
    "ProcessPlacement",
    "Receive",
    "Route",
    "Send",
    "SimulationError",
    "SimulationTrace",
    "Timeout",
    "WorkerTrace",
    "ascii_gantt",
    "cluster_platform",
    "paje_trace",
    "save_paje_trace",
    "utilization_summary",
    "worker_timelines",
    "deployment_to_xml",
    "fast_network_platform",
    "load_deployment",
    "load_platform",
    "loads_deployment",
    "loads_platform",
    "master_worker_deployment",
    "parse_bandwidth",
    "parse_latency",
    "parse_speed",
    "platform_to_xml",
    "replicate_msg",
    "star_platform",
]
