"""Schedule visualisation: ASCII Gantt charts and Paje trace export.

SimGrid exports Paje traces for visualisation in Vite/Paje; this module
provides the same capability for the chunk-execution logs both
simulators can record (``record_chunks=True``), plus a terminal Gantt
renderer for quick inspection of load balance.
"""

from __future__ import annotations

from pathlib import Path

from ..results import ChunkExecution, RunResult


def ascii_gantt(
    result: RunResult,
    width: int = 72,
    max_workers: int = 32,
) -> str:
    """Render a run's chunk executions as a per-worker timeline.

    Each worker gets one row; chunk executions are painted with cycling
    glyphs so adjacent chunks are distinguishable; idle time shows as
    dots.  Requires the run to have been recorded with
    ``record_chunks=True``.
    """
    if not result.chunk_log:
        raise ValueError(
            "run has no chunk log; simulate with record_chunks=True"
        )
    makespan = result.makespan
    if makespan <= 0:
        return "(empty schedule)"
    glyphs = "#=@%+*"
    rows = []
    by_worker: dict[int, list[ChunkExecution]] = {}
    for ce in result.chunk_log:
        by_worker.setdefault(ce.record.worker, []).append(ce)
    shown = sorted(by_worker)[:max_workers]
    for worker in range(result.p):
        if worker not in by_worker:
            if worker < max_workers:
                rows.append(f"w{worker:<3}|" + "." * width + "|")
            continue
        if worker not in shown:
            continue
        line = ["."] * width
        for i, ce in enumerate(by_worker[worker]):
            a = int(ce.start_time / makespan * width)
            b = int(ce.end_time / makespan * width)
            b = max(b, a + 1)
            glyph = glyphs[i % len(glyphs)]
            for pos in range(a, min(b, width)):
                line[pos] = glyph
        rows.append(f"w{worker:<3}|" + "".join(line) + "|")
    if result.p > max_workers:
        rows.append(f"... ({result.p - max_workers} more workers)")
    header = (
        f"{result.technique}: n={result.n}, p={result.p}, "
        f"makespan={makespan:.3f}s, {result.num_chunks} chunks"
    )
    scale = f"    0{'':{width - 10}}{makespan:>9.2f}s"
    return "\n".join([header, *rows, scale])


def utilization_summary(result: RunResult) -> str:
    """One line per worker: busy fraction and chunk count."""
    lines = [f"{'worker':>7} {'busy%':>7} {'chunks':>7} {'compute[s]':>11}"]
    for w in range(result.p):
        busy = (
            result.compute_times[w] / result.makespan * 100
            if result.makespan > 0
            else 0.0
        )
        lines.append(
            f"{w:>7} {busy:>6.1f}% {result.chunks_per_worker[w]:>7} "
            f"{result.compute_times[w]:>11.3f}"
        )
    return "\n".join(lines)


# -- Paje export ------------------------------------------------------------

_PAJE_HEADER = """\
%EventDef PajeDefineContainerType 0
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeDefineStateType 1
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeCreateContainer 2
%       Time date
%       Alias string
%       Type string
%       Container string
%       Name string
%EndEventDef
%EventDef PajeSetState 3
%       Time date
%       Type string
%       Container string
%       Value string
%EndEventDef
%EventDef PajeDestroyContainer 4
%       Time date
%       Type string
%       Name string
%EndEventDef
"""


def paje_trace(result: RunResult) -> str:
    """Serialise a recorded run to a Paje trace (SimGrid's format).

    Containers: one per worker.  States: ``compute`` during chunk
    execution, ``idle`` otherwise.  Loadable by Paje/Vite-compatible
    tools.
    """
    if not result.chunk_log:
        raise ValueError(
            "run has no chunk log; simulate with record_chunks=True"
        )
    out = [_PAJE_HEADER]
    out.append('0 CT_Platform 0 "Platform"')
    out.append('0 CT_Worker CT_Platform "Worker"')
    out.append('1 ST_WorkerState CT_Worker "Worker State"')
    out.append('2 0.000000 C_platform CT_Platform 0 "platform"')
    for w in range(result.p):
        out.append(
            f'2 0.000000 C_w{w} CT_Worker C_platform "worker-{w}"'
        )
        out.append(f'3 0.000000 ST_WorkerState C_w{w} "idle"')
    events: list[tuple[float, int, str]] = []
    for ce in sorted(result.chunk_log, key=lambda c: c.start_time):
        w = ce.record.worker
        events.append((ce.start_time, 1, f'ST_WorkerState C_w{w} "compute"'))
        events.append((ce.end_time, 0, f'ST_WorkerState C_w{w} "idle"'))
    events.sort(key=lambda e: (e[0], e[1]))
    for time, _, body in events:
        out.append(f"3 {time:.6f} {body}")
    for w in range(result.p):
        out.append(f"4 {result.makespan:.6f} CT_Worker C_w{w}")
    out.append(f"4 {result.makespan:.6f} CT_Platform C_platform")
    return "\n".join(out) + "\n"


def save_paje_trace(result: RunResult, path: str | Path) -> None:
    """Write :func:`paje_trace` output to ``path``."""
    Path(path).write_text(paje_trace(result))


def worker_timelines(result: RunResult) -> dict[int, list[tuple[float, float]]]:
    """Per-worker (start, end) execution windows from the chunk log."""
    if not result.chunk_log:
        raise ValueError(
            "run has no chunk log; simulate with record_chunks=True"
        )
    out: dict[int, list[tuple[float, float]]] = {
        w: [] for w in range(result.p)
    }
    for ce in result.chunk_log:
        out[ce.record.worker].append((ce.start_time, ce.end_time))
    for windows in out.values():
        windows.sort()
    return out
