"""Schedule visualisation: ASCII Gantt charts and trace re-exports.

The terminal Gantt renderer and the per-worker utilisation table live
here; the trace *exporters* — Paje (SimGrid's format) and the Chrome
Trace Event Format — moved to :mod:`repro.obs.timeline`, which this
module re-exports (``paje_trace``, ``save_paje_trace``,
``worker_timelines``) so existing imports keep working.

Every renderer requires the run to carry a chunk log; a run without one
fails with an actionable error naming the flags that record one
(``record_chunks=True`` on the simulators, ``collect_chunk_log=True``
on :class:`~repro.experiments.runner.RunTask`).
"""

from __future__ import annotations

from ..obs.timeline import (  # noqa: F401  (back-compat re-exports)
    paje_trace,
    require_chunk_log,
    save_paje_trace,
    worker_timelines,
)
from ..results import ChunkExecution, RunResult

__all__ = [
    "ascii_gantt",
    "paje_trace",
    "require_chunk_log",
    "save_paje_trace",
    "utilization_summary",
    "worker_timelines",
]


def ascii_gantt(
    result: RunResult,
    width: int = 72,
    max_workers: int = 32,
) -> str:
    """Render a run's chunk executions as a per-worker timeline.

    Each worker gets one row; chunk executions are painted with cycling
    glyphs so adjacent chunks are distinguishable; idle time shows as
    dots.  Requires the run to carry a chunk log (see
    :func:`repro.obs.timeline.require_chunk_log`).
    """
    require_chunk_log(result, action="render a Gantt chart")
    makespan = result.makespan
    if makespan <= 0:
        return "(empty schedule)"
    glyphs = "#=@%+*"
    rows = []
    by_worker: dict[int, list[ChunkExecution]] = {}
    for ce in result.chunk_log:
        by_worker.setdefault(ce.record.worker, []).append(ce)
    shown = sorted(by_worker)[:max_workers]
    for worker in range(result.p):
        if worker not in by_worker:
            if worker < max_workers:
                rows.append(f"w{worker:<3}|" + "." * width + "|")
            continue
        if worker not in shown:
            continue
        line = ["."] * width
        for i, ce in enumerate(by_worker[worker]):
            a = int(ce.start_time / makespan * width)
            b = int(ce.end_time / makespan * width)
            b = max(b, a + 1)
            glyph = glyphs[i % len(glyphs)]
            for pos in range(a, min(b, width)):
                line[pos] = glyph
        rows.append(f"w{worker:<3}|" + "".join(line) + "|")
    if result.p > max_workers:
        rows.append(f"... ({result.p - max_workers} more workers)")
    header = (
        f"{result.technique}: n={result.n}, p={result.p}, "
        f"makespan={makespan:.3f}s, {result.num_chunks} chunks"
    )
    scale = f"    0{'':{width - 10}}{makespan:>9.2f}s"
    return "\n".join([header, *rows, scale])


def utilization_summary(result: RunResult) -> str:
    """One line per worker: busy fraction and chunk count."""
    lines = [f"{'worker':>7} {'busy%':>7} {'chunks':>7} {'compute[s]':>11}"]
    for w in range(result.p):
        busy = (
            result.compute_times[w] / result.makespan * 100
            if result.makespan > 0
            else 0.0
        )
        lines.append(
            f"{w:>7} {busy:>6.1f}% {result.chunks_per_worker[w]:>7} "
            f"{result.compute_times[w]:>11.3f}"
        )
    return "\n".join(lines)
