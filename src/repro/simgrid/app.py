"""File-driven simulation: platform XML + deployment XML -> run.

This is how SimGrid-MSG itself is invoked (Figure 2 of the paper): the
*system information* comes from a platform file, the process mapping
from a deployment file, and the *application information* (task count,
technique, task-time distribution) from the user.  :func:`run_from_files`
assembles a :class:`~repro.simgrid.masterworker.MasterWorkerSimulation`
from those pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.params import SchedulingParams
from ..core.registry import get_technique
from ..results import RunResult
from ..workloads.distributions import Workload
from .masterworker import MasterWorkerConfig, MasterWorkerSimulation
from .xmlio import ProcessPlacement, load_deployment, load_platform


@dataclass
class ApplicationConfig:
    """The application information of Figure 2."""

    technique: str
    n: int
    workload: Workload
    h: float = 0.0
    mu: float | None = None
    sigma: float | None = None
    technique_kwargs: dict = field(default_factory=dict)

    def scheduling_params(self, p: int) -> SchedulingParams:
        mu = self.mu if self.mu is not None else self.workload.mean
        sigma = self.sigma if self.sigma is not None else self.workload.std
        return SchedulingParams(
            n=self.n, p=p, h=self.h,
            mu=mu if mu > 0 else None,
            sigma=sigma,
        )


def split_deployment(
    placements: list[ProcessPlacement],
) -> tuple[str, list[str]]:
    """Extract (master host, ordered worker hosts) from a deployment.

    Workers are ordered by their first ``<argument>`` (the worker id)
    when present, otherwise by file order.
    """
    masters = [p for p in placements if p.function == "master"]
    workers = [p for p in placements if p.function == "worker"]
    if len(masters) != 1:
        raise ValueError(
            f"deployment must place exactly one master, found {len(masters)}"
        )
    if not workers:
        raise ValueError("deployment places no workers")

    def order_key(item: tuple[int, ProcessPlacement]):
        index, placement = item
        if placement.arguments:
            try:
                return (0, int(placement.arguments[0]))
            except ValueError:
                pass
        return (1, index)

    ordered = [
        p for _, p in sorted(enumerate(workers), key=order_key)
    ]
    return masters[0].host, [p.host for p in ordered]


def simulation_from_files(
    platform_path: str | Path,
    deployment_path: str | Path,
    app: ApplicationConfig,
    config: MasterWorkerConfig | None = None,
) -> MasterWorkerSimulation:
    """Build a simulation from platform + deployment files."""
    platform = load_platform(platform_path)
    placements = load_deployment(deployment_path)
    master_host, worker_hosts = split_deployment(placements)
    params = app.scheduling_params(len(worker_hosts))
    return MasterWorkerSimulation(
        params,
        app.workload,
        platform=platform,
        config=config,
        master_host=master_host,
        worker_hosts=worker_hosts,
    )


def run_from_files(
    platform_path: str | Path,
    deployment_path: str | Path,
    app: ApplicationConfig,
    seed: int | np.random.SeedSequence | None = None,
    config: MasterWorkerConfig | None = None,
) -> RunResult:
    """One-call file-driven run: files + application info -> RunResult."""
    sim = simulation_from_files(platform_path, deployment_path, app, config)
    factory = lambda params: get_technique(app.technique)(
        params, **app.technique_kwargs
    )
    return sim.run(factory, seed=seed)
