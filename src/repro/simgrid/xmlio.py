"""SimGrid-style platform and deployment XML files.

SimGrid describes the system in a *platform file* and the process mapping
in a *deployment file*.  This module reads and writes the subset of the
version-4 format the DLS experiments need::

    <?xml version='1.0'?>
    <platform version="4.1">
      <zone id="AS0" routing="Full">
        <host id="master" speed="1Gf"/>
        <host id="worker-0" speed="1Gf"/>
        <link id="link-0" bandwidth="125MBps" latency="50us"/>
        <route src="master" dst="worker-0"><link_ctn id="link-0"/></route>
      </zone>
    </platform>

    <?xml version='1.0'?>
    <deployment>
      <process host="master" function="master"/>
      <process host="worker-0" function="worker"><argument value="0"/></process>
    </deployment>

Unit suffixes follow SimGrid: speeds in ``f/Kf/Mf/Gf/Tf`` (flop/s),
bandwidths in ``Bps/KBps/MBps/GBps`` (bytes/s), latencies in
``s/ms/us/ns``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path

from .platform import Host, Link, Platform

_SPEED_UNITS = {"f": 1.0, "kf": 1e3, "mf": 1e6, "gf": 1e9, "tf": 1e12}
_BANDWIDTH_UNITS = {"bps": 1.0, "kbps": 1e3, "mbps": 1e6, "gbps": 1e9}
_TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


def _parse_with_units(text: str, units: dict[str, float], kind: str) -> float:
    """Parse ``"125MBps"``-style values into base units."""
    text = text.strip()
    lowered = text.lower()
    for suffix in sorted(units, key=len, reverse=True):
        if lowered.endswith(suffix):
            number = lowered[: -len(suffix)]
            try:
                return float(number) * units[suffix]
            except ValueError:
                raise ValueError(f"bad {kind} value {text!r}") from None
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad {kind} value {text!r} (known units: {sorted(units)})"
        ) from None


def parse_speed(text: str) -> float:
    """Host speed string to flop/s."""
    return _parse_with_units(text, _SPEED_UNITS, "speed")


def parse_bandwidth(text: str) -> float:
    """Bandwidth string to bytes/s."""
    return _parse_with_units(text, _BANDWIDTH_UNITS, "bandwidth")


def parse_latency(text: str) -> float:
    """Latency string to seconds."""
    return _parse_with_units(text, _TIME_UNITS, "latency")


def load_platform(path: str | Path) -> Platform:
    """Read a platform XML file into a :class:`Platform`."""
    tree = ET.parse(Path(path))
    return platform_from_xml(tree.getroot())


def loads_platform(text: str) -> Platform:
    """Parse a platform XML string."""
    return platform_from_xml(ET.fromstring(text))


def platform_from_xml(root: ET.Element) -> Platform:
    if root.tag != "platform":
        raise ValueError(f"expected <platform> root, got <{root.tag}>")
    platform = Platform(name=root.get("id", "platform"))
    zones = root.findall("zone") or root.findall("AS") or [root]
    for zone in zones:
        for el in zone.findall("host"):
            platform.add_host(
                Host(
                    name=_require(el, "id"),
                    speed=parse_speed(_require(el, "speed")),
                    cores=int(el.get("core", "1")),
                )
            )
        for el in zone.findall("link"):
            platform.add_link(
                Link(
                    name=_require(el, "id"),
                    bandwidth=parse_bandwidth(_require(el, "bandwidth")),
                    latency=parse_latency(_require(el, "latency")),
                )
            )
        for el in zone.findall("route"):
            links = [
                platform.link(_require(ctn, "id"))
                for ctn in el.findall("link_ctn")
            ]
            symmetric = el.get("symmetrical", "yes").lower() in ("yes", "true")
            platform.add_route(
                _require(el, "src"), _require(el, "dst"), links, symmetric
            )
    return platform


def platform_to_xml(platform: Platform) -> str:
    """Serialise a :class:`Platform` back to platform-file XML."""
    root = ET.Element("platform", version="4.1")
    zone = ET.SubElement(root, "zone", id=platform.name, routing="Full")
    for host in platform.hosts:
        ET.SubElement(
            zone, "host", id=host.name, speed=f"{host.speed}f",
            core=str(host.cores),
        )
    seen_links: set[str] = set()
    routes = []
    for (src, dst), route in sorted(platform._routes.items()):
        if (dst, src) in {(s, d) for s, d in routes}:
            continue
        routes.append((src, dst))
        for link in route.links:
            if link.name not in seen_links:
                seen_links.add(link.name)
                ET.SubElement(
                    zone, "link", id=link.name,
                    bandwidth=f"{link.bandwidth}Bps",
                    latency=f"{link.latency}s",
                )
    for src, dst in routes:
        el = ET.SubElement(zone, "route", src=src, dst=dst)
        for link in platform.route(src, dst).links:
            ET.SubElement(el, "link_ctn", id=link.name)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


@dataclass(frozen=True)
class ProcessPlacement:
    """One <process> entry of a deployment file."""

    host: str
    function: str
    arguments: tuple[str, ...] = ()


def load_deployment(path: str | Path) -> list[ProcessPlacement]:
    """Read a deployment XML file."""
    tree = ET.parse(Path(path))
    return deployment_from_xml(tree.getroot())


def loads_deployment(text: str) -> list[ProcessPlacement]:
    """Parse a deployment XML string."""
    return deployment_from_xml(ET.fromstring(text))


def deployment_from_xml(root: ET.Element) -> list[ProcessPlacement]:
    if root.tag != "deployment":
        raise ValueError(f"expected <deployment> root, got <{root.tag}>")
    placements = []
    for el in root.findall("process"):
        args = tuple(
            _require(arg, "value") for arg in el.findall("argument")
        )
        placements.append(
            ProcessPlacement(
                host=_require(el, "host"),
                function=_require(el, "function"),
                arguments=args,
            )
        )
    return placements


def master_worker_deployment(p: int) -> list[ProcessPlacement]:
    """The canonical deployment: one master plus ``p`` workers."""
    out = [ProcessPlacement(host="master", function="master")]
    for i in range(p):
        out.append(
            ProcessPlacement(
                host=f"worker-{i}", function="worker", arguments=(str(i),)
            )
        )
    return out


def deployment_to_xml(placements: list[ProcessPlacement]) -> str:
    """Serialise placements to deployment-file XML."""
    root = ET.Element("deployment")
    for pl in placements:
        el = ET.SubElement(root, "process", host=pl.host, function=pl.function)
        for arg in pl.arguments:
            ET.SubElement(el, "argument", value=arg)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _require(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise ValueError(f"<{el.tag}> missing required attribute {attr!r}")
    return value
