"""Platform model: hosts, links and routes (the SimGrid platform file).

Figure 2 of the paper lists the system information a DLS simulation needs:
hosts (speed, number of cores) and network (topology, bandwidth, latency).
This module models exactly that.

* A :class:`Host` computes ``flops`` of work in ``flops / speed`` seconds.
* A :class:`Link` transfers ``bytes`` in ``latency + bytes / bandwidth``
  seconds.
* A :class:`Route` is an ordered list of links between two hosts; its
  transfer time sums the latencies and is throttled by the slowest link
  (SimGrid's store-and-forward approximation for a single stream).

Factories build the platforms the experiments use: :func:`star_platform`
(master in the centre, as the MSG master-worker model of Figure 1) and
:func:`cluster_platform` (a homogeneous cluster behind a shared backbone).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Host:
    """A processing element: name, speed in flop/s, core count."""

    name: str
    speed: float = 1.0
    cores: int = 1

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"host speed must be positive, got {self.speed}")
        if self.cores < 1:
            raise ValueError(f"host cores must be >= 1, got {self.cores}")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ValueError("flops must be >= 0")
        return flops / self.speed


@dataclass(frozen=True)
class Link:
    """A network link: bandwidth in bytes/s, latency in seconds."""

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def transfer_time(self, size: float) -> float:
        """Seconds to push ``size`` bytes through this link alone."""
        if size < 0:
            raise ValueError("size must be >= 0")
        return self.latency + size / self.bandwidth


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links between a host pair."""

    links: tuple[Link, ...]

    def transfer_time(self, size: float) -> float:
        """Sum of latencies plus the slowest link's serialisation time."""
        if not self.links:
            return 0.0
        latency = sum(link.latency for link in self.links)
        bottleneck = min(link.bandwidth for link in self.links)
        return latency + size / bottleneck


class Platform:
    """A set of hosts plus routing between them."""

    def __init__(self, name: str = "platform"):
        self.name = name
        self._hosts: dict[str, Host] = {}
        self._links: dict[str, Link] = {}
        self._routes: dict[tuple[str, str], Route] = {}
        self._loopback = Route(links=())

    # -- construction -----------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        return host

    def add_link(self, link: Link) -> Link:
        if link.name in self._links:
            raise ValueError(f"duplicate link {link.name!r}")
        self._links[link.name] = link
        return link

    def add_route(self, src: str, dst: str, links: list[Link],
                  symmetric: bool = True) -> None:
        self._require_host(src)
        self._require_host(dst)
        route = Route(links=tuple(links))
        self._routes[(src, dst)] = route
        if symmetric:
            self._routes[(dst, src)] = route

    # -- queries ------------------------------------------------------------
    def host(self, name: str) -> Host:
        return self._require_host(name)

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(f"unknown link {name!r}") from None

    @property
    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    @property
    def host_names(self) -> list[str]:
        return list(self._hosts)

    def route(self, src: str, dst: str) -> Route:
        """The route between two hosts (loopback when src == dst)."""
        self._require_host(src)
        self._require_host(dst)
        if src == dst:
            return self._loopback
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise KeyError(f"no route from {src!r} to {dst!r}") from None

    def transfer_time(self, src: str, dst: str, size: float) -> float:
        """Seconds to send ``size`` bytes from ``src`` to ``dst``."""
        return self.route(src, dst).transfer_time(size)

    def _require_host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None


def star_platform(
    workers: int,
    master_speed: float = 1.0,
    worker_speed: float | list[float] = 1.0,
    bandwidth: float = 1.25e8,
    latency: float = 5e-5,
) -> Platform:
    """Master-worker star: one link per worker to the master.

    ``worker_speed`` may be a scalar (homogeneous) or one value per
    worker (heterogeneous — the WF/AWF scenario).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if isinstance(worker_speed, (int, float)):
        speeds = [float(worker_speed)] * workers
    else:
        speeds = list(map(float, worker_speed))
        if len(speeds) != workers:
            raise ValueError(
                f"need {workers} worker speeds, got {len(speeds)}"
            )
    platform = Platform(name=f"star-{workers}")
    platform.add_host(Host("master", speed=master_speed))
    for i in range(workers):
        host = platform.add_host(Host(f"worker-{i}", speed=speeds[i]))
        link = platform.add_link(
            Link(f"link-{i}", bandwidth=bandwidth, latency=latency)
        )
        platform.add_route("master", host.name, [link])
    return platform


def cluster_platform(
    workers: int,
    speed: float = 1.0,
    link_bandwidth: float = 1.25e8,
    link_latency: float = 5e-5,
    backbone_bandwidth: float = 1.25e9,
    backbone_latency: float = 5e-7,
) -> Platform:
    """A homogeneous cluster: per-host up/down links through a backbone."""
    platform = Platform(name=f"cluster-{workers}")
    backbone = platform.add_link(
        Link("backbone", bandwidth=backbone_bandwidth, latency=backbone_latency)
    )
    platform.add_host(Host("master", speed=speed))
    master_link = platform.add_link(
        Link("link-master", bandwidth=link_bandwidth, latency=link_latency)
    )
    for i in range(workers):
        host = platform.add_host(Host(f"worker-{i}", speed=speed))
        link = platform.add_link(
            Link(f"link-{i}", bandwidth=link_bandwidth, latency=link_latency)
        )
        platform.add_route("master", host.name, [master_link, backbone, link])
    return platform


def fast_network_platform(workers: int,
                          speed: float | list[float] = 1.0) -> Platform:
    """The BOLD-reproduction platform: communication is effectively free.

    Section III-B: "the network parameters bandwidth [set] to a very high
    value and the latency to a very low value.  This simulates no costs
    for communication."
    """
    return star_platform(
        workers,
        worker_speed=speed,
        bandwidth=1e15,
        latency=1e-12,
    )
