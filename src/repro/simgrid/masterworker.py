"""The master-worker DLS application on the MSG layer (Figure 1).

The execution model follows Section II of the paper exactly:

    "When starting the simulation, all workers are in idle state, and
    send work request messages to the master.  When the master receives a
    work request message, it computes the chunk size for the chosen DLS
    technique and sends the computed number of tasks to the requesting
    worker.  The worker simulates executing the tasks, and when it
    finishes, it sends again a work request message to the master.  On
    completion of all tasks, the master sends finalization messages to
    the workers, and the simulation ends."

Adaptive techniques receive their timing feedback piggy-backed on the
next work-request message of the same worker, which is when the master
could physically learn about the completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Generator, Sequence

import numpy as np

from ..core.base import Scheduler
from ..core.params import SchedulingParams
from ..metrics.wasted_time import OverheadModel
from ..obs.stats import RunStats
from ..results import ChunkExecution, RunResult
from ..workloads.distributions import Workload
from ..workloads.generator import make_rng
from .engine import Engine, Timeout
from .msg import (
    FINALIZE_SIZE,
    REQUEST_SIZE,
    WORK_MESSAGE_SIZE,
    ComputeTask,
    Execute,
    Mailbox,
    Receive,
    Send,
)
from .network import ContendedSend, FlowNetwork
from .platform import Platform, fast_network_platform
from .trace import SimulationTrace


@dataclass
class MasterWorkerConfig:
    """Knobs of the master-worker simulation.

    ``overhead_model`` selects where the scheduling overhead ``h`` is
    charged (see :mod:`repro.metrics.wasted_time`); the BOLD reproduction
    uses the default POST_HOC model on a free network.  Message sizes are
    control-message sized because the application data is replicated.
    """

    overhead_model: OverheadModel = OverheadModel.POST_HOC
    request_size: float = REQUEST_SIZE
    work_size: float = WORK_MESSAGE_SIZE
    finalize_size: float = FINALIZE_SIZE
    start_times: Sequence[float] | None = None
    record_chunks: bool = False
    max_events: int | None = None
    #: route messages through the max-min-fair flow network so concurrent
    #: transfers contend for link bandwidth (SimGrid's flow model)
    contention: bool = False


class MasterWorkerSimulation:
    """One master, ``p`` workers, a platform, a workload, a DLS technique.

    The platform must contain a host named ``master`` and hosts named
    ``worker-0`` .. ``worker-{p-1}``; the factories in
    :mod:`repro.simgrid.platform` produce exactly that layout.  When no
    platform is given, the free-network platform of the BOLD reproduction
    is used.
    """

    def __init__(
        self,
        params: SchedulingParams,
        workload: Workload,
        platform: Platform | None = None,
        config: MasterWorkerConfig | None = None,
        master_host: str = "master",
        worker_hosts: Sequence[str] | None = None,
    ):
        self.params = params
        self.workload = workload
        self.platform = platform or fast_network_platform(params.p)
        self.config = config or MasterWorkerConfig()
        self.master_host = self.platform.host(master_host)
        if worker_hosts is None:
            worker_hosts = [f"worker-{i}" for i in range(params.p)]
        if len(worker_hosts) != params.p:
            raise ValueError(
                f"need {params.p} worker hosts, got {len(worker_hosts)}"
            )
        self.worker_hosts = [self.platform.host(name) for name in worker_hosts]
        starts = self.config.start_times
        if starts is None:
            starts = [0.0] * params.p
        if len(starts) != params.p:
            raise ValueError(
                f"need {params.p} start times, got {len(starts)}"
            )
        if any(t < 0 for t in starts):
            raise ValueError("start times must be non-negative")
        self.start_times = list(map(float, starts))


    def _send_effect(self, network, src_host, mailbox, payload, size):
        """The configured send effect (plain or contention-aware)."""
        if network is not None:
            return ContendedSend(network, src_host, mailbox, payload, size)
        return Send(self.platform, src_host, mailbox, payload, size)

    # -- processes ----------------------------------------------------------
    def _worker_proc(
        self,
        w: int,
        engine: Engine,
        network: FlowNetwork | None,
        master_mb: Mailbox,
        my_mb: Mailbox,
        trace: SimulationTrace,
        scheduler_h: float,
        rng: np.random.Generator,
        log: list[ChunkExecution] | None,
        chunk_records: dict[int, object],
    ) -> Generator:
        host = self.worker_hosts[w]
        wtrace = trace.workers[w]
        model = self.config.overhead_model
        report: tuple[int, float] | None = None
        while True:
            wtrace.record_request(engine.now)
            t_request = engine.now
            yield self._send_effect(
                network, host, master_mb,
                ("request", w, report), self.config.request_size,
            )
            report = None
            msg = yield Receive(my_mb)
            wtrace.wait_time += engine.now - t_request
            kind = msg.payload[0]
            if kind == "finalize":
                wtrace.finalized_at = engine.now
                return
            _, start, size = msg.payload
            if model is OverheadModel.PER_WORKER and scheduler_h > 0:
                yield Timeout(scheduler_h)
            task_time = self.workload.chunk_time(start, size, rng)
            exec_start = engine.now
            yield Execute(ComputeTask(f"chunk@{start}", task_time), host)
            elapsed = engine.now - exec_start
            wtrace.record_chunk(size, elapsed, task_time)
            report = (size, elapsed)
            if log is not None:
                log.append(
                    ChunkExecution(chunk_records[start], exec_start, elapsed)
                )

    def _master_proc(
        self,
        engine: Engine,
        network: FlowNetwork | None,
        scheduler: Scheduler,
        master_mb: Mailbox,
        worker_mbs: list[Mailbox],
        trace: SimulationTrace,
        chunk_records: dict[int, object],
    ) -> Generator:
        p = self.params.p
        h = self.params.h
        model = self.config.overhead_model
        finalized = 0
        while finalized < p:
            msg = yield Receive(master_mb)
            trace.master_messages += 1
            _, w, report = msg.payload
            if report is not None:
                scheduler.record_finished(w, *report)
            if (
                model is OverheadModel.SERIALIZED_MASTER
                and h > 0
                and scheduler.state.remaining > 0
            ):
                busy_from = engine.now
                yield Timeout(h)
                trace.master_busy_time += engine.now - busy_from
            size = scheduler.next_chunk(w)
            if size == 0:
                yield self._send_effect(
                    network, self.master_host, worker_mbs[w],
                    ("finalize",), self.config.finalize_size,
                )
                finalized += 1
            else:
                record = scheduler.last_chunk
                chunk_records[record.start] = record
                yield self._send_effect(
                    network, self.master_host, worker_mbs[w],
                    ("work", record.start, record.size), self.config.work_size,
                )

    # -- driving ------------------------------------------------------------
    def run(
        self,
        scheduler: Scheduler | Callable[[SchedulingParams], Scheduler],
        seed: int | np.random.SeedSequence | None = None,
    ) -> RunResult:
        """Simulate one run end to end; return its :class:`RunResult`."""
        t_wall = time.perf_counter()
        if not isinstance(scheduler, Scheduler):
            scheduler = scheduler(self.params)
        if scheduler.state.scheduled_chunks:
            raise ValueError("scheduler has already been used; pass a fresh one")
        rng = make_rng(seed)
        p = self.params.p
        engine = Engine()
        trace = SimulationTrace.for_workers(p)
        master_mb = Mailbox("master", self.master_host)
        worker_mbs = [
            Mailbox(f"worker-{w}", self.worker_hosts[w]) for w in range(p)
        ]
        log: list[ChunkExecution] | None = (
            [] if self.config.record_chunks else None
        )
        chunk_records: dict[int, object] = {}
        network = (
            FlowNetwork(engine, self.platform)
            if self.config.contention
            else None
        )

        engine.spawn(
            self._master_proc(
                engine, network, scheduler, master_mb, worker_mbs, trace,
                chunk_records,
            ),
            name="master",
        )
        for w in range(p):
            engine.spawn(
                self._worker_proc(
                    w, engine, network, master_mb, worker_mbs[w], trace,
                    self.params.h, rng, log, chunk_records,
                ),
                name=f"worker-{w}",
                start_at=self.start_times[w],
            )
        makespan = engine.run(max_events=self.config.max_events)

        return RunResult(
            technique=scheduler.label or scheduler.name,
            n=self.params.n,
            p=p,
            h=self.params.h,
            overhead_model=self.config.overhead_model,
            makespan=makespan,
            compute_times=trace.compute_times,
            chunks_per_worker=trace.chunks_per_worker,
            num_chunks=scheduler.num_scheduling_operations,
            total_task_time=sum(w.task_time for w in trace.workers),
            chunk_log=log or [],
            extras={
                "master_messages": trace.master_messages,
                "master_busy_time": trace.master_busy_time,
                "wait_times": [w.wait_time for w in trace.workers],
                "total_requests": sum(w.requests for w in trace.workers),
            },
            stats=RunStats(
                fast_path=False,
                events=engine.events_processed,
                heap_peak=engine.heap_peak,
                live_peak=engine.live_peak,
                wall_time=time.perf_counter() - t_wall,
            ),
        )


#: below this many runs the pool overhead dominates; stay serial
MSG_POOL_THRESHOLD = 8


@dataclass(frozen=True)
class _MsgReplicationBlock:
    """A picklable block of replications for the process pool.

    Replications keep their individually spawned seeds, so the
    block partitioning (and therefore the worker count) cannot change
    any result.  Simulations that provide ``run_many`` (the fast path)
    amortise the per-block schedule precomputation.
    """

    simulation: MasterWorkerSimulation
    factory: Callable[[SchedulingParams], Scheduler]
    seeds: tuple[np.random.SeedSequence, ...]

    def execute(self) -> list[RunResult]:
        run_many = getattr(self.simulation, "run_many", None)
        if run_many is not None:
            return run_many(self.factory, list(self.seeds))
        return [self.simulation.run(self.factory, s) for s in self.seeds]


def replicate_msg(
    simulation: MasterWorkerSimulation,
    factory: Callable[[SchedulingParams], Scheduler],
    runs: int,
    seed: int | None = None,
    processes: int | None = None,
) -> list[RunResult]:
    """Run ``runs`` independent replications with spawned seeds.

    Large replication counts fan out over the shared process pool of
    :mod:`repro.experiments.runner` in fixed-size blocks; because every
    replication carries its own spawned seed, results are bit-identical
    to the serial loop regardless of the worker count.  Small counts
    (< :data:`MSG_POOL_THRESHOLD`), single-worker configurations and
    unpicklable simulations/factories stay serial.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(seed).spawn(runs)
    if runs < MSG_POOL_THRESHOLD:
        return [simulation.run(factory, s) for s in seeds]
    # Imported lazily: the runner module imports this one at top level.
    from ..experiments.runner import BATCH_BLOCK_RUNS, _run_pooled, resolve_workers

    processes = resolve_workers(processes)
    if processes <= 1:
        return [simulation.run(factory, s) for s in seeds]
    blocks = [
        _MsgReplicationBlock(
            simulation=simulation,
            factory=factory,
            seeds=tuple(seeds[i:i + BATCH_BLOCK_RUNS]),
        )
        for i in range(0, runs, BATCH_BLOCK_RUNS)
    ]
    try:
        import pickle

        pickle.dumps(blocks[0])
    except Exception as exc:
        from ..backends.base import FallbackEvent
        from ..backends.registry import record_fallback

        record_fallback(FallbackEvent(
            task_key=(
                f"replicate_msg(n={simulation.params.n}, "
                f"p={simulation.params.p})"
            ),
            requested="process-pool",
            chosen="serial",
            reason=f"simulation/factory does not pickle: {exc!r}",
            category="pickle",
        ))
        return [simulation.run(factory, s) for s in seeds]
    if len(blocks) == 1:
        return blocks[0].execute()
    results = _run_pooled(blocks, processes)
    return [r for block in results for r in block]
