"""Compiled master-worker protocol: the MSG fast path.

:class:`MasterWorkerSimulation` drives the Figure 1 protocol through the
full DES stack — generator processes, mailboxes, send/receive effects,
and one RNG draw per chunk.  For the campaign configurations that
dominate the reproduction (non-adaptive techniques, no bandwidth
contention), every run of that protocol is determined by a handful of
scalars, so the whole simulation can be *flattened* into a single loop
over master scheduling operations:

1. the chunk-size sequence is precomputed once via
   :meth:`~repro.core.base.Scheduler.chunk_schedule`;
2. all chunk execution times are pre-sampled in one
   :meth:`~repro.workloads.distributions.Workload.chunk_times_batch`
   call, which consumes the RNG stream *identically* to the per-chunk
   draws of the event-driven path (chunks are drawn in assignment
   order in both);
3. the master's serialised request servicing is replayed directly: the
   master always serves pending work requests in global delivery order,
   so a small heap of at most ``p`` pending requests replaces the event
   heap, the mailboxes and the generator machinery.

The replay is **bit-identical** to the event-driven simulator — same
floating-point operations in the same order — for makespan, per-worker
compute times, chunk counts, wait times, master counters and the chunk
log; ``tests/test_fastpath_msg.py`` asserts this equality across all
closed-form techniques, overhead models and platform shapes.

Why the flattening is exact
---------------------------

The master is the only shared resource, and its sends are strictly
serialised (every transfer takes ``> 0`` seconds), so work receipts —
and therefore chunk-time draws — are strictly ordered in time in chunk
assignment order.  The master serves requests in mailbox-FIFO order,
which equals the global order of request *deliveries*; a delivery's
position is ``(arrival time, engine sequence number)``, and the engine
sequence number of a request-completion event is fixed by when the
request send was initiated: first by initiation time, then spawn-order
for initial requests (scheduled before the run starts), then finished-
chunk order for follow-up requests (execute completions are scheduled
at strictly increasing receipt times).  The pending-request heap keys on
exactly that tuple, so ties in arrival time break as the event heap
would break them.

Configurations the flattening cannot express fall back transparently to
the event-driven path: bandwidth contention (transfer times depend on
concurrent flows), adaptive or schedule-nondeterministic techniques
(chunk sizes depend on run-time feedback), and ``max_events`` budgets
(the fast path has no comparable event count).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.base import ChunkRecord, Scheduler
from ..core.params import SchedulingParams
from ..core.schedule import precompute_schedule, schedule_ineligibility
from ..metrics.wasted_time import OverheadModel
from ..obs.stats import RunStats
from ..results import ChunkExecution, RunResult
from ..workloads.generator import make_rng
from .masterworker import MasterWorkerSimulation


def fastpath_ineligibility(
    scheduler: Scheduler | type[Scheduler], config
) -> str | None:
    """Why ``(scheduler, config)`` cannot take the fast path (None = can).

    Config checks are local; the technique checks are the shared
    closed-form predicate (:func:`repro.core.schedule.
    schedule_ineligibility`) both fast paths use.  The returned string
    is a short human-readable reason, used by the fallback log hook and
    the docs' eligibility matrix.
    """
    if config.contention:
        return "contention: transfer times depend on concurrent flows"
    if config.max_events is not None:
        return "max_events budget: the fast path has no event counter"
    return schedule_ineligibility(scheduler)


class FastMasterWorkerSimulation(MasterWorkerSimulation):
    """Drop-in :class:`MasterWorkerSimulation` with a compiled fast path.

    :meth:`run` produces bit-identical :class:`RunResult` objects to the
    event-driven simulator whenever the configuration is eligible (see
    :func:`fastpath_ineligibility`); ineligible runs transparently fall
    back to the inherited event-driven protocol.  All constructor
    arguments, overhead models, heterogeneous platforms, custom message
    sizes and staggered start times behave exactly as in the parent.
    """

    #: set by every :meth:`run` call: True when the last run was flattened
    last_run_fast: bool = False

    def run(
        self,
        scheduler: Scheduler | Callable[[SchedulingParams], Scheduler],
        seed: int | np.random.SeedSequence | None = None,
    ) -> RunResult:
        if not isinstance(scheduler, Scheduler):
            scheduler = scheduler(self.params)
        if fastpath_ineligibility(scheduler, self.config) is not None:
            self.last_run_fast = False
            return super().run(scheduler, seed)
        schedule = precompute_schedule(scheduler)
        # Closed-form chunk_schedule leaves the instance untouched; mark
        # it consumed so reuse is rejected exactly as on the event path.
        scheduler.state.scheduled_chunks = schedule.num_chunks
        self.last_run_fast = True
        return self._fast_run(schedule, make_rng(seed))

    def run_many(
        self,
        factory: Callable[[SchedulingParams], Scheduler],
        seeds: Iterable[int | np.random.SeedSequence | None],
    ) -> list[RunResult]:
        """Independent replications sharing one schedule precomputation.

        Each seed produces exactly the result :meth:`run` would produce
        for it; eligible cells compute the chunk schedule once and replay
        it per seed, ineligible cells loop the event-driven simulator
        with a fresh scheduler per run.
        """
        seeds = list(seeds)
        probe = factory(self.params)
        if fastpath_ineligibility(probe, self.config) is not None:
            self.last_run_fast = False
            return [
                MasterWorkerSimulation.run(self, factory, seed)
                for seed in seeds
            ]
        schedule = precompute_schedule(probe)
        self.last_run_fast = True
        return [
            self._fast_run(schedule, make_rng(seed)) for seed in seeds
        ]

    # -- the compiled loop ------------------------------------------------
    def _fast_run(
        self, schedule, rng: np.random.Generator
    ) -> RunResult:
        t_wall = time.perf_counter()
        params, config = self.params, self.config
        p, h = params.p, params.h
        model = config.overhead_model
        serialized = model is OverheadModel.SERIALIZED_MASTER
        per_worker = model is OverheadModel.PER_WORKER

        label = schedule.label
        sizes, starts = schedule.sizes, schedule.starts
        num_chunks = schedule.num_chunks
        # One batched draw for every chunk, in assignment order — consumes
        # the RNG exactly as the event path's per-chunk draws do.
        if num_chunks:
            task_times = self.workload.chunk_times_batch(
                starts, sizes, 1, rng
            )[0].tolist()
        else:
            task_times = []

        platform = self.platform
        master = self.master_host.name
        worker_names = [host.name for host in self.worker_hosts]
        speeds = [host.speed for host in self.worker_hosts]
        d_req = [
            platform.transfer_time(name, master, config.request_size)
            for name in worker_names
        ]
        d_work = [
            platform.transfer_time(master, name, config.work_size)
            for name in worker_names
        ]
        d_fin = [
            platform.transfer_time(master, name, config.finalize_size)
            for name in worker_names
        ]

        # Pending work requests, keyed as the event heap would order their
        # deliveries: (arrival, initiation time, initiator tier, rank).
        # Tier 0 = the initial request of worker ``rank`` (scheduled at
        # spawn, before any run-time event); tier 1 = the follow-up
        # request after finishing chunk ``rank``.
        start_times = self.start_times
        pending = [
            (start_times[w] + d_req[w], start_times[w], 0, w, w)
            for w in range(p)
        ]
        heapq.heapify(pending)

        requests = [1] * p              # the initial request is in flight
        t_request = list(start_times)   # when each worker last requested
        wait_times = [0.0] * p
        compute_times = [0.0] * p
        task_time_acc = [0.0] * p
        chunk_counts = [0] * p
        # The event path logs chunks as their Execute effects *complete*;
        # completions at equal times fire in schedule (= assignment)
        # order, so a stable sort on end time reproduces the log exactly.
        log_entries: list[tuple[float, ChunkExecution]] | None = (
            [] if config.record_chunks else None
        )
        master_messages = 0
        master_busy_time = 0.0
        master_free = 0.0
        c = 0
        finalized = 0

        while finalized < p:
            arrival, _, _, _, w = heapq.heappop(pending)
            master_messages += 1
            t = master_free if master_free > arrival else arrival
            if serialized and h > 0 and c < num_chunks:
                after = t + h
                master_busy_time += after - t
                t = after
            if c < num_chunks:
                receipt = t + d_work[w]
                wait_times[w] += receipt - t_request[w]
                begin = receipt + h if (per_worker and h > 0) else receipt
                task_time = task_times[c]
                end = begin + task_time / speeds[w]
                elapsed = end - begin
                compute_times[w] += elapsed
                task_time_acc[w] += task_time
                chunk_counts[w] += 1
                if log_entries is not None:
                    record = ChunkRecord(
                        index=c, worker=w,
                        start=int(starts[c]), size=int(sizes[c]),
                    )
                    log_entries.append(
                        (end, ChunkExecution(record, begin, elapsed))
                    )
                requests[w] += 1
                t_request[w] = end
                heapq.heappush(pending, (end + d_req[w], end, 1, c, w))
                c += 1
                master_free = receipt
            else:
                done_at = t + d_fin[w]
                wait_times[w] += done_at - t_request[w]
                finalized += 1
                master_free = done_at

        return RunResult(
            technique=label,
            n=params.n,
            p=p,
            h=h,
            overhead_model=model,
            makespan=master_free,
            compute_times=compute_times,
            chunks_per_worker=chunk_counts,
            num_chunks=num_chunks,
            total_task_time=sum(task_time_acc),
            chunk_log=(
                [entry for _, entry in
                 sorted(log_entries, key=lambda item: item[0])]
                if log_entries is not None else []
            ),
            extras={
                "master_messages": master_messages,
                "master_busy_time": master_busy_time,
                "wait_times": wait_times,
                "total_requests": sum(requests),
            },
            # The flattened loop has no event heap: ``events`` counts
            # master receipts served, the structural analogue; the
            # pending-request heap is bounded by p, and the live set by
            # the master plus p workers.
            stats=RunStats(
                fast_path=True,
                events=master_messages,
                heap_peak=p,
                live_peak=p + 1,
                wall_time=time.perf_counter() - t_wall,
            ),
        )


def replicate_msg_fast(
    simulation: FastMasterWorkerSimulation,
    factory: Callable[[SchedulingParams], Scheduler],
    runs: int,
    seed: int | None = None,
) -> list[RunResult]:
    """Fast-path counterpart of :func:`repro.simgrid.replicate_msg`.

    Uses the same spawned-seed derivation, so for eligible configurations
    the results are bit-identical to ``replicate_msg`` on the event-driven
    simulator.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds: Sequence[np.random.SeedSequence] = (
        np.random.SeedSequence(seed).spawn(runs)
    )
    return simulation.run_many(factory, seeds)
