"""MSG-like messaging layer: mailboxes, send/receive effects, tasks.

The MSG interface of SimGrid revolves around *tasks* sent between
processes through named *mailboxes*.  This module provides the same
vocabulary on top of the DES kernel:

* :class:`Mailbox` — a named rendezvous point attached to a host (for
  routing).  Messages queue when no receiver waits; receivers queue when
  no message waits.
* :class:`Send` — blocking send: the sender resumes after the network
  transfer time of the message, at which point the message is delivered.
* :class:`Receive` — blocking receive on a mailbox.
* :class:`ComputeTask` — an amount of work in task-time seconds at unit
  speed; executing it on a host takes ``amount / host.speed``.

The paper's assumption that "the application data is replicated and no
data transfer is necessary" maps to small, constant control-message sizes
(:data:`REQUEST_SIZE` / :data:`WORK_MESSAGE_SIZE` / :data:`FINALIZE_SIZE`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from .engine import Effect, Engine, Process, SimulationError
from .platform import Host, Platform

#: bytes in a worker's work-request message
REQUEST_SIZE = 64.0
#: bytes in the master's chunk-assignment message (control only; the
#: application data is replicated, per Section II of the paper)
WORK_MESSAGE_SIZE = 64.0
#: bytes in the master's finalization message
FINALIZE_SIZE = 64.0


@dataclass(frozen=True, slots=True)
class Message:
    """An application message: payload plus simulated metadata."""

    payload: Any
    source: str          # sending host name
    size: float          # bytes
    sent_at: float       # simulated send start time
    delivered_at: float  # simulated delivery time


class Mailbox:
    """A named message queue attached to a host (for route lookup)."""

    __slots__ = ("name", "host", "_messages", "_waiting")

    def __init__(self, name: str, host: Host):
        self.name = name
        self.host = host
        self._messages: deque[Message] = deque()
        self._waiting: deque[Process] = deque()

    def deliver(self, message: Message) -> None:
        """Deposit a message; wake one waiting receiver if any.

        Rendezvous fast path: a delivery meeting a waiting receiver
        resumes the receiver *directly*, inside the current event, rather
        than scheduling a zero-delay wake-up through the heap.  The
        receiver immediately yields its next effect (which schedules
        normally), so the recursion is one level deep and the observable
        event order — everything happens at the same simulated time, in
        the same relative order — is unchanged.
        """
        if self._waiting:
            self._waiting.popleft().resume(message)
        else:
            self._messages.append(message)

    def try_take(self, process: Process) -> Message | None:
        """Take a queued message or register ``process`` as a waiter."""
        if self._messages:
            return self._messages.popleft()
        self._waiting.append(process)
        return None

    @property
    def pending_messages(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Mailbox {self.name} on {self.host.name}: "
            f"{len(self._messages)} msgs, {len(self._waiting)} waiters>"
        )


class Send(Effect):
    """Blocking send of ``payload`` from ``src_host`` to ``mailbox``.

    The transfer occupies the sender for the route's transfer time; the
    message is delivered to the mailbox when the transfer completes.
    """

    __slots__ = ("mailbox", "payload", "size", "src_host", "platform")

    def __init__(self, platform: Platform, src_host: Host, mailbox: Mailbox,
                 payload: Any, size: float = WORK_MESSAGE_SIZE):
        if size < 0:
            raise ValueError("message size must be >= 0")
        self.platform = platform
        self.src_host = src_host
        self.mailbox = mailbox
        self.payload = payload
        self.size = size

    def apply(self, engine: Engine, process: Process) -> None:
        duration = self.platform.transfer_time(
            self.src_host.name, self.mailbox.host.name, self.size
        )
        message = Message(
            payload=self.payload,
            source=self.src_host.name,
            size=self.size,
            sent_at=engine.now,
            delivered_at=engine.now + duration,
        )
        engine.schedule(duration, self._complete, process, message)

    def _complete(self, process: Process, message: Message) -> None:
        """Transfer done: deliver the message, then resume the sender."""
        self.mailbox.deliver(message)
        process.resume(None)


class Receive(Effect):
    """Blocking receive: resumes with the next :class:`Message`."""

    __slots__ = ("mailbox",)

    def __init__(self, mailbox: Mailbox):
        self.mailbox = mailbox

    def apply(self, engine: Engine, process: Process) -> None:
        message = self.mailbox.try_take(process)
        if message is not None:
            engine.schedule(0.0, process.resume, message)


@dataclass(frozen=True, slots=True)
class ComputeTask:
    """An amount of computation, in seconds at unit host speed."""

    name: str
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("compute amount must be >= 0")

    def duration_on(self, host: Host) -> float:
        return self.amount / host.speed


class Execute(Effect):
    """Execute a :class:`ComputeTask` on ``host`` (occupies the process)."""

    __slots__ = ("task", "host")

    def __init__(self, task: ComputeTask, host: Host):
        self.task = task
        self.host = host

    def apply(self, engine: Engine, process: Process) -> None:
        engine.schedule(self.task.duration_on(self.host), process.resume, None)


def require_alive(process: Process) -> None:
    """Guard helper for library internals."""
    if not process.alive:
        raise SimulationError(f"process {process.name!r} is dead")
