"""The SimAS online scheduling advisor service (``repro-dls serve``).

POST a workload/platform/scenario description and get back a ranking of
every registered DLS technique by simulated makespan — the online
technique-selection loop the paper's portability findings call for.
See :mod:`repro.serve.advisor` for the ranking engine and
:mod:`repro.serve.http` for the stdlib HTTP front-end.
"""

from .advisor import (
    AdviseRequest,
    AdviseResponse,
    AdviseValidationError,
    Advisor,
    RankedTechnique,
    SweepBatcher,
)
from .http import AdvisorHTTPServer, make_server, serve_forever_in_thread

__all__ = [
    "AdviseRequest",
    "AdviseResponse",
    "AdviseValidationError",
    "Advisor",
    "AdvisorHTTPServer",
    "RankedTechnique",
    "SweepBatcher",
    "make_server",
    "serve_forever_in_thread",
]
