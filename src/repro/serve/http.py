"""HTTP front-end for the advisor: stdlib-only, thread-per-request.

``ThreadingHTTPServer`` keeps the dependency budget at zero while still
letting concurrent queries overlap — which is exactly what the
:class:`~repro.serve.advisor.SweepBatcher` exploits: handler threads
that arrive together are simulated together in one pooled dispatch.

Routes
------
``POST /advise``
    Body: JSON query (see :meth:`AdviseRequest.from_json`).  Returns
    the technique ranking; 400 with a structured body on a malformed
    query.
``GET /metrics``
    Prometheus exposition of the server's metrics registry.
``GET /healthz``
    Liveness: ``{"status": "ok"}``.
``GET /techniques``, ``GET /scenarios``
    What the server will accept — registered technique names and
    scenario presets.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.registry import technique_names
from ..obs import metrics as obs_metrics
from .advisor import AdviseValidationError, Advisor

__all__ = ["AdvisorHTTPServer", "make_server"]

#: refuse request bodies beyond this many bytes (a query is tiny)
MAX_BODY_BYTES = 1 << 20


class AdvisorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`Advisor`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], advisor: Advisor):
        super().__init__(address, _Handler)
        self.advisor = advisor


class _Handler(BaseHTTPRequestHandler):
    server: AdvisorHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        # Access logging is the journal's job (one `advise` record per
        # query); stderr chatter from the stdlib default is just noise.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _count_error(self, kind: str) -> None:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                f"serve_errors_{kind}_total",
                f"advisor requests rejected ({kind})",
            ).incr(1)

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            registry = obs_metrics.active_registry()
            text = registry.render_prometheus() if registry else ""
            self._send_text(
                200, text, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/techniques":
            self._send_json(200, {"techniques": technique_names()})
        elif path == "/scenarios":
            from ..scenarios import PRESETS

            self._send_json(200, {"scenarios": sorted(PRESETS)})
        else:
            self._count_error("not_found")
            self._send_json(
                404,
                {
                    "error": "not_found",
                    "message": f"no such route {path!r}; try POST /advise, "
                    "GET /metrics, /healthz, /techniques, /scenarios",
                },
            )

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        path = self.path.split("?", 1)[0]
        if path != "/advise":
            self._count_error("not_found")
            self._send_json(
                404,
                {
                    "error": "not_found",
                    "message": f"no such route {path!r}; POST /advise",
                },
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._count_error("validation")
            self._send_json(
                400,
                {
                    "error": "validation",
                    "field": "",
                    "message": "request body must carry a Content-Length "
                    f"of at most {MAX_BODY_BYTES} bytes",
                },
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw or b"null")
        except json.JSONDecodeError as exc:
            self._count_error("validation")
            self._send_json(
                400,
                {
                    "error": "validation",
                    "field": "",
                    "message": f"request body is not valid JSON: {exc}",
                },
            )
            return
        advisor = self.server.advisor
        try:
            request = advisor.parse(payload)
        except AdviseValidationError as exc:
            self._count_error("validation")
            self._send_json(400, exc.to_json())
            return
        try:
            response = advisor.advise(request)
        except Exception as exc:  # simulation failure -> structured 500
            self._count_error("internal")
            self._send_json(
                500,
                {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        self._send_json(200, response.to_json())


def make_server(
    host: str, port: int, advisor: Advisor
) -> AdvisorHTTPServer:
    """Bind an :class:`AdvisorHTTPServer` (port 0 picks a free port)."""
    return AdvisorHTTPServer((host, port), advisor)


def serve_forever_in_thread(
    server: AdvisorHTTPServer,
) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests and embedding)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return thread
