"""The SimAS online scheduling advisor (request model + ranking core).

The paper's headline claim — DLS technique choice is workload- and
system-dependent — is only actionable if something *selects* the
technique online.  The SimAS approach (arXiv:1912.02050) does exactly
that: simulate every candidate technique under the observed system
state and pick the winner.  This module is that selection loop built on
the repository's existing layers:

* a query is a workload/platform/scenario description, validated into
  an :class:`AdviseRequest`;
* every candidate technique becomes one :class:`~repro.experiments.
  runner.RunTask` replication sweep, executed through
  :func:`~repro.experiments.runner.run_replicated_batch` — capability
  dispatch via :func:`repro.backends.resolve_backend` (fallback events
  are part of the answer), pooled :class:`~repro.backends.
  ReplicationBlock` execution, and the PR-6 result cache absorbing
  repeat queries;
* the ranking reports each technique's makespan mean with a 95% CI
  (:func:`repro.metrics.summary.summarize`), the backend that actually
  ran, and every degradation recorded while resolving.

Passing a scenario name re-ranks the candidates *under perturbation* —
the SiL re-selection use case (arXiv:1807.03577): the same cell can
prefer a different technique once the machine degrades, and the advisor
shows exactly that.

Concurrent queries are grouped by a leader/follower batcher
(:class:`SweepBatcher`): the first thread to reach the simulation stage
drains every queued query and dispatches the union of their cache
misses as *one* pooled fan-out, amortising pool dispatch across
requests (identical concurrent sweeps are simulated once).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..backends import (
    BackendResolutionError,
    SimulationBackend,
    backend_names,
    peek_fallback_events,
    resolve_backend,
)
from ..cache import active_cache
from ..core.params import SchedulingParams
from ..core.registry import technique_names
from ..experiments.runner import RunTask, run_replicated_batch
from ..metrics.summary import summarize
from ..obs import metrics as obs_metrics
from ..obs.journal import active_journal
from ..workloads import (
    ConstantWorkload,
    ExponentialWorkload,
    GammaWorkload,
    UniformWorkload,
)

if TYPE_CHECKING:
    from ..results import RunResult
    from ..scenarios import Scenario

__all__ = [
    "AdviseRequest",
    "AdviseResponse",
    "AdviseValidationError",
    "Advisor",
    "RankedTechnique",
    "SweepBatcher",
    "workload_from_spec",
]

#: replications per candidate technique when the query does not say
DEFAULT_RUNS = 5
#: backend candidate sweeps request when the query does not say
DEFAULT_SIMULATOR = "direct-batch"
#: hard per-query replication ceiling — the advisor is a service, and a
#: single query must not be able to occupy the box for minutes
MAX_RUNS = 1024

#: workload distributions a query may name (mirrors the CLI ``--dist``)
WORKLOAD_DISTS = ("constant", "exponential", "uniform", "gamma")


class AdviseValidationError(ValueError):
    """A query that cannot be served, with a machine-readable shape.

    ``field`` names the offending request key; ``message`` mirrors the
    CLI error style (it names the unknown value and lists what *is*
    registered), so a 4xx body is as actionable as a CLI stderr line.
    """

    def __init__(self, field: str, message: str):
        super().__init__(message)
        self.field = field
        self.message = message

    def to_json(self) -> dict:
        return {
            "error": "validation",
            "field": self.field,
            "message": self.message,
        }


def workload_from_spec(dist: str, mean: float):
    """The workload a (dist, mean) pair describes (CLI semantics)."""
    factories = {
        "constant": lambda: ConstantWorkload(mean),
        "exponential": lambda: ExponentialWorkload(mean),
        "uniform": lambda: UniformWorkload(0.0, 2 * mean),
        "gamma": lambda: GammaWorkload(2.0, mean / 2.0),
    }
    return factories[dist]()


def _require_int(payload: dict, key: str, *, minimum: int,
                 maximum: int | None = None,
                 default: int | None = None) -> int:
    value = payload.get(key, default)
    if value is None:
        raise AdviseValidationError(key, f"{key!r} is required")
    if isinstance(value, bool) or not isinstance(value, int):
        raise AdviseValidationError(
            key, f"{key!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise AdviseValidationError(
            key, f"{key!r} must be >= {minimum}, got {value}"
        )
    if maximum is not None and value > maximum:
        raise AdviseValidationError(
            key, f"{key!r} must be <= {maximum}, got {value}"
        )
    return value


def _optional_float(payload: dict, key: str, default: float,
                    *, minimum: float | None = None,
                    positive: bool = False) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AdviseValidationError(
            key, f"{key!r} must be a number, got {value!r}"
        )
    value = float(value)
    if positive and value <= 0:
        raise AdviseValidationError(
            key, f"{key!r} must be > 0, got {value}"
        )
    if minimum is not None and value < minimum:
        raise AdviseValidationError(
            key, f"{key!r} must be >= {minimum}, got {value}"
        )
    return value


#: request keys :meth:`AdviseRequest.from_json` understands
_KNOWN_KEYS = frozenset({
    "n", "p", "h", "dist", "mean", "runs", "seed", "simulator",
    "scenario", "techniques", "top", "platform",
})


@dataclass(frozen=True)
class AdviseRequest:
    """One validated advisor query.

    Built from a JSON payload by :meth:`from_json`, which raises
    :class:`AdviseValidationError` (the HTTP layer's structured 4xx) on
    anything malformed — unknown technique/scenario/backend names are
    rejected with the registered alternatives listed, mirroring the CLI.
    """

    params: SchedulingParams
    dist: str
    mean: float
    runs: int
    seed: int
    simulator: str
    scenario: "Scenario | None" = None
    techniques: tuple[str, ...] = ()
    top: int | None = None
    platform_spec: tuple[tuple[str, float], ...] | None = None

    @classmethod
    def from_json(
        cls,
        payload: object,
        *,
        default_runs: int = DEFAULT_RUNS,
        default_simulator: str = DEFAULT_SIMULATOR,
    ) -> "AdviseRequest":
        if not isinstance(payload, dict):
            raise AdviseValidationError(
                "", "the request body must be a JSON object"
            )
        unknown = sorted(set(payload) - _KNOWN_KEYS)
        if unknown:
            raise AdviseValidationError(
                unknown[0],
                f"unknown request key(s) {', '.join(map(repr, unknown))}; "
                f"understood: {', '.join(sorted(_KNOWN_KEYS))}",
            )
        n = _require_int(payload, "n", minimum=1)
        p = _require_int(payload, "p", minimum=1)
        h = _optional_float(payload, "h", 0.0, minimum=0.0)
        mean = _optional_float(payload, "mean", 1.0, positive=True)
        dist = payload.get("dist", "exponential")
        if dist not in WORKLOAD_DISTS:
            raise AdviseValidationError(
                "dist",
                f"unknown workload distribution {dist!r}; choose one of "
                f"{', '.join(WORKLOAD_DISTS)}",
            )
        runs = _require_int(
            payload, "runs", minimum=1, maximum=MAX_RUNS,
            default=default_runs,
        )
        seed = _require_int(payload, "seed", minimum=0, default=0)
        simulator = payload.get("simulator", default_simulator)
        if not isinstance(simulator, str) or (
            simulator.lower() not in backend_names()
        ):
            raise AdviseValidationError(
                "simulator",
                f"unknown simulation backend {simulator!r}; registered: "
                f"{', '.join(backend_names())}",
            )
        scenario = cls._scenario_from(payload.get("scenario"))
        techniques = cls._techniques_from(payload.get("techniques"))
        top = payload.get("top")
        if top is not None:
            top = _require_int(payload, "top", minimum=1)
        platform_spec = cls._platform_from(payload.get("platform"))
        params = SchedulingParams(
            n=n, p=p, h=h, mu=mean, sigma=mean,
        )
        return cls(
            params=params, dist=dist, mean=mean, runs=runs, seed=seed,
            simulator=simulator.lower(), scenario=scenario,
            techniques=techniques, top=top, platform_spec=platform_spec,
        )

    @staticmethod
    def _scenario_from(value: object) -> "Scenario | None":
        if value is None:
            return None
        from ..scenarios import PRESETS

        # Only registered preset *names* are accepted over the wire —
        # never file paths (the CLI's file form would let a remote
        # client probe the server's filesystem).
        if not isinstance(value, str) or value not in PRESETS:
            raise AdviseValidationError(
                "scenario",
                f"unknown scenario preset {value!r}; registered presets: "
                f"{', '.join(PRESETS)}",
            )
        return PRESETS[value]

    @staticmethod
    def _techniques_from(value: object) -> tuple[str, ...]:
        registered = technique_names()
        if value is None:
            return tuple(registered)
        if not isinstance(value, (list, tuple)) or not value:
            raise AdviseValidationError(
                "techniques",
                "'techniques' must be a non-empty list of technique names",
            )
        out = []
        for name in value:
            key = name.lower() if isinstance(name, str) else name
            if key not in registered:
                raise AdviseValidationError(
                    "techniques",
                    f"unknown technique {name!r}; registered: "
                    f"{', '.join(registered)}",
                )
            out.append(key)
        return tuple(dict.fromkeys(out))  # dedupe, keep order

    @staticmethod
    def _platform_from(
        value: object,
    ) -> tuple[tuple[str, float], ...] | None:
        if value is None:
            return None
        if not isinstance(value, dict):
            raise AdviseValidationError(
                "platform",
                "'platform' must be an object like "
                '{"worker_speed": 2.0, "latency": 5e-05, '
                '"bandwidth": 1.25e8}',
            )
        allowed = ("worker_speed", "master_speed", "bandwidth", "latency")
        spec = []
        for key, raw in sorted(value.items()):
            if key not in allowed:
                raise AdviseValidationError(
                    "platform",
                    f"unknown platform key {key!r}; understood: "
                    f"{', '.join(allowed)}",
                )
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise AdviseValidationError(
                    "platform",
                    f"platform {key!r} must be a number, got {raw!r}",
                )
            if raw <= 0:
                raise AdviseValidationError(
                    "platform", f"platform {key!r} must be > 0, got {raw}"
                )
            spec.append((key, float(raw)))
        return tuple(spec)

    # -- task construction -------------------------------------------------
    def workload(self):
        return workload_from_spec(self.dist, self.mean)

    def platform(self):
        """The star platform the spec describes (None without one)."""
        if self.platform_spec is None:
            return None
        from ..simgrid.platform import star_platform

        return star_platform(workers=self.params.p,
                             **dict(self.platform_spec))

    def tasks(self) -> list[RunTask]:
        """One candidate :class:`RunTask` per requested technique."""
        workload = self.workload()
        platform = self.platform()
        return [
            RunTask(
                technique=technique,
                params=self.params,
                workload=workload,
                simulator=self.simulator,
                platform=platform,
                scenario=self.scenario,
            )
            for technique in self.techniques
        ]

    def describe(self) -> dict:
        """The query's identity block (journal records, responses)."""
        return {
            "n": self.params.n,
            "p": self.params.p,
            "h": self.params.h,
            "dist": self.dist,
            "mean": self.mean,
            "runs": self.runs,
            "seed": self.seed,
            "simulator": self.simulator,
            "scenario": self.scenario.name if self.scenario else None,
        }


@dataclass(frozen=True)
class RankedTechnique:
    """One technique's simulated outcome on the queried cell."""

    rank: int
    technique: str
    makespan_mean: float
    makespan_ci: tuple[float, float]
    makespan_std: float
    speedup_mean: float
    backend: str
    runs: int

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "technique": self.technique,
            "makespan_mean": self.makespan_mean,
            "makespan_ci": list(self.makespan_ci),
            "makespan_std": self.makespan_std,
            "speedup_mean": self.speedup_mean,
            "backend": self.backend,
            "runs": self.runs,
        }


@dataclass
class AdviseResponse:
    """One advisor answer: the ranking plus its provenance."""

    request: AdviseRequest
    ranking: list[RankedTechnique]
    fallbacks: list[dict]
    cache_hits: int
    cache_misses: int
    elapsed_s: float

    @property
    def best(self) -> str:
        return self.ranking[0].technique

    def to_json(self) -> dict:
        ranking = self.ranking
        if self.request.top is not None:
            ranking = ranking[: self.request.top]
        return {
            "best": self.best,
            "ranking": [row.to_json() for row in ranking],
            "techniques_ranked": len(self.ranking),
            "fallbacks": self.fallbacks,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "elapsed_ms": round(self.elapsed_s * 1000.0, 3),
            **self.request.describe(),
        }


@dataclass
class _PendingBatch:
    """One thread's sweeps awaiting the next batched dispatch."""

    sweeps: list[tuple[RunTask, int, int | None]]
    done: threading.Event = field(default_factory=threading.Event)
    results: list[list["RunResult"]] | None = None
    error: BaseException | None = None


class SweepBatcher:
    """Leader/follower batching of sweep execution across threads.

    Every thread enqueues its sweeps; the first thread to arrive while
    no dispatch is running becomes the *leader* and repeatedly drains
    the queue — including submissions that arrive while a dispatch is
    in flight — executing each drained batch as one
    :func:`run_replicated_batch` call over the shared process pool.
    Identical sweeps submitted by concurrent queries are executed once
    and fanned back to every submitter.

    This is the serve path's answer to "N concurrent advisor queries
    must share one pool": only one thread at a time talks to the pool,
    and it does so on behalf of everyone waiting.
    """

    def __init__(self, processes: int | None = None):
        self.processes = processes
        self._lock = threading.Lock()
        self._pending: list[_PendingBatch] = []
        self._dispatching = False

    def execute(
        self, sweeps: Sequence[tuple[RunTask, int, int | None]]
    ) -> list[list["RunResult"]]:
        pending = _PendingBatch(list(sweeps))
        with self._lock:
            self._pending.append(pending)
            leader = not self._dispatching
            if leader:
                self._dispatching = True
        if leader:
            while True:
                with self._lock:
                    batch = self._pending
                    self._pending = []
                    if not batch:
                        self._dispatching = False
                        break
                self._dispatch(batch)
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None
        return pending.results

    def _dispatch(self, batch: list[_PendingBatch]) -> None:
        # Deduplicate identical sweeps across the batch: concurrent
        # queries for the same cell simulate it once.  RunTask is a
        # frozen dataclass, so equality is structural.
        unique: list[tuple[RunTask, int, int | None]] = []
        slots: list[list[int]] = []  # per pending: unique-index per sweep
        for pending in batch:
            indices = []
            for sweep in pending.sweeps:
                try:
                    indices.append(unique.index(sweep))
                except ValueError:
                    unique.append(sweep)
                    indices.append(len(unique) - 1)
            slots.append(indices)
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.histogram(
                "serve_sweeps_per_dispatch",
                "unique sweeps per batched pool dispatch",
            ).observe(len(unique))
            if len(batch) > 1:
                registry.counter(
                    "serve_batched_requests_total",
                    "advisor queries that shared a pooled dispatch",
                ).incr(len(batch))
        try:
            results = run_replicated_batch(
                unique, processes=self.processes, label="advise"
            )
        except BaseException as exc:
            for pending in batch:
                pending.error = exc
                pending.done.set()
            return
        for pending, indices in zip(batch, slots):
            pending.results = [results[i] for i in indices]
            pending.done.set()


class Advisor:
    """The ranking engine behind ``repro-dls serve``.

    Thread-safe: HTTP handler threads call :meth:`advise` concurrently
    and the embedded :class:`SweepBatcher` funnels all simulation into
    single batched dispatches over the one shared process pool.
    """

    def __init__(
        self,
        processes: int | None = None,
        default_runs: int = DEFAULT_RUNS,
        default_simulator: str = DEFAULT_SIMULATOR,
    ):
        self.default_runs = default_runs
        self.default_simulator = default_simulator
        self._batcher = SweepBatcher(processes=processes)
        self._journal_lock = threading.Lock()

    def parse(self, payload: object) -> AdviseRequest:
        request = AdviseRequest.from_json(
            payload,
            default_runs=self.default_runs,
            default_simulator=self.default_simulator,
        )
        # Fail fast — and with a 4xx, not a 500 — when no backend in
        # the fallback chain can serve the described system at all
        # (e.g. a platform description on the direct family).
        try:
            for task in request.tasks():
                resolve_backend(task)
        except BackendResolutionError as exc:
            raise AdviseValidationError("simulator", str(exc)) from None
        return request

    def advise(self, request: AdviseRequest) -> AdviseResponse:
        t0 = time.perf_counter()
        cache = active_cache()
        hits_before = cache.stats.hits if cache is not None else 0
        misses_before = cache.stats.misses if cache is not None else 0
        tasks = request.tasks()
        sweeps = [(task, request.runs, request.seed) for task in tasks]
        groups = self._batcher.execute(sweeps)
        ranking = self._rank(tasks, groups, request.runs)
        task_keys = {SimulationBackend.task_key(task) for task in tasks}
        fallbacks = [
            event.to_json()
            for event in peek_fallback_events()
            if event.task_key in task_keys
        ]
        elapsed = time.perf_counter() - t0
        cache_hits = (cache.stats.hits - hits_before) if cache else 0
        cache_misses = (
            (cache.stats.misses - misses_before) if cache else 0
        )
        response = AdviseResponse(
            request=request,
            ranking=ranking,
            fallbacks=fallbacks,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            elapsed_s=elapsed,
        )
        self._observe(response)
        return response

    @staticmethod
    def _rank(
        tasks: Sequence[RunTask],
        groups: Sequence[Sequence["RunResult"]],
        runs: int,
    ) -> list[RankedTechnique]:
        rows = []
        for task, results in zip(tasks, groups):
            makespans = summarize([r.makespan for r in results])
            speedups = summarize([r.speedup for r in results])
            backend = next(
                (r.stats.backend for r in results if r.stats is not None),
                task.simulator,
            )
            rows.append((task.technique, makespans, speedups, backend))
        rows.sort(key=lambda row: (row[1].mean, row[0]))
        return [
            RankedTechnique(
                rank=i,
                technique=technique,
                makespan_mean=makespans.mean,
                makespan_ci=makespans.confidence_interval(),
                makespan_std=makespans.std,
                speedup_mean=speedups.mean,
                backend=backend,
                runs=runs,
            )
            for i, (technique, makespans, speedups, backend) in enumerate(
                rows, start=1
            )
        ]

    def _observe(self, response: AdviseResponse) -> None:
        """One journal ``advise`` record + serve metrics per query."""
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                "serve_requests_total", "advisor queries answered"
            ).incr(1)
            registry.histogram(
                "serve_request_seconds", "advisor query latency"
            ).observe(response.elapsed_s)
            cache = active_cache()
            if cache is not None and cache.stats.lookups:
                registry.gauge(
                    "serve_cache_hit_rate",
                    "lifetime result-cache hit rate of this server",
                ).set(cache.stats.hit_rate)
        journal = active_journal()
        if journal is not None:
            record = {
                "kind": "advise",
                "best": response.best,
                "techniques": len(response.ranking),
                "fallbacks": len(response.fallbacks),
                "cache_hits": response.cache_hits,
                "cache_misses": response.cache_misses,
                "elapsed_s": round(response.elapsed_s, 6),
                **response.request.describe(),
            }
            with self._journal_lock:
                journal.write(record)
