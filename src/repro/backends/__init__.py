"""Unified simulation-backend registry with capability-driven dispatch.

The four execution substrates (``msg``, ``msg-fast``, ``direct``,
``direct-batch``) register themselves as :class:`SimulationBackend`
objects declaring their capabilities; :func:`resolve_backend` picks the
backend that will actually execute a task, degrading explicitly along
declared fallback chains and recording every degradation as a
:class:`FallbackEvent` (drained by campaign reports — see
:func:`drain_fallback_events`).  Adding a backend is a registration
(:func:`register_backend`), not a runner rewrite.
"""

from .base import (
    BATCH_BLOCK_RUNS,
    CAPABILITY_DESCRIPTIONS,
    BackendCapabilities,
    BackendResolutionError,
    FallbackEvent,
    ReplicationBlock,
    SimulationBackend,
    capability_names,
)
from .registry import (
    backend_names,
    capability_matrix,
    capability_matrix_markdown,
    drain_fallback_events,
    get_backend,
    iter_backends,
    peek_fallback_events,
    record_fallback,
    register_backend,
    resolve_backend,
)

__all__ = [
    "BATCH_BLOCK_RUNS",
    "CAPABILITY_DESCRIPTIONS",
    "BackendCapabilities",
    "BackendResolutionError",
    "FallbackEvent",
    "ReplicationBlock",
    "SimulationBackend",
    "backend_names",
    "capability_matrix",
    "capability_matrix_markdown",
    "capability_names",
    "drain_fallback_events",
    "get_backend",
    "iter_backends",
    "peek_fallback_events",
    "record_fallback",
    "register_backend",
    "resolve_backend",
]
