"""Backend protocol: capabilities, fallback events, replication blocks.

A *backend* is one execution substrate for a :class:`~repro.experiments.
runner.RunTask` — the event-driven MSG stack, its compiled fast path, the
direct Hagerup-style simulator, or the vectorized batch kernel.  Each
backend declares what it can simulate as a :class:`BackendCapabilities`
record; dispatch (``repro.backends.registry.resolve_backend``) checks a
task's requirements against those capabilities and walks the backend's
declared :attr:`~SimulationBackend.fallback` chain when they are not
met, emitting a :class:`FallbackEvent` for every degradation instead of
falling back silently inside a simulator module.

Adding a new backend is a registration, not a runner rewrite::

    from repro.backends import SimulationBackend, register_backend

    @register_backend
    class PerturbedBackend(SimulationBackend):
        name = "perturbed"
        description = "SimAS-style perturbation-aware simulator"
        capabilities = BackendCapabilities(...)
        fallback = "msg"

        def run(self, task, seed):
            ...
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # avoid a runtime cycle: the runner imports this package
    from ..experiments.runner import RunTask
    from ..results import RunResult

#: replications per pooled replication block.  Fixed (instead of derived
#: from the worker count) so campaign results are deterministic in
#: (task, runs, campaign_seed) regardless of how many processes execute.
BATCH_BLOCK_RUNS = 64


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can simulate, one flag per scenario dimension.

    The flags double as the rows of the documentation's capability
    matrix (:func:`repro.backends.registry.capability_matrix`), so every
    field needs a short human-readable description in
    :data:`CAPABILITY_DESCRIPTIONS`.
    """

    #: techniques whose chunk sizes depend on measured execution times
    #: (AWF family, AF, BOLD)
    adaptive_techniques: bool = False
    #: techniques whose chunk sequence depends on which worker requests
    #: (WF, PLS, RND) — anything without a precomputable schedule
    nondeterministic_schedules: bool = False
    #: max-min-fair bandwidth sharing among concurrent transfers
    contention: bool = False
    #: platform-aware network modelling (latencies, heterogeneous hosts)
    platforms: bool = False
    #: per-worker relative speeds passed directly (without a platform)
    per_worker_speeds: bool = False
    #: per-worker staggered start times
    staggered_starts: bool = False
    #: ``max_events`` simulation budgets
    max_events: bool = False
    #: block-level replication execution (one schedule precomputation
    #: amortised over a whole block of replications)
    pooled_blocks: bool = False
    #: per-chunk execution logs (``RunResult.chunk_log``) on request
    #: (``RunTask.collect_chunk_log``)
    chunk_log: bool = False
    #: scenario speed-fluctuation models (waves, step slowdowns, load
    #: noise — ``RunTask.scenario`` with fluctuation components)
    fluctuation_scenarios: bool = False
    #: scenario fail-stop fault injection with work loss
    #: (``RunTask.scenario`` with a failstop component)
    fault_scenarios: bool = False


#: capability field -> short description for generated documentation
CAPABILITY_DESCRIPTIONS: dict[str, str] = {
    "adaptive_techniques": "adaptive techniques (AWF*, AF, BOLD)",
    "nondeterministic_schedules": "worker-dependent schedules (WF, PLS, RND)",
    "contention": "bandwidth contention (flow network)",
    "platforms": "platform-aware network modelling",
    "per_worker_speeds": "direct per-worker speeds",
    "staggered_starts": "staggered start times",
    "max_events": "max_events budgets",
    "pooled_blocks": "pooled replication blocks",
    "chunk_log": "per-chunk execution logs (collect_chunk_log)",
    "fluctuation_scenarios": "scenario speed fluctuations (wave/step/noise)",
    "fault_scenarios": "scenario fail-stop faults (work loss)",
}


def capability_names() -> list[str]:
    """The capability flags in declaration order."""
    return [f.name for f in fields(BackendCapabilities)]


@dataclass(frozen=True)
class FallbackEvent:
    """One recorded degradation: requested backend -> chosen.

    Recorded by ``resolve_backend`` whenever a requested backend cannot
    serve a task and dispatch moves to its declared fallback; surfaced
    in campaign reports (``repro-dls run fig5 ...`` prints them) instead
    of the degradation happening silently.

    ``category`` separates the degradation kinds in reports
    (``repro-dls stats``): ``"capability"`` for capability-checked
    dispatch hops, anything else (e.g. ``"pickle"``, ``"runtime"``) for
    degradations recorded outside the capability walk.
    """

    task_key: str
    requested: str
    chosen: str
    reason: str
    category: str = "capability"

    def describe(self) -> str:
        return (
            f"{self.requested} -> {self.chosen} for {self.task_key}: "
            f"{self.reason}"
        )

    def to_json(self) -> dict:
        return {
            "task": self.task_key,
            "requested": self.requested,
            "chosen": self.chosen,
            "reason": self.reason,
            "category": self.category,
        }


class BackendResolutionError(ValueError):
    """No backend in the fallback chain can serve the task."""


@dataclass(frozen=True)
class ReplicationBlock:
    """A picklable block of replications of one cell, run by one backend.

    Blocks distribute over the process pool like individual ``RunTask``
    objects, but each block amortises the chunk-schedule precomputation
    (and, for the batch kernel, samples its chunk times in bulk).  Two
    seeding styles exist, mirroring the two pooled-block backends:

    * ``seed_entropies`` — one entropy tuple per replication, derived
      exactly as ``expand_replications`` derives them (MSG fast path);
      the block partitioning cannot affect results.
    * ``seed_entropy`` — one entropy tuple for the whole block, whose
      RNG stream the batch kernel consumes in bulk (direct-batch).
    """

    backend: str
    task: "RunTask"
    runs: int
    seed_entropy: tuple[int, ...] | None = None
    seed_entropies: tuple[tuple[int, ...], ...] | None = None

    def execute(self) -> list["RunResult"]:
        from .registry import get_backend

        return get_backend(self.backend).run_block(self)


class SimulationBackend(ABC):
    """One execution substrate for :class:`RunTask` objects.

    Subclasses declare their identity and capabilities as class
    attributes and implement :meth:`run`; backends supporting pooled
    block execution additionally implement :meth:`replication_blocks`
    and :meth:`run_block`.
    """

    #: registry name; the value of ``RunTask.simulator`` / CLI ``--simulator``
    name: ClassVar[str] = ""
    #: one-line description for ``repro-dls backends`` and the docs
    description: ClassVar[str] = ""
    #: what this backend can simulate
    capabilities: ClassVar[BackendCapabilities] = BackendCapabilities()
    #: registry name of the backend dispatch degrades to when this one
    #: cannot serve a task (None = resolution fails instead)
    fallback: ClassVar[str | None] = None
    #: namespace used for derived seed entropy.  Backends that are
    #: bit-identical to another backend share its namespace so un-seeded
    #: tasks derive the same seeds on both (e.g. msg-fast uses "msg").
    entropy_namespace: ClassVar[str] = ""
    #: version of this backend's *results*.  Folded into result-cache
    #: keys (``repro.cache``) through the entropy-namespace backend:
    #: bump it when an intentional simulator change alters simulated
    #: observables, so every cached result it produced misses cleanly.
    result_version: ClassVar[int] = 1

    def result_version_for(self, task: "RunTask") -> int:
        """The result version that keys ``task``'s cache entries.

        Defaults to the class-wide :attr:`result_version`.  Backends
        whose simulator changes alter only *some* tasks' observables
        override this per task, so bit-identical coverage expansion
        (e.g. a new kernel serving old tasks with the exact same
        results) does not poison unaffected cache keys.
        """
        return self.result_version

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name and not cls.entropy_namespace:
            cls.entropy_namespace = cls.name

    # -- capability checking ---------------------------------------------
    def unsupported_reason(self, task: "RunTask") -> str | None:
        """Why this backend cannot serve ``task`` (None = it can).

        The generic check compares the task's requirements against
        :attr:`capabilities`; backends with additional constraints
        extend it.  The returned string feeds :class:`FallbackEvent`
        reasons and the documentation's fallback semantics.
        """
        from ..core.registry import get_technique
        from ..core.schedule import schedule_ineligibility

        caps = self.capabilities
        cls = get_technique(task.technique)
        schedule_reason = schedule_ineligibility(cls)
        if schedule_reason is not None:
            if cls.adaptive and not caps.adaptive_techniques:
                return schedule_reason
            if not cls.deterministic_schedule and (
                not caps.nondeterministic_schedules
            ):
                return schedule_reason
        if task.platform is not None and not caps.platforms:
            return (
                "platform-aware network modelling is not supported by "
                f"the {self.name!r} backend"
            )
        if task.speeds is not None and not caps.per_worker_speeds:
            return (
                f"the {self.name!r} backend takes no per-worker speeds "
                "(model them as host speeds on a platform)"
            )
        if task.start_times is not None and not caps.staggered_starts:
            return (
                "staggered start times are not supported by the "
                f"{self.name!r} backend"
            )
        if task.collect_chunk_log and not caps.chunk_log:
            return (
                "per-chunk execution logs are not recorded by the "
                f"{self.name!r} backend"
            )
        if task.scenario is not None:
            if task.scenario.has_faults and not caps.fault_scenarios:
                return (
                    f"scenario {task.scenario.name!r} injects fail-stop "
                    f"faults, which the {self.name!r} backend cannot "
                    "simulate"
                )
            if task.scenario.has_fluctuations and (
                not caps.fluctuation_scenarios
            ):
                return (
                    f"scenario {task.scenario.name!r} perturbs PE speeds, "
                    f"which the {self.name!r} backend cannot simulate"
                )
        return None

    @staticmethod
    def task_key(task: "RunTask") -> str:
        """A compact human-readable cell identifier for fallback events."""
        return (
            f"{task.technique}(n={task.params.n}, p={task.params.p})"
        )

    def stamp_stats(self, result: "RunResult") -> "RunResult":
        """Record this backend as the producer on the result's stats.

        The simulators fill the kernel-level fields of
        :class:`~repro.obs.stats.RunStats` but do not know which
        registry entry drove them; the backend adds its name here —
        after any capability fallback, so the stamp names the substrate
        that actually ran.  A minimal stats block is created when the
        simulator attached none.
        """
        from ..obs.stats import RunStats

        if result.stats is None:
            result.stats = RunStats(backend=self.name)
        else:
            result.stats.backend = self.name
        return result

    # -- execution --------------------------------------------------------
    @abstractmethod
    def run(self, task: "RunTask", seed: np.random.SeedSequence) -> "RunResult":
        """Execute one run of ``task`` under ``seed``."""

    def replication_blocks(
        self, task: "RunTask", runs: int, campaign_seed: int | None
    ) -> list[ReplicationBlock] | None:
        """Split ``runs`` replications into pooled blocks, or None.

        Returning None sends the replications down the per-run path
        (``expand_replications`` + per-task execution).  Only called
        after the task has resolved to this backend, so implementations
        may assume :meth:`unsupported_reason` returned None.
        """
        return None

    def run_block(self, block: ReplicationBlock) -> list["RunResult"]:
        """Execute one replication block produced by this backend."""
        raise NotImplementedError(
            f"backend {self.name!r} does not execute replication blocks"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
