"""Name-based registry of simulation backends plus capability dispatch.

Backends register themselves at import time via :func:`register_backend`
(the built-in four live in :mod:`repro.backends.builtin`).  The registry
powers ``RunTask`` dispatch, the CLI ``--simulator`` choices, the
``repro-dls backends`` listing, and the generated capability matrix in
``docs/simulators.md``.

Dispatch is *capability-checked*: :func:`resolve_backend` asks the
requested backend whether it can serve the task and walks the declared
fallback chain when it cannot, recording a :class:`FallbackEvent` per
degradation.  Campaign code drains the event log
(:func:`drain_fallback_events`) and surfaces the degradations in its
reports — nothing falls back silently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Type

from .base import (
    CAPABILITY_DESCRIPTIONS,
    BackendResolutionError,
    FallbackEvent,
    SimulationBackend,
    capability_names,
)

if TYPE_CHECKING:
    from ..experiments.runner import RunTask

_REGISTRY: dict[str, SimulationBackend] = {}


def register_backend(
    cls: Type[SimulationBackend],
) -> Type[SimulationBackend]:
    """Class decorator adding a backend (as a singleton) to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    key = cls.name.lower()
    if key in _REGISTRY and type(_REGISTRY[key]) is not cls:
        raise ValueError(f"duplicate backend name {key!r}")
    _REGISTRY[key] = cls()
    return cls


def backend_names() -> list[str]:
    """All registered backend names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_backend(name: str) -> SimulationBackend:
    """Look up a backend by (case-insensitive) name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown simulation backend {name!r}; registered: {known}"
        ) from None


def iter_backends() -> Iterator[SimulationBackend]:
    """Iterate over registered backends in name order."""
    _ensure_loaded()
    for key in sorted(_REGISTRY):
        yield _REGISTRY[key]


# -- fallback event log ---------------------------------------------------
# Deduplicated insertion-ordered log of capability degradations.  The
# same (task cell, hop) resolves once per replication on the serial path,
# so the log dedupes on the event itself; campaign code drains it after a
# cell sweep and attaches the events to its result/report.  Worker
# processes keep their own (discarded) logs — the campaign layer resolves
# every task in the parent process before pooling, so nothing is lost.
_FALLBACK_LOG: dict[FallbackEvent, None] = {}


def record_fallback(event: FallbackEvent) -> None:
    """Append ``event`` to the process-wide fallback log (deduplicated)."""
    _FALLBACK_LOG[event] = None


def peek_fallback_events() -> list[FallbackEvent]:
    """The fallback events recorded since the last drain, oldest first."""
    return list(_FALLBACK_LOG)


def drain_fallback_events() -> list[FallbackEvent]:
    """Return and clear the recorded fallback events."""
    events = list(_FALLBACK_LOG)
    _FALLBACK_LOG.clear()
    return events


def resolve_backend(task: "RunTask") -> SimulationBackend:
    """The backend that will actually execute ``task``.

    Starts at ``task.simulator`` and follows declared fallbacks until a
    backend accepts the task, recording one :class:`FallbackEvent` per
    degradation.  Raises :class:`BackendResolutionError` when the chain
    is exhausted, and :class:`KeyError` for an unregistered name.
    """
    backend = get_backend(task.simulator)
    key = backend.task_key(task)
    visited: list[str] = []
    while True:
        visited.append(backend.name)
        reason = backend.unsupported_reason(task)
        if reason is None:
            return backend
        if backend.fallback is None:
            raise BackendResolutionError(
                f"no backend can serve {key}: tried "
                f"{' -> '.join(visited)}; {backend.name!r} rejected it "
                f"({reason}) and declares no fallback"
            )
        chosen = get_backend(backend.fallback)
        if chosen.name in visited:  # pragma: no cover - registration bug
            raise BackendResolutionError(
                f"fallback cycle while resolving {key}: "
                f"{' -> '.join(visited + [chosen.name])}"
            )
        record_fallback(
            FallbackEvent(
                task_key=key,
                requested=backend.name,
                chosen=chosen.name,
                reason=reason,
            )
        )
        backend = chosen


# -- generated documentation ----------------------------------------------
def capability_matrix() -> list[tuple[str, dict[str, bool]]]:
    """(backend name, capability flag -> supported) for every backend."""
    return [
        (
            backend.name,
            {
                name: getattr(backend.capabilities, name)
                for name in capability_names()
            },
        )
        for backend in iter_backends()
    ]


def capability_matrix_markdown() -> str:
    """The capability matrix as a GitHub-flavoured markdown table.

    ``docs/simulators.md`` embeds this table verbatim (between the
    ``capability-matrix`` markers); ``tests/test_backends.py`` asserts
    the embedded copy matches this output, so the docs cannot drift
    from the registry.
    """
    backends = list(iter_backends())
    header = "| capability | " + " | ".join(b.name for b in backends) + " |"
    rule = "|---|" + "---|" * len(backends)
    lines = [header, rule]
    for flag in capability_names():
        cells = " | ".join(
            "yes" if getattr(b.capabilities, flag) else "—" for b in backends
        )
        lines.append(f"| {CAPABILITY_DESCRIPTIONS[flag]} | {cells} |")
    fallbacks = " | ".join(b.fallback or "—" for b in backends)
    lines.append(f"| *declared fallback* | {fallbacks} |")
    return "\n".join(lines)


def _ensure_loaded() -> None:
    """Import the built-in backends so their decorators run."""
    from . import builtin  # noqa: F401  (import for side effects)
