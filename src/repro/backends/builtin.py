"""The four built-in simulation backends.

Each backend wraps one execution substrate behind the uniform
:class:`~repro.backends.base.SimulationBackend` interface:

* ``msg`` — the event-driven SimGrid-MSG-like master-worker stack; the
  most capable network-modelling backend.  Perturbation scenarios
  (``RunTask.scenario``) are the one axis it lacks, so it degrades to
  ``direct`` — the only family with the fault/fluctuation models — with
  a recorded event.
* ``msg-fast`` — the compiled MSG fast path, bit-identical to ``msg``
  for closed-form techniques; degrades to ``msg`` otherwise.
* ``direct`` — the scalar Hagerup-style chunk-level simulator; the only
  backend supporting *every* scenario model on every technique.
* ``direct-batch`` — the vectorized batch-replication kernel; degrades
  to ``direct`` for techniques without a precomputable schedule and for
  fail-stop scenarios on closed-form techniques (dynamic requeueing
  invalidates a precomputed schedule).

The run/seed semantics are exactly those the dispatch chains in
``runner.py`` used before the registry existed, so results are
bit-identical to the pre-registry code paths (enforced by
``tests/test_batch_kernel.py`` and ``tests/test_fastpath_msg.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.params import SchedulingParams
from ..core.registry import get_technique
from .base import (
    BATCH_BLOCK_RUNS,
    BackendCapabilities,
    ReplicationBlock,
    SimulationBackend,
)
from .registry import register_backend

if TYPE_CHECKING:
    from ..core.base import Scheduler
    from ..experiments.runner import RunTask
    from ..results import RunResult


def _scheduler_factory(
    task: "RunTask",
) -> Callable[[SchedulingParams], "Scheduler"]:
    cls = get_technique(task.technique)
    kwargs = task.technique_kwargs
    return lambda params: cls(params, **kwargs)


def _spawned_entropies(
    campaign_seed: int | None, count: int
) -> list[tuple[int, ...]]:
    """Per-child entropy tuples, exactly as ``expand_replications``."""
    seeds = np.random.SeedSequence(campaign_seed).spawn(count)
    return [
        tuple(int(v) for v in np.atleast_1d(seq.entropy))
        + tuple(seq.spawn_key)
        for seq in seeds
    ]


def _scenario_models(task: "RunTask"):
    """(failures, fluctuation) mechanism models from the task's scenario."""
    if task.scenario is None:
        return None, None
    p = task.params.p
    return (
        task.scenario.failstop_model(p),
        task.scenario.fluctuation_model(p),
    )


def _scenario_abort(task: "RunTask", exc: Exception) -> Exception:
    """An all-workers-failed error that names the scenario and cell."""
    from ..directsim.faults import AllWorkersFailedError

    name = task.scenario.name if task.scenario is not None else "<custom>"
    return AllWorkersFailedError(
        f"scenario {name!r} killed every PE of "
        f"{SimulationBackend.task_key(task)} before completion: {exc}"
    )


def _stamp_scenario(task: "RunTask", result: "RunResult") -> "RunResult":
    """Stamp scenario identity + declared perturbation instants.

    Both direct backends stamp the identical extras (the tuples below
    are pure functions of the scenario and ``p``), so extras equality —
    and with it whole-result bit-identity — holds across backends.
    """
    if task.scenario is None:
        return result
    result.extras["scenario"] = task.scenario.name
    result.extras["perturbations"] = tuple(
        (event.label, event.time, event.worker)
        for event in task.scenario.events(task.params.p)
    )
    return result


class _MsgBackendBase(SimulationBackend):
    """Shared construction of the master-worker simulation."""

    simulation_cls: type

    def _simulation(self, task: "RunTask"):
        from ..simgrid.masterworker import MasterWorkerConfig

        config = MasterWorkerConfig(
            overhead_model=task.overhead_model,
            start_times=(
                list(task.start_times) if task.start_times else None
            ),
            record_chunks=task.collect_chunk_log,
        )
        return self.simulation_cls(
            task.params, task.workload, platform=task.platform, config=config
        )

    def run(
        self, task: "RunTask", seed: np.random.SeedSequence
    ) -> "RunResult":
        return self.stamp_stats(
            self._simulation(task).run(_scheduler_factory(task), seed)
        )


@register_backend
class MsgBackend(_MsgBackendBase):
    """The event-driven MSG simulator (the reference substrate)."""

    name = "msg"
    description = "event-driven SimGrid-MSG-like master-worker simulator"
    capabilities = BackendCapabilities(
        adaptive_techniques=True,
        nondeterministic_schedules=True,
        contention=True,
        platforms=True,
        per_worker_speeds=False,
        staggered_starts=True,
        max_events=True,
        pooled_blocks=False,
        chunk_log=True,
    )
    #: the MSG stack has no fault/fluctuation models, so scenario tasks
    #: degrade (with a recorded event) to the direct family — the one
    #: that does.  Tasks combining a scenario with an MSG-only axis
    #: (platforms, contention) exhaust the chain and fail loudly.
    fallback = "direct"

    @property
    def simulation_cls(self):
        from ..simgrid.masterworker import MasterWorkerSimulation

        return MasterWorkerSimulation


@register_backend
class MsgFastBackend(_MsgBackendBase):
    """The compiled MSG fast path (bit-identical to ``msg``)."""

    name = "msg-fast"
    description = "compiled MSG master-worker loop (bit-identical to msg)"
    capabilities = BackendCapabilities(
        adaptive_techniques=False,
        nondeterministic_schedules=False,
        contention=False,
        platforms=True,
        per_worker_speeds=False,
        staggered_starts=True,
        max_events=False,
        pooled_blocks=True,
        chunk_log=True,
    )
    fallback = "msg"
    #: bit-identical to msg, so un-seeded tasks derive the same seeds on
    #: both — the equality is visible even for single un-seeded tasks
    entropy_namespace = "msg"

    @property
    def simulation_cls(self):
        from ..simgrid.fastpath import FastMasterWorkerSimulation

        return FastMasterWorkerSimulation

    def replication_blocks(
        self, task: "RunTask", runs: int, campaign_seed: int | None
    ) -> list[ReplicationBlock]:
        """Consecutive blocks that share one schedule precomputation.

        Per-run seed entropies are derived exactly as
        ``expand_replications`` derives them, so the block partitioning
        cannot affect results — every run keeps its own seed.
        """
        entropies = _spawned_entropies(campaign_seed, runs)
        return [
            ReplicationBlock(
                backend=self.name,
                task=task,
                runs=len(entropies[i:i + BATCH_BLOCK_RUNS]),
                seed_entropies=tuple(entropies[i:i + BATCH_BLOCK_RUNS]),
            )
            for i in range(0, runs, BATCH_BLOCK_RUNS)
        ]

    def run_block(self, block: ReplicationBlock) -> list["RunResult"]:
        sim = self._simulation(block.task)
        seeds = [
            np.random.SeedSequence(entropy=list(entropy))
            for entropy in block.seed_entropies
        ]
        return [
            self.stamp_stats(result)
            for result in sim.run_many(_scheduler_factory(block.task), seeds)
        ]


@register_backend
class DirectBackend(SimulationBackend):
    """The scalar Hagerup-style chunk-level simulator."""

    name = "direct"
    description = "scalar chunk-level simulator (Hagerup-style heap loop)"
    capabilities = BackendCapabilities(
        adaptive_techniques=True,
        nondeterministic_schedules=True,
        contention=False,
        platforms=False,
        per_worker_speeds=True,
        staggered_starts=True,
        max_events=False,
        pooled_blocks=False,
        chunk_log=True,
        fluctuation_scenarios=True,
        fault_scenarios=True,
    )
    fallback = None

    def run(
        self, task: "RunTask", seed: np.random.SeedSequence
    ) -> "RunResult":
        from ..directsim import DirectSimulator
        from ..directsim.faults import AllWorkersFailedError

        failures, fluctuation = _scenario_models(task)
        sim = DirectSimulator(
            task.params,
            task.workload,
            overhead_model=task.overhead_model,
            speeds=list(task.speeds) if task.speeds else None,
            start_times=(
                list(task.start_times) if task.start_times else None
            ),
            record_chunks=task.collect_chunk_log,
            failures=failures,
            fluctuation=fluctuation,
        )
        try:
            result = sim.run(_scheduler_factory(task), seed)
        except AllWorkersFailedError as exc:
            raise _scenario_abort(task, exc) from exc
        return self.stamp_stats(_stamp_scenario(task, result))


@register_backend
class DirectBatchBackend(SimulationBackend):
    """The vectorized batch-replication kernel."""

    name = "direct-batch"
    description = "vectorized batch-replication kernel (NumPy argmin loop)"
    capabilities = BackendCapabilities(
        adaptive_techniques=True,
        nondeterministic_schedules=True,
        contention=False,
        platforms=False,
        per_worker_speeds=True,
        staggered_starts=True,
        max_events=False,
        pooled_blocks=True,
        fluctuation_scenarios=True,
        fault_scenarios=True,
    )
    fallback = "direct"

    #: result version of the *stepping-path* stochastic cells.  The
    #: stepping kernel replaced the scalar fallback for the feedback-loop
    #: techniques: deterministic workloads stay bit-identical (scalar-era
    #: cache entries remain clean hits), but stochastic workloads moved
    #: from per-run seed streams to block sampling, so those cells'
    #: observables changed — their scalar-era entries must miss cleanly.
    STEPPING_RESULT_VERSION = 2

    def unsupported_reason(self, task: "RunTask") -> str | None:
        reason = super().unsupported_reason(task)
        if reason is not None:
            return reason
        from ..directsim.batch import batch_supported

        if not batch_supported(task.technique):
            return (
                "no vectorized path for this technique: neither a "
                "precomputable chunk schedule nor a batched stepping "
                "state"
            )
        if task.scenario is not None and task.scenario.has_faults:
            from ..core.schedule import closed_form_supported

            if closed_form_supported(task.technique):
                return (
                    f"scenario {task.scenario.name!r} injects fail-stop "
                    "faults, whose requeued work invalidates the "
                    "precomputed closed-form schedule this technique "
                    "runs on (only the stepping path reschedules "
                    "dynamically)"
                )
        return None

    def result_version_for(self, task: "RunTask") -> int:
        from ..core.schedule import closed_form_supported

        if closed_form_supported(task.technique) or (
            task.workload.deterministic
        ):
            return self.result_version
        return self.STEPPING_RESULT_VERSION

    def _simulator(self, task: "RunTask"):
        from ..directsim.batch import BatchDirectSimulator

        failures, fluctuation = _scenario_models(task)
        return BatchDirectSimulator(
            task.params,
            task.workload,
            overhead_model=task.overhead_model,
            speeds=list(task.speeds) if task.speeds else None,
            start_times=(
                list(task.start_times) if task.start_times else None
            ),
            failures=failures,
            fluctuation=fluctuation,
        )

    def _run_guarded(self, task: "RunTask", reps: int,
                     seed: np.random.SeedSequence) -> list["RunResult"]:
        from ..directsim.faults import AllWorkersFailedError

        try:
            results = self._simulator(task).run_batch(
                _scheduler_factory(task), reps, seed
            )
        except AllWorkersFailedError as exc:
            raise _scenario_abort(task, exc) from exc
        return [
            self.stamp_stats(_stamp_scenario(task, result))
            for result in results
        ]

    def run(
        self, task: "RunTask", seed: np.random.SeedSequence
    ) -> "RunResult":
        return self._run_guarded(task, 1, seed)[0]

    def replication_blocks(
        self, task: "RunTask", runs: int, campaign_seed: int | None
    ) -> list[ReplicationBlock]:
        """Fixed-size blocks, each with one spawned block-level seed."""
        counts = [BATCH_BLOCK_RUNS] * (runs // BATCH_BLOCK_RUNS)
        if runs % BATCH_BLOCK_RUNS:
            counts.append(runs % BATCH_BLOCK_RUNS)
        entropies = _spawned_entropies(campaign_seed, len(counts))
        return [
            ReplicationBlock(
                backend=self.name,
                task=task,
                runs=count,
                seed_entropy=entropy,
            )
            for count, entropy in zip(counts, entropies)
        ]

    def run_block(self, block: ReplicationBlock) -> list["RunResult"]:
        seed = np.random.SeedSequence(entropy=list(block.seed_entropy))
        return self._run_guarded(block.task, block.runs, seed)
