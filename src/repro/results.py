"""Run results shared by the direct and the SimGrid-MSG-like simulators.

Both simulators produce the same observables — makespan, per-worker
compute times, chunk counts — so that the cross-validation of the two
implementations (the verification-via-reproducibility methodology of the
paper) compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.base import ChunkRecord
from .metrics.wasted_time import OverheadModel, average_wasted_time
from .obs.stats import RunStats


@dataclass(frozen=True)
class ChunkExecution:
    """One executed chunk: scheduling record plus its simulated timing."""

    record: ChunkRecord
    start_time: float
    elapsed: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.elapsed


@dataclass
class RunResult:
    """Outcome of a single simulated run."""

    technique: str
    n: int
    p: int
    h: float
    overhead_model: OverheadModel
    makespan: float
    compute_times: list[float]
    chunks_per_worker: list[int]
    num_chunks: int
    total_task_time: float
    chunk_log: list[ChunkExecution] = field(default_factory=list)
    #: extra per-run observables (message counts, comm time, ...)
    extras: dict = field(default_factory=dict)
    #: kernel statistics of the run (events, heap peak, wall time, ...).
    #: Observability metadata, not a result: excluded from equality, so
    #: bit-identical runs compare equal even across substrates.
    stats: RunStats | None = field(default=None, compare=False, repr=False)

    @property
    def average_wasted_time(self) -> float:
        """The paper's per-run metric (Section III-B accounting)."""
        return average_wasted_time(
            self.makespan,
            self.compute_times,
            self.num_chunks,
            self.h,
            self.overhead_model,
        )

    @property
    def wasted_times(self) -> list[float]:
        """Per-worker wasted time (idle, plus overhead where in-model)."""
        return [self.makespan - c for c in self.compute_times]

    @property
    def speedup(self) -> float:
        """Serial task time over makespan (ideal = p)."""
        if self.makespan <= 0:
            return float(self.p)
        return self.total_task_time / self.makespan

    @property
    def efficiency(self) -> float:
        """Speedup divided by the number of PEs."""
        return self.speedup / self.p
