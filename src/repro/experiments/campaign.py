"""The full reproduction campaign: every artifact in one run.

Regenerates Tables II/III and Figures 3-9 with configurable run counts
and prints the series plus discrepancy analyses.  Used by
``scripts/run_campaign.py`` and ``repro-dls campaign``; the output is
the source of the numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping, TextIO

if TYPE_CHECKING:  # pragma: no cover
    from ..scenarios import Scenario

#: default replications per BOLD task count (MSG simulator side)
DEFAULT_CAMPAIGN_RUNS: dict[int, int] = {
    1024: 100, 8192: 30, 65536: 8, 524288: 2,
}
DEFAULT_FIG9_RUNS = 1000


def run_full_campaign(
    out: TextIO | None = None,
    campaign_runs: Mapping[int, int] | None = None,
    fig9_runs: int = DEFAULT_FIG9_RUNS,
    include_tss: bool = True,
    simulator: str = "msg",
    workers: int | None = None,
    cache: "str | None" = None,
    cache_verify: float = 0.0,
    scenario: "Scenario | None" = None,
) -> float:
    """Run everything; returns the total wall time in seconds.

    ``out`` defaults to stdout.  ``campaign_runs`` maps BOLD task counts
    to replication counts (missing task counts are skipped).
    ``simulator`` names a registered simulation backend
    (``repro.backends.backend_names()``) for the BOLD experiments;
    requests it cannot serve degrade along its declared fallback chain
    and the degradations are reported per figure.  ``workers`` sizes the
    replication process pool; it defaults to the ``REPRO_WORKERS``
    environment variable or the CPU count.

    ``cache`` names a result-cache directory (:mod:`repro.cache`): every
    replication sweep is looked up there first and only the cells that
    miss are simulated, so re-running an identical campaign is ~instant
    and concurrent campaigns share work.  ``cache_verify`` re-simulates
    that fraction of cache hits and fails loudly on divergence.  A cache
    already activated by the caller (:func:`repro.cache.set_cache`) is
    used as-is.

    ``scenario`` perturbs the BOLD experiments (figs 5-9) with a
    :class:`repro.scenarios.Scenario` and appends the robustness study
    comparing the perturbed techniques against their clean baselines.
    Perturbed cells key the cache separately from clean ones, so a
    perturbed campaign reuses nothing from a clean one by accident.
    """
    import contextlib

    from ..backends import get_backend
    from ..cache import cache_to

    get_backend(simulator)  # fail fast on unknown backends

    with contextlib.ExitStack() as stack:
        if cache is not None:
            stack.enter_context(cache_to(cache, verify_fraction=cache_verify))
        return _run_full_campaign_body(
            out, campaign_runs, fig9_runs, include_tss, simulator, workers,
            scenario,
        )


def _run_full_campaign_body(
    out: TextIO | None,
    campaign_runs: Mapping[int, int] | None,
    fig9_runs: int,
    include_tss: bool,
    simulator: str,
    workers: int | None,
    scenario: "Scenario | None" = None,
) -> float:
    import sys

    from .descriptors import EXPERIMENTS

    stream = out if out is not None else sys.stdout

    def emit(text: str = "") -> None:
        print(text, file=stream)

    def banner(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    if campaign_runs is None:
        campaign_runs = DEFAULT_CAMPAIGN_RUNS

    t0 = time.time()
    banner("Table II / Table III")
    emit(EXPERIMENTS["table2"].run())
    emit()
    emit(EXPERIMENTS["table3"].run())

    if include_tss:
        for fig in ("fig3", "fig4"):
            banner(f"{fig} — TSS experiment")
            t = time.time()
            emit(EXPERIMENTS[fig].run())
            emit(f"[{fig} took {time.time() - t:.1f}s]")

    scenario_kwargs = {} if scenario is None else {"scenario": scenario}
    fig_by_n = {1024: "fig5", 8192: "fig6", 65536: "fig7", 524288: "fig8"}
    for n, fig in fig_by_n.items():
        if n not in campaign_runs:
            continue
        runs = campaign_runs[n]
        suffix = "" if scenario is None else f", scenario={scenario.name}"
        banner(f"{fig} — BOLD experiment, {n:,} tasks ({runs} runs{suffix})")
        t = time.time()
        emit(EXPERIMENTS[fig].run(runs=runs, simulator=simulator,
                                  processes=workers, **scenario_kwargs))
        emit(f"[{fig} took {time.time() - t:.1f}s]")

    if fig9_runs > 0:
        banner(f"fig9 — FAC outlier study ({fig9_runs} runs)")
        t = time.time()
        emit(EXPERIMENTS["fig9"].run(runs=fig9_runs, processes=workers,
                                     **scenario_kwargs))
        emit(f"[fig9 took {time.time() - t:.1f}s]")

    if scenario is not None:
        smallest = min(campaign_runs) if campaign_runs else 1024
        banner(
            f"robustness — perturbed vs clean makespan "
            f"(scenario={scenario.name}, n={smallest:,})"
        )
        t = time.time()
        emit(EXPERIMENTS["robustness"].run(
            scenario=scenario,
            n=smallest,
            runs=min(campaign_runs.get(smallest, 5), 10),
            processes=workers,
        ))
        emit(f"[robustness took {time.time() - t:.1f}s]")

    total = time.time() - t0
    emit(f"\ntotal campaign time: {total:.1f}s")
    return total
