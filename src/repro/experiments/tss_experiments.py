"""The TSS-publication reproducibility experiments (Figures 3 and 4).

Experiment 1: 100,000 tasks of constant 110 µs; experiment 2: 10,000
tasks of constant 2 ms.  Techniques: SS, CSS (k = n/p), GSS(1), GSS(k)
with the experiment's larger minimum chunk (80 resp. 5), and TSS.  The
metric is speedup over the serial execution; the original (Tzen & Ni
1993) additionally reports the degree of scheduling overhead and of load
imbalancing, which this harness computes as well.

The original system is a 96-node BBN GP-1000 (shared-memory NUMA over a
multistage network).  Per Section III-A only master-worker control
messages need modelling, so the platform is a star with a small
per-message latency (:func:`bbn_gp1000_platform`); the paper's negative
result — SS and GSS(1) do *not* reproduce the 1993 hardware numbers
because SimGrid-MSG has no shared-loop-index contention — is expected to
show up here exactly the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backends import get_backend
from ..core.params import SchedulingParams
from ..metrics.speedup import TzenNiMetrics, tzen_ni_metrics
from ..simgrid.platform import Platform, star_platform
from ..workloads.distributions import ConstantWorkload

#: PE counts matching the sweep of the original figures (x-axis 0..80)
TSS_PE_COUNTS = (2, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80)

#: experiment definitions: (n, task seconds, big GSS minimum chunk)
TSS_EXPERIMENTS = {
    1: {"n": 100_000, "task_time": 110e-6, "gss_k": 80},
    2: {"n": 10_000, "task_time": 2e-3, "gss_k": 5},
}

#: default per-message latency of the BBN-GP-1000-like platform [s]
BBN_LATENCY = 2e-6
#: default link bandwidth [bytes/s] — control messages make this marginal
BBN_BANDWIDTH = 1.25e8


def bbn_gp1000_platform(p: int, latency: float = BBN_LATENCY,
                        bandwidth: float = BBN_BANDWIDTH) -> Platform:
    """A star stand-in for the GP-1000's multistage network.

    Only request/assign/finalize messages flow (Section III-A), so the
    OMEGA-variant topology reduces to a per-worker path with one
    network-traversal latency.
    """
    return star_platform(p, bandwidth=bandwidth, latency=latency)


def tss_technique_set(experiment: int) -> list[tuple[str, str, dict]]:
    """(label, registry name, kwargs) for the experiment's five curves."""
    spec = TSS_EXPERIMENTS[experiment]
    return [
        ("SS", "ss", {}),
        ("CSS", "css", {}),          # k defaults to ceil(n/p), as in [12]
        ("GSS(1)", "gss", {"min_chunk": 1}),
        (f"GSS({spec['gss_k']})", "gss", {"min_chunk": spec["gss_k"]}),
        ("TSS", "tss", {}),
    ]


@dataclass
class TssExperimentResult:
    """Speedup curves (and the full Tzen-Ni triple) of one experiment."""

    experiment: int
    n: int
    task_time: float
    pe_counts: tuple[int, ...]
    speedups: dict[str, list[float]] = field(default_factory=dict)
    metrics: dict[str, list[TzenNiMetrics]] = field(default_factory=dict)

    @property
    def overheads(self) -> dict[str, list[float]]:
        """Degree-of-scheduling-overhead curves (original Fig. 7/8 middle)."""
        return {
            k: [m.scheduling_overhead for m in ms]
            for k, ms in self.metrics.items()
        }

    @property
    def imbalances(self) -> dict[str, list[float]]:
        """Degree-of-load-imbalancing curves (original Fig. 7/8 bottom)."""
        return {
            k: [m.load_imbalance for m in ms] for k, ms in self.metrics.items()
        }


def run_tss_experiment(
    experiment: int,
    pe_counts: Sequence[int] = TSS_PE_COUNTS,
    latency: float = BBN_LATENCY,
    bandwidth: float = BBN_BANDWIDTH,
    seed: int = 1993,
    simulator: str = "msg",
) -> TssExperimentResult:
    """Reproduce Figure 3b (experiment 1) or Figure 4b (experiment 2).

    The constant workload makes each run deterministic, so one run per
    (technique, p) point suffices — matching the original single
    measurements.  ``simulator`` names a registered backend (the
    platform-aware MSG family; ``msg-fast`` is bit-identical to the
    default and faster, since all five techniques are closed-form).
    """
    from .runner import RunTask

    get_backend(simulator)  # fail fast on unknown backends
    if experiment not in TSS_EXPERIMENTS:
        raise ValueError(
            f"experiment must be one of {sorted(TSS_EXPERIMENTS)}, "
            f"got {experiment}"
        )
    spec = TSS_EXPERIMENTS[experiment]
    result = TssExperimentResult(
        experiment=experiment,
        n=spec["n"],
        task_time=spec["task_time"],
        pe_counts=tuple(pe_counts),
    )
    workload = ConstantWorkload(spec["task_time"])
    for label, name, kwargs in tss_technique_set(experiment):
        speedups: list[float] = []
        metrics: list[TzenNiMetrics] = []
        for p in pe_counts:
            task = RunTask(
                technique=name,
                params=SchedulingParams(n=spec["n"], p=p, h=0.0),
                workload=workload,
                simulator=simulator,
                platform=bbn_gp1000_platform(
                    p, latency=latency, bandwidth=bandwidth
                ),
                technique_kwargs=dict(kwargs),
                seed_entropy=(seed,),
            )
            m = tzen_ni_metrics(task.execute())
            speedups.append(m.speedup)
            metrics.append(m)
        result.speedups[label] = speedups
        result.metrics[label] = metrics
    return result


@dataclass(frozen=True)
class ReproductionVerdict:
    """Did a technique's curve reproduce the published one?"""

    technique: str
    max_abs_relative_discrepancy: float
    reproduced: bool


def tss_reproduction_verdicts(
    result: TssExperimentResult,
    tolerance_percent: float = 25.0,
) -> list[ReproductionVerdict]:
    """Compare simulated speedups against the digitized published curves.

    Mirrors Section IV-A's conclusion: CSS, TSS (and GSS with the larger
    minimum chunk) reproduce within tolerance, SS and GSS(1) do not.
    """
    from .published import tss_published_speedups

    published = tss_published_speedups(result.experiment)
    verdicts = []
    for technique, sim in result.speedups.items():
        if technique not in published:
            continue
        pub = published[technique]
        worst = max(
            abs((s - q) / q) * 100.0
            for s, q in zip(_at_published_pes(result, sim), pub)
        )
        verdicts.append(
            ReproductionVerdict(
                technique=technique,
                max_abs_relative_discrepancy=worst,
                reproduced=worst <= tolerance_percent,
            )
        )
    return verdicts


def remote_access_slowdown(ratio: float, p: int,
                           base_penalty: float = 0.5,
                           contention_per_pe: float = 0.05) -> float:
    """Compute-time inflation from remote memory references.

    Tzen & Ni measured speedup for remote reference ratios from 0 % to
    50 % on the GP-1000 (their motivation for fixing 5 % elsewhere).  The
    GP-1000's multistage network makes a remote reference several times
    a local one, and contention grows with the PE count; this synthetic
    stand-in inflates each task by
    ``1 + ratio * (base_penalty + contention_per_pe * p)``
    (see DESIGN.md §3 — the memory system itself is not modelled).
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    return 1.0 + ratio * (base_penalty + contention_per_pe * p)


def run_remote_ratio_study(
    ratios: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    p: int = 64,
    n: int = 100_000,
    task_time: float = 110e-6,
    technique: str = "tss",
    latency: float = BBN_LATENCY,
    seed: int = 1993,
    simulator: str = "msg",
) -> dict[float, float]:
    """Speedup versus remote memory reference ratio (TSS pub., Sec. V).

    Speedup is measured against the *local* serial execution
    (``n * task_time``), so it degrades as remote references inflate the
    parallel compute time.  Returns ratio -> speedup.  Runs execute
    through :class:`~repro.experiments.runner.RunTask`, so an active
    result cache serves repeats.
    """
    from .runner import RunTask

    get_backend(simulator)  # fail fast on unknown backends
    platform = bbn_gp1000_platform(p, latency=latency)
    out: dict[float, float] = {}
    for ratio in ratios:
        factor = remote_access_slowdown(ratio, p)
        task = RunTask(
            technique=technique,
            params=SchedulingParams(n=n, p=p, h=0.0),
            workload=ConstantWorkload(task_time * factor),
            simulator=simulator,
            platform=platform,
            seed_entropy=(seed,),
        )
        out[ratio] = (n * task_time) / task.execute().makespan
    return out


def run_css_k_sweep(
    k_values: Sequence[int] = (1, 10, 100, 500, 1389, 5000, 20000),
    p: int = 72,
    n: int = 100_000,
    task_time: float = 110e-6,
    latency: float = BBN_LATENCY,
    seed: int = 1993,
    simulator: str = "msg",
) -> dict[int, float]:
    """CSS(k) speedup versus chunk size (the TSS publication's tuning).

    Reproduces the claim quoted in Section IV-A: with
    ``(P, I, L(i)) = (72, 100000, 110us)`` the choice ``k = I/P = 1389``
    achieves speedup 69.2, "very close to the ideal speedup, 72".  The
    sweep shows the two failure directions: tiny ``k`` degenerates to SS
    (overhead bound), huge ``k`` to STAT-with-fewer-chunks (imbalance
    from the final partial chunks).  Returns k -> speedup.  Runs execute
    through :class:`~repro.experiments.runner.RunTask`, so an active
    result cache serves repeats.
    """
    from .runner import RunTask

    get_backend(simulator)  # fail fast on unknown backends
    workload = ConstantWorkload(task_time)
    platform = bbn_gp1000_platform(p, latency=latency)
    out: dict[int, float] = {}
    for k in k_values:
        task = RunTask(
            technique="css",
            params=SchedulingParams(n=n, p=p, h=0.0, chunk_size=k),
            workload=workload,
            simulator=simulator,
            platform=platform,
            technique_kwargs={"k": k},
            seed_entropy=(seed,),
        )
        out[k] = tzen_ni_metrics(task.execute()).speedup
    return out


#: the four workload shapes of the TSS publication's loop suite
TSS_WORKLOAD_SHAPES = ("constant", "random", "decreasing", "increasing")


def tss_workload(shape: str, n: int, task_time: float):
    """One of Tzen & Ni's four loop workload shapes.

    ``constant`` — every iteration takes ``task_time``; ``random`` —
    uniform in ``[0.5, 1.5] * task_time``; ``decreasing``/``increasing``
    — linear from/to ``2 * task_time`` and ``0.01 * task_time``
    (triangular loop nests).
    """
    from ..workloads.distributions import (
        ConstantWorkload,
        UniformWorkload,
        decreasing_workload,
        increasing_workload,
    )

    if shape == "constant":
        return ConstantWorkload(task_time)
    if shape == "random":
        return UniformWorkload(0.5 * task_time, 1.5 * task_time)
    if shape == "decreasing":
        return decreasing_workload(n, 2.0 * task_time, 0.01 * task_time)
    if shape == "increasing":
        return increasing_workload(n, 0.01 * task_time, 2.0 * task_time)
    raise ValueError(
        f"shape must be one of {TSS_WORKLOAD_SHAPES}, got {shape!r}"
    )


def run_tss_workload_study(
    experiment: int = 1,
    shapes: Sequence[str] = TSS_WORKLOAD_SHAPES,
    p: int = 64,
    latency: float = BBN_LATENCY,
    seed: int = 1993,
    simulator: str = "msg",
) -> dict[str, dict[str, float]]:
    """Speedups of the five techniques across the four workload shapes.

    Extension of Figures 3/4: the TSS publication also measured its
    random/decreasing/increasing loops; this sweep regenerates the
    qualitative finding that TSS stays near-ideal across shapes while
    GSS suffers on decreasing workloads (its huge early chunks contain
    the longest iterations).  Returns shape -> technique -> speedup.
    Runs execute through :class:`~repro.experiments.runner.RunTask`, so
    an active result cache serves repeats.
    """
    from .runner import RunTask

    get_backend(simulator)  # fail fast on unknown backends
    spec = TSS_EXPERIMENTS[experiment]
    out: dict[str, dict[str, float]] = {}
    platform = bbn_gp1000_platform(p, latency=latency)
    for shape in shapes:
        workload = tss_workload(shape, spec["n"], spec["task_time"])
        row: dict[str, float] = {}
        for label, name, kwargs in tss_technique_set(experiment):
            task = RunTask(
                technique=name,
                params=SchedulingParams(n=spec["n"], p=p, h=0.0),
                workload=workload,
                simulator=simulator,
                platform=platform,
                technique_kwargs=dict(kwargs),
                seed_entropy=(seed,),
            )
            row[label] = tzen_ni_metrics(task.execute()).speedup
        out[shape] = row
    return out


def _at_published_pes(result: TssExperimentResult,
                      values: Sequence[float]) -> list[float]:
    """Restrict a simulated curve to the PE counts the digitization has."""
    from .published import TSS_PUBLISHED_PES

    out = []
    for p in TSS_PUBLISHED_PES:
        try:
            out.append(values[result.pe_counts.index(p)])
        except ValueError:
            raise ValueError(
                f"simulated sweep lacks published PE count {p}; "
                f"run with pe_counts including {TSS_PUBLISHED_PES}"
            ) from None
    return out
