"""Campaign persistence: save, load and compare experiment results.

Reproducibility of *this* work (Section V of the paper makes its raw
data available online) requires the regenerated series to be storable
and comparable: a :class:`CampaignRecord` holds the series of any number
of experiments with their provenance (seed, runs, simulator, package
version), serialises to JSON, and can be diffed against a later record —
so a change in the library that shifts an experiment's numbers is caught
as a regression.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..metrics.discrepancy import DiscrepancyRow, discrepancy_table


@dataclass
class ExperimentSeries:
    """One experiment's series: technique -> values over sweep keys."""

    experiment: str
    keys: list
    series: dict[str, list[float]]
    provenance: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "experiment": self.experiment,
            "keys": list(self.keys),
            "series": {k: list(map(float, v)) for k, v in self.series.items()},
            "provenance": self.provenance,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ExperimentSeries":
        return cls(
            experiment=data["experiment"],
            keys=list(data["keys"]),
            series={k: list(v) for k, v in data["series"].items()},
            provenance=dict(data.get("provenance", {})),
        )


@dataclass
class CampaignRecord:
    """A set of experiment series plus campaign-level provenance."""

    experiments: dict[str, ExperimentSeries] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def add(self, series: ExperimentSeries) -> None:
        self.experiments[series.experiment] = series

    def add_bold_result(self, result) -> ExperimentSeries:
        """Record a :class:`~repro.experiments.bold_experiments.BoldExperimentResult`."""
        series = ExperimentSeries(
            experiment=f"bold-n{result.n}",
            keys=list(result.pe_counts),
            series={k: list(v) for k, v in result.values.items()},
            provenance={
                "n": result.n,
                "runs": result.runs,
                "simulator": result.simulator,
                "fallbacks": [e.to_json() for e in result.fallbacks],
            },
        )
        self.add(series)
        return series

    def add_tss_result(self, result) -> ExperimentSeries:
        """Record a :class:`~repro.experiments.tss_experiments.TssExperimentResult`."""
        series = ExperimentSeries(
            experiment=f"tss-exp{result.experiment}",
            keys=list(result.pe_counts),
            series={k: list(v) for k, v in result.speedups.items()},
            provenance={
                "n": result.n,
                "task_time": result.task_time,
            },
        )
        self.add(series)
        return series

    # -- (de)serialisation --------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the record as JSON, atomically.

        The document lands in a temporary file in the target directory
        and is moved into place with :func:`os.replace`, so a crash
        mid-write cannot leave a truncated campaign file — the previous
        version (if any) survives intact.  Environment provenance
        (package version, platform, ``REPRO_WORKERS``) is merged into
        :attr:`metadata` under ``"provenance"`` unless the caller
        already recorded one.
        """
        from ..obs.provenance import capture_provenance

        self.metadata.setdefault("provenance", capture_provenance())
        document = {
            "metadata": self.metadata,
            "experiments": {
                k: v.to_json() for k, v in self.experiments.items()
            },
        }
        path = Path(path)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(document, indent=1))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "CampaignRecord":
        data = json.loads(Path(path).read_text())
        record = cls(metadata=dict(data.get("metadata", {})))
        for key, value in data.get("experiments", {}).items():
            record.experiments[key] = ExperimentSeries.from_json(value)
        return record


@dataclass
class CampaignComparison:
    """The outcome of diffing two campaign records.

    ``rows`` holds per-experiment discrepancy rows for everything both
    records contain; ``problems`` lists the structural mismatches —
    experiments or techniques present in only one record — that a
    numeric diff cannot express.  A comparison with problems is not a
    clean comparison, even when every shared cell matches.
    """

    rows: dict[str, list[DiscrepancyRow]] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)


def compare_campaigns(
    current: CampaignRecord,
    reference: CampaignRecord,
) -> CampaignComparison:
    """Diff two campaign records experiment by experiment.

    Discrepancy rows are built for every (experiment, technique) pair
    both records contain.  An experiment or technique present in only
    one record is reported in :attr:`CampaignComparison.problems`
    instead of being silently dropped — a vanished series is exactly
    the kind of regression the diff exists to catch.  Sweep-key
    mismatches on a shared experiment still raise ``ValueError`` (the
    series are not comparable at all).
    """
    comparison = CampaignComparison()
    for exp_id in sorted(set(current.experiments) | set(reference.experiments)):
        series = current.experiments.get(exp_id)
        ref = reference.experiments.get(exp_id)
        if series is None:
            comparison.problems.append(
                f"{exp_id}: only in the reference campaign"
            )
            continue
        if ref is None:
            comparison.problems.append(
                f"{exp_id}: only in the current campaign"
            )
            continue
        if list(ref.keys) != list(series.keys):
            raise ValueError(
                f"{exp_id}: sweep keys differ "
                f"({series.keys} vs {ref.keys})"
            )
        for technique in sorted(set(series.series) - set(ref.series)):
            comparison.problems.append(
                f"{exp_id} / {technique}: only in the current campaign"
            )
        for technique in sorted(set(ref.series) - set(series.series)):
            comparison.problems.append(
                f"{exp_id} / {technique}: only in the reference campaign"
            )
        comparison.rows[exp_id] = discrepancy_table(
            series.series, ref.series, series.keys
        )
    return comparison


def regression_check(
    current: CampaignRecord,
    reference: CampaignRecord,
    tolerance_percent: float = 25.0,
) -> list[str]:
    """Human-readable regressions: cells drifting beyond the tolerance.

    Returns an empty list when everything is within tolerance.  The
    default tolerance is generous because runs are stochastic; tighten
    it for campaigns with large run counts.  Structural mismatches
    (experiments or techniques present in only one record) are always
    regressions, whatever the tolerance.
    """
    comparison = compare_campaigns(current, reference)
    problems: list[str] = list(comparison.problems)
    for exp_id, rows in comparison.rows.items():
        for row in rows:
            for key, rel in zip(row.keys, row.relative_discrepancies):
                if abs(rel) > tolerance_percent:
                    problems.append(
                        f"{exp_id} / {row.technique} @ {key}: "
                        f"{rel:+.1f}% vs reference"
                    )
    return problems
