"""Regeneration of the paper's tables.

* Table I is notation (nothing to compute).
* Table II — required parameters per DLS technique — is *generated from
  the implementation*: each technique class declares its ``requires``
  set, so the table doubles as a living check that the code needs exactly
  what the paper says it needs.
* Table III — the overview of the BOLD reproducibility experiments.
"""

from __future__ import annotations

from ..core.base import PARAM_SYMBOLS
from ..core.registry import get_technique
from .report import format_table

#: Table II's row order in the paper
TABLE2_TECHNIQUES = ("STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD")

#: Table II of the paper, transcribed: technique -> required symbols
TABLE2_PUBLISHED: dict[str, frozenset[str]] = {
    "STAT": frozenset({"p", "n"}),
    "SS": frozenset(),
    "FSC": frozenset({"p", "n", "h", "sigma"}),
    "GSS": frozenset({"p", "r"}),
    "TSS": frozenset({"p", "n", "f", "l"}),
    "FAC": frozenset({"p", "r", "mu", "sigma"}),
    "FAC2": frozenset({"p", "r"}),
    "BOLD": frozenset({"p", "r", "h", "mu", "sigma", "m"}),
}


def table2_rows(techniques=TABLE2_TECHNIQUES) -> list[list[str]]:
    """The X-matrix rows of Table II, from the implementation."""
    rows = []
    for label in techniques:
        cls = get_technique(label.lower())
        row = [label]
        for symbol in PARAM_SYMBOLS:
            row.append("X" if symbol in cls.requires else "")
        rows.append(row)
    return rows


def format_table2(techniques=TABLE2_TECHNIQUES) -> str:
    """Table II as ASCII (headers = Table I symbols)."""
    headers = ["DLS"] + list(PARAM_SYMBOLS)
    return format_table(headers, table2_rows(techniques))


def table2_matches_publication(techniques=TABLE2_TECHNIQUES) -> dict[str, bool]:
    """Per-technique check that ``requires`` equals the published row."""
    out = {}
    for label in techniques:
        cls = get_technique(label.lower())
        out[label] = frozenset(cls.requires) == TABLE2_PUBLISHED[label]
    return out


def format_table3() -> str:
    """Table III: overview of the reproducibility experiments."""
    from .bold_experiments import BOLD_PE_COUNTS, BOLD_TASK_COUNTS

    pes = "{" + "; ".join(f"{p:,}" for p in BOLD_PE_COUNTS) + "}"
    headers = ["Number of tasks", f"Number of PEs = {pes}"]
    figure_by_n = {1024: 5, 8192: 6, 65536: 7, 524288: 8}
    rows = [
        [f"{n:,}", f"Sec. IV-B{i + 1}; Figure {figure_by_n[n]}"]
        for i, n in enumerate(BOLD_TASK_COUNTS)
    ]
    return format_table(headers, rows)
