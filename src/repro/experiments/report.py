"""Plain-text reporting: the rows/series the paper's figures plot.

The harness prints ASCII tables (and writes CSV) carrying exactly the
series of each figure: techniques down the side, the sweep (PE counts)
across, values in seconds or speedups.  ``format_log_series`` renders a
rough log-scale text chart for terminal inspection of the figure shapes.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_fmt: str = "{:.2f}") -> str:
    """Fixed-width ASCII table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def series_table(
    series: Mapping[str, Sequence[float]],
    keys: Sequence,
    key_header: str = "PEs",
    float_fmt: str = "{:.2f}",
) -> str:
    """Techniques as rows, sweep keys as columns (a figure's data)."""
    headers = [key_header] + [str(k) for k in keys]
    rows = []
    for name, values in series.items():
        if len(values) != len(keys):
            raise ValueError(
                f"{name}: need {len(keys)} values, got {len(values)}"
            )
        rows.append([name] + list(values))
    return format_table(headers, rows, float_fmt=float_fmt)


def write_csv(
    path: str | Path,
    series: Mapping[str, Sequence[float]],
    keys: Sequence,
    key_header: str = "technique",
) -> None:
    """Write a figure's series to CSV (one row per technique).

    ``key_header`` names the first column (the row-label column); the
    remaining header cells are the sweep keys.
    """
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([key_header] + [str(k) for k in keys])
        for name, values in series.items():
            writer.writerow([name] + [repr(float(v)) for v in values])


def read_csv_series(
    path: str | Path,
) -> tuple[dict[str, list[float]], list[str], str]:
    """Read a :func:`write_csv` file back: (series, keys, key_header).

    Keys come back as the strings of the header row (``write_csv``
    stringifies them); values round-trip exactly because ``write_csv``
    writes ``repr(float)``.
    """
    with Path(path).open(newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows or len(rows[0]) < 2:
        raise ValueError(f"{path}: not a series CSV (no header row)")
    header = rows[0]
    series = {row[0]: [float(v) for v in row[1:]] for row in rows[1:]}
    return series, header[1:], header[0]


def series_to_csv_text(series: Mapping[str, Sequence[float]],
                       keys: Sequence) -> str:
    """The CSV content as a string (for tests and stdout)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["technique"] + [str(k) for k in keys])
    for name, values in series.items():
        writer.writerow([name] + [repr(float(v)) for v in values])
    return buf.getvalue()


def ascii_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 50,
    log_counts: bool = False,
) -> str:
    """A terminal histogram — Figure 9's per-run distribution view."""
    import math as _math

    data = [float(v) for v in values]
    if not data:
        return "(empty sample)"
    lo, hi = min(data), max(data)
    if hi == lo:
        return f"all {len(data)} values = {lo:.3g}"
    span = (hi - lo) / bins
    counts = [0] * bins
    for v in data:
        idx = min(int((v - lo) / span), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + i * span
        right = left + span
        if log_counts and count > 0:
            bar_len = max(
                1, int(_math.log1p(count) / _math.log1p(peak) * width)
            )
        else:
            bar_len = int(count / peak * width) if peak else 0
        lines.append(
            f"[{left:>9.2f}, {right:>9.2f}) "
            f"{'#' * bar_len:<{width}} {count}"
        )
    return "\n".join(lines)


def format_log_series(
    series: Mapping[str, Sequence[float]],
    keys: Sequence,
    width: int = 60,
) -> str:
    """A crude log-scale text rendering of a figure's series.

    Each series/key pair becomes one marker positioned by log10(value),
    enough to eyeball who wins and where crossovers fall.
    """
    values = [v for vs in series.values() for v in vs if v > 0]
    if not values:
        return "(no positive values)"
    lo = math.log10(min(values))
    hi = math.log10(max(values))
    span = max(hi - lo, 1e-9)
    lines = [f"log10 scale: {10**lo:.3g} .. {10**hi:.3g}"]
    for name, vs in series.items():
        for key, v in zip(keys, vs):
            if v <= 0:
                bar = "(<=0)"
                pos = 0
            else:
                pos = int((math.log10(v) - lo) / span * (width - 1))
                bar = "." * pos + "o"
            lines.append(f"{name:>6} p={key!s:>5} |{bar:<{width}}| {v:.3g}")
    return "\n".join(lines)
