"""Reference ("published") values the reproductions compare against.

Two kinds of references exist, with different provenance:

**TSS speedups** (Figures 3a/4a) — digitized *by eye* from Figure 7/8 of
Tzen & Ni (1993) as reprinted in the paper.  They capture curve shapes
(who saturates, who tracks the ideal) to within roughly ±15 % and are
used only for the qualitative reproduced / not-reproduced verdicts of
Section IV-A.

**BOLD average wasted times** (Figures 5a..8a) — Hagerup's Table I values
are not available offline, so, exactly as the paper itself did when the
fictitious-platform route failed, the reference is *regenerated with a
replica of Hagerup's simulator*: the direct simulator, per-task sampling
(no Gamma shortcut), a fixed campaign seed, documented run counts.  The
values live in ``data/bold_reference.json`` (regenerate with
``python -m repro.experiments.published``), and the reproduction then
compares an independent implementation (the event-driven MSG simulator
with chunk-level sampling and different seeds) against them — the same
two-implementation verification the paper performs.  See DESIGN.md §3.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

_DATA_DIR = Path(__file__).parent / "data"
_BOLD_REFERENCE_PATH = _DATA_DIR / "bold_reference.json"

#: campaign seed of the reference generation (fixed and documented)
BOLD_REFERENCE_SEED = 19971202

#: reference replications per task count — scaled to chunk-count cost;
#: SS dominates (one scheduling operation per task)
BOLD_REFERENCE_RUNS = {1024: 200, 8192: 60, 65536: 8, 524288: 3}

# --------------------------------------------------------------------------
# TSS (Figures 3a / 4a): digitized published speedups
# --------------------------------------------------------------------------

#: PE counts at which the curves were digitized
TSS_PUBLISHED_PES = (8, 16, 24, 32, 40, 48, 56, 64, 72, 80)

#: Experiment 1 (100,000 tasks, 110 us).  Anchors from the text: CSS with
#: k = n/p reaches speedup 69.2 at 72 PEs; SS saturates below 10 (lock
#: and scheduling bound); GSS(1) trails CSS; TSS tracks CSS closely.
_TSS_EXP1_PUBLISHED: dict[str, tuple[float, ...]] = {
    "SS": (3.6, 4.1, 4.4, 4.6, 4.7, 4.8, 4.9, 4.9, 5.0, 5.0),
    "CSS": (7.8, 15.5, 23.1, 30.6, 38.0, 45.2, 52.2, 59.0, 69.2, 70.5),
    "GSS(1)": (7.4, 14.4, 21.0, 27.2, 33.0, 38.5, 44.0, 49.0, 56.0, 60.0),
    "GSS(80)": (7.7, 15.2, 22.6, 29.8, 36.8, 43.6, 50.2, 56.6, 65.0, 67.0),
    "TSS": (7.8, 15.4, 22.9, 30.3, 37.5, 44.6, 51.5, 58.2, 67.5, 69.5),
}

#: Experiment 2 (10,000 tasks, 2 ms).  The coarser tasks lift SS's
#: saturation point but it still falls far short of linear; GSS(1)
#: likewise; CSS / GSS(5) / TSS stay near the ideal.
_TSS_EXP2_PUBLISHED: dict[str, tuple[float, ...]] = {
    "SS": (7.5, 14.0, 19.5, 24.0, 27.5, 30.0, 31.5, 32.5, 33.0, 33.5),
    "CSS": (7.8, 15.5, 23.0, 30.4, 37.6, 44.6, 51.4, 58.0, 64.5, 69.0),
    "GSS(1)": (7.3, 14.0, 20.2, 25.8, 31.0, 35.6, 39.8, 43.5, 47.0, 50.0),
    "GSS(5)": (7.7, 15.2, 22.5, 29.6, 36.5, 43.2, 49.6, 55.8, 62.0, 66.0),
    "TSS": (7.8, 15.4, 22.8, 30.1, 37.2, 44.0, 50.6, 57.0, 63.5, 68.0),
}


def tss_published_speedups(experiment: int) -> Mapping[str, tuple[float, ...]]:
    """The digitized published speedup curves of one TSS experiment."""
    if experiment == 1:
        return dict(_TSS_EXP1_PUBLISHED)
    if experiment == 2:
        return dict(_TSS_EXP2_PUBLISHED)
    raise ValueError(f"experiment must be 1 or 2, got {experiment}")


# --------------------------------------------------------------------------
# BOLD (Figures 5a..8a): regenerated reference values
# --------------------------------------------------------------------------


def bold_reference_available() -> bool:
    """Whether the generated reference data file exists."""
    return _BOLD_REFERENCE_PATH.exists()


def bold_reference(n: int) -> dict[str, list[float]]:
    """Reference average wasted times for the ``n``-task experiment.

    Returns technique -> one value per
    :data:`~repro.experiments.bold_experiments.BOLD_PE_COUNTS`.
    """
    data = _load_reference()
    key = str(n)
    if key not in data["experiments"]:
        known = sorted(int(k) for k in data["experiments"])
        raise KeyError(f"no reference for n={n}; known task counts: {known}")
    return {
        tech: list(values)
        for tech, values in data["experiments"][key]["values"].items()
    }


def bold_reference_metadata() -> dict:
    """Provenance of the reference data (seed, runs, generator)."""
    data = _load_reference()
    return data["metadata"]


_cache: dict | None = None


def _load_reference() -> dict:
    global _cache
    if _cache is None:
        if not bold_reference_available():
            raise FileNotFoundError(
                f"reference data missing at {_BOLD_REFERENCE_PATH}; "
                f"regenerate with: python -m repro.experiments.published"
            )
        with _BOLD_REFERENCE_PATH.open() as fh:
            _cache = json.load(fh)
    return _cache


def generate_bold_reference(
    path: Path | None = None,
    task_counts=None,
    runs_per_n: Mapping[int, int] | None = None,
    seed: int = BOLD_REFERENCE_SEED,
    verbose: bool = True,
) -> dict:
    """Regenerate the BOLD reference values (the Hagerup-replica side).

    Uses the direct simulator with *per-task* sampling, the POST_HOC
    accounting, and per-n run counts from :data:`BOLD_REFERENCE_RUNS`.
    Writes JSON to ``path`` (default: the packaged data file) and returns
    the document.
    """
    from ..metrics.summary import summarize
    from ..metrics.wasted_time import OverheadModel
    from ..workloads.distributions import ExponentialWorkload, PerTaskSampling
    from .bold_experiments import (
        BOLD_MU,
        BOLD_PE_COUNTS,
        BOLD_TASK_COUNTS,
        BOLD_TECHNIQUES,
        _cell_seed,
        scheduling_params,
    )
    from .runner import RunTask, run_replicated

    if path is None:
        path = _BOLD_REFERENCE_PATH
    if task_counts is None:
        task_counts = BOLD_TASK_COUNTS
    if runs_per_n is None:
        runs_per_n = BOLD_REFERENCE_RUNS

    workload = PerTaskSampling(ExponentialWorkload(BOLD_MU))
    document = {
        "metadata": {
            "generator": "repro.directsim.DirectSimulator",
            "sampling": "per-task (PerTaskSampling, no Gamma shortcut)",
            "accounting": "post-hoc (idle average + h * chunks / p)",
            "seed": seed,
            "runs": {str(n): runs_per_n[n] for n in task_counts},
            "pe_counts": list(BOLD_PE_COUNTS),
            "note": (
                "Regenerated reference standing in for Hagerup (1997) "
                "Table I, which is unavailable offline; see DESIGN.md §3."
            ),
        },
        "experiments": {},
    }
    for n in task_counts:
        runs = runs_per_n[n]
        values: dict[str, list[float]] = {}
        stds: dict[str, list[float]] = {}
        for technique in BOLD_TECHNIQUES:
            means, devs = [], []
            for p in BOLD_PE_COUNTS:
                task = RunTask(
                    technique=technique.lower(),
                    params=scheduling_params(n, p),
                    workload=workload,
                    simulator="direct",
                    overhead_model=OverheadModel.POST_HOC,
                )
                results = run_replicated(
                    task, runs, campaign_seed=_cell_seed(seed, n, p, technique),
                    processes=1,
                )
                summary = summarize([r.average_wasted_time for r in results])
                means.append(summary.mean)
                devs.append(summary.std)
            values[technique] = means
            stds[technique] = devs
            if verbose:
                print(f"n={n} {technique}: {['%.2f' % v for v in means]}")
        document["experiments"][str(n)] = {
            "runs": runs,
            "values": values,
            "std": stds,
        }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(document, fh, indent=1)
    if verbose:
        print(f"wrote {path}")
    global _cache
    _cache = None
    return document


if __name__ == "__main__":  # pragma: no cover - manual regeneration entry
    generate_bold_reference()
