"""Replication campaign runner.

A campaign is a set of independent simulation runs (technique x parameters
x replication).  Runs are described by picklable :class:`RunTask` objects
so campaigns can be distributed over processes with
:mod:`multiprocessing` — the role the HPC cluster *taurus* played for the
original measurement campaign ("the individual measurements were
performed in parallel", Section V).  On a single-core machine the runner
degrades to a sequential loop.

Which simulator executes a task is *not* decided here: every task names a
registered backend (:mod:`repro.backends`), and dispatch resolves it
through the capability-checked fallback chain —
``resolve_backend(task)`` returns the backend that will actually run,
recording a :class:`~repro.backends.FallbackEvent` for every explicit
degradation (e.g. ``direct-batch`` -> ``direct`` for an adaptive
technique).  Campaign reports drain and surface those events.

Two throughput layers compose here:

* **Process-level parallelism** — tasks fan out over a persistent worker
  pool (created once, reused across calls) via ``imap_unordered`` with a
  tuned chunksize.  The pool size defaults to ``os.cpu_count()`` and can
  be overridden with the ``REPRO_WORKERS`` environment variable or the
  ``processes`` argument (CLI: ``repro-dls campaign --workers``).
* **Block-level batching** — backends declaring ``pooled_blocks``
  (``direct-batch``, ``msg-fast``) split whole replication sweeps into
  :class:`~repro.backends.ReplicationBlock` objects that amortise the
  chunk-schedule precomputation (and, for the batch kernel, sample chunk
  times in bulk) instead of paying one Python event loop per replication.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..backends import (
    BATCH_BLOCK_RUNS,
    FallbackEvent,
    ReplicationBlock,
    SimulationBackend,
    get_backend,
    peek_fallback_events,
    record_fallback,
    resolve_backend,
)
from ..cache import ResultCache, active_cache
from ..cache import suspended as cache_suspended
from ..core.params import SchedulingParams
from ..metrics.wasted_time import OverheadModel
from ..obs import core as obs_core
from ..obs import metrics as obs_metrics
from ..obs import progress as obs_progress
from ..obs.journal import RunJournal, active_journal
from ..results import RunResult
from ..simgrid.platform import Platform
from ..workloads.distributions import Workload

if TYPE_CHECKING:
    from ..scenarios import Scenario

__all__ = [
    "BATCH_BLOCK_RUNS",
    "RunTask",
    "expand_replications",
    "resolve_workers",
    "run_campaign",
    "run_replicated",
    "run_replicated_batch",
    "shutdown_pool",
]


@dataclass(frozen=True)
class RunTask:
    """One independent simulation run, fully described by data.

    ``simulator`` names a registered backend (see
    ``repro.backends.backend_names()``); execution resolves it through
    the capability-checked fallback chain.

    Seeding: ``seed_entropy`` holds the entropy of the run's
    ``numpy.random.SeedSequence``.  When it is left empty the seed is
    *derived deterministically from the task's own fields* (technique,
    params, workload, backend, platform, ...), so executing the same
    task twice always reproduces the same result — there is no silent
    fallback to OS entropy.  Distinct replications of one cell must
    therefore carry distinct explicit entropy (see
    :func:`expand_replications`).
    """

    technique: str
    params: SchedulingParams
    workload: Workload
    simulator: str = "msg"
    overhead_model: OverheadModel = OverheadModel.POST_HOC
    platform: Platform | None = None
    speeds: tuple[float, ...] | None = None
    start_times: tuple[float, ...] | None = None
    technique_kwargs: dict = field(default_factory=dict)
    seed_entropy: tuple[int, ...] = ()
    #: populate ``RunResult.chunk_log`` (timeline export); backends that
    #: cannot record one (direct-batch) degrade along their fallback
    #: chain with a recorded event.  Excluded from seed derivation, so a
    #: traced run reproduces the untraced run bit-for-bit.
    collect_chunk_log: bool = False
    #: perturbation scenario (``repro.scenarios.Scenario``) or ``None``
    #: for a clean system.  A set scenario enters seed derivation and
    #: the cache key (perturbed results differ from clean ones); the
    #: backend registry checks the fault/fluctuation capability axes and
    #: degrades with a recorded event where a backend lacks the models.
    scenario: "Scenario | None" = None

    def _platform_key(self) -> str:
        """A content-based key for the platform (stable across processes).

        The default ``object`` repr would embed a memory address, so the
        platform enters the seed key through its XML serialisation.
        """
        if self.platform is None:
            return "None"
        from ..simgrid.xmlio import platform_to_xml

        return platform_to_xml(self.platform)

    def derived_entropy(self) -> tuple[int, ...]:
        """Deterministic seed entropy from the task's own fields.

        Used when ``seed_entropy`` is empty; stable across processes and
        interpreter restarts (content hash, not ``hash()``).  The
        backend enters through its ``entropy_namespace`` — backends that
        are bit-identical to another (msg-fast to msg) share its
        namespace, so the equality is visible even for single un-seeded
        tasks.
        """
        parts = [
            self.technique,
            repr(self.params),
            repr(self.workload),
            get_backend(self.simulator).entropy_namespace,
            self.overhead_model.value,
            self._platform_key(),
            repr(self.speeds),
            repr(self.start_times),
            repr(sorted(self.technique_kwargs.items())),
        ]
        # Appended only when set, so every clean task keeps its
        # pre-scenario seed (and cache key) bit for bit.
        if self.scenario is not None:
            parts.append(repr(self.scenario))
        key = "|".join(parts)
        digest = hashlib.sha256(key.encode()).digest()
        return tuple(
            int.from_bytes(digest[i:i + 4], "big") for i in range(0, 16, 4)
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """The run's seed (explicit entropy, else derived from fields)."""
        entropy = self.seed_entropy or self.derived_entropy()
        return np.random.SeedSequence(entropy=list(entropy))

    def execute(self) -> RunResult:
        """Run this task on its resolved backend and return the result.

        While a result cache is active (:func:`repro.cache.set_cache` /
        ``--cache``), the run is served from the cache when its content
        key hits, and stored after simulating when it misses.
        """
        cache = active_cache()
        if cache is None:
            return _uncached_execute(self)
        return _cached_execute(cache, self)


def _uncached_execute(task: RunTask) -> RunResult:
    """Resolve and run ``task``, bypassing any active result cache."""
    backend = resolve_backend(task)
    return backend.run(task, task.seed_sequence())


def _cache_describe(task: RunTask, runs: int,
                    campaign_seed: int | None = None) -> dict:
    """The human-readable identity block of a task's cache records."""
    describe = {
        "technique": task.technique,
        "n": task.params.n,
        "p": task.params.p,
        "simulator": task.simulator,
        "runs": runs,
    }
    if campaign_seed is not None:
        describe["campaign_seed"] = campaign_seed
    return describe


def _stats_wall(results: Sequence[RunResult]) -> float:
    """Host-seconds of simulation in ``results`` (saved-time estimate)."""
    return sum(r.stats.wall_time for r in results if r.stats is not None)


def _task_fallbacks(task: RunTask) -> list:
    """Every recorded fallback event that names ``task``'s cell.

    The process-wide log deduplicates per (cell, hop), so re-resolving a
    cell records nothing new — a store must therefore scan the whole log
    (not just events after some baseline) or a cell resolved earlier in
    the process would cache an entry with empty fallback provenance.
    """
    key = SimulationBackend.task_key(task)
    return [e for e in peek_fallback_events() if e.task_key == key]


def _replay_entry_fallbacks(entry) -> None:
    """Re-record the fallback events stored in a cache entry's provenance.

    A hit never resolves a backend, so without replay a fully cached
    campaign would report zero degradations even though the stored
    results were produced by a fallback backend.  The process-wide log
    deduplicates, so repeated hits of one cell report once, exactly
    like repeated fresh resolutions.
    """
    for event in entry.provenance.get("fallbacks", ()):
        try:
            record_fallback(FallbackEvent(
                task_key=event["task"],
                requested=event["requested"],
                chosen=event["chosen"],
                reason=event["reason"],
                category=event.get("category", "capability"),
            ))
        except (KeyError, TypeError):  # foreign/legacy provenance shape
            continue


def _cached_execute(cache: ResultCache, task: RunTask) -> RunResult:
    """One run through the cache: serve a hit or simulate-and-store."""
    key = cache.task_key(task)
    describe = _cache_describe(task, runs=1)
    entry = cache.get(key, describe=describe)
    if entry is not None:
        cache.maybe_verify(
            key, entry, lambda: _fresh_results([task]), describe=describe
        )
        _replay_entry_fallbacks(entry)
        return entry.results[0]
    with cache_suspended():
        result = _uncached_execute(task)
    cache.put(
        key,
        [result],
        describe=describe,
        wall_time_s=_stats_wall([result]),
        backend=result.stats.backend if result.stats else "",
        fallbacks=_task_fallbacks(task),
        platform=task.platform,
    )
    return result


def _fresh_results(tasks: Sequence[RunTask]) -> list[RunResult]:
    """Cache-blind re-simulation (the ``--cache-verify`` recompute)."""
    with cache_suspended():
        return [_uncached_execute(task) for task in tasks]


def _execute_task(task: RunTask) -> RunResult:
    return task.execute()


def _execute_indexed(item: tuple[int, RunTask | ReplicationBlock]):
    index, task = item
    return index, task.execute()


def resolve_workers(processes: int | None = None) -> int:
    """The worker-pool size: argument > ``REPRO_WORKERS`` > CPU count.

    A ``REPRO_WORKERS`` value that is not an integer, or is zero or
    negative, fails with an error naming the variable — never a raw
    traceback deep inside the pool machinery, and never a silent clamp.
    """
    if processes is not None:
        return max(1, int(processes))
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if value <= 0:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            )
        return value
    return os.cpu_count() or 1


# -- persistent worker pool ----------------------------------------------
_POOL: multiprocessing.pool.Pool | None = None
_POOL_SIZE: int = 0
#: guards pool creation/teardown — the serve layer dispatches campaigns
#: from handler threads, so two threads must never race one another into
#: creating (or terminating) the shared pool
_POOL_LOCK = threading.Lock()
#: dispatches currently iterating over the pool (under _POOL_LOCK)
_POOL_ACTIVE: int = 0
#: True inside a pool worker process (set by the initializer); nested
#: campaign calls there must not fork a pool-within-a-pool
_IN_POOL_WORKER: bool = False


def _pool_worker_init() -> None:
    """Per-worker initialisation: drop any inherited active cache.

    Cache traffic is a parent-process concern (lookups partition the
    work before pooling; stores happen after results return), so a
    forked worker must not repeat lookups or flush session stats.  The
    worker is also marked as such, so any campaign entry point reached
    from inside a simulated task degrades to the serial loop instead of
    trying to fork a nested pool (daemonic pool workers cannot have
    children — without the guard that is a crash deep in
    ``multiprocessing``).
    """
    global _IN_POOL_WORKER

    from ..cache import deactivate_in_worker

    deactivate_in_worker()
    _IN_POOL_WORKER = True
    # a terminal Ctrl-C is the parent's to handle: it drains or
    # terminates the pool deliberately, so workers must not die mid-task
    # with their own KeyboardInterrupt tracebacks (the long-running
    # serve process makes this the *normal* shutdown path)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def in_pool_worker() -> bool:
    """True when the calling process is one of the shared pool's workers."""
    return _IN_POOL_WORKER


def _usable_workers(processes: int | None) -> int:
    """The parallelism execution may actually use.

    Inside a pool worker the answer is always 1 — a nested campaign
    call runs serially in-process rather than forking a pool inside
    the pool.
    """
    if _IN_POOL_WORKER:
        return 1
    return resolve_workers(processes)


def _get_pool(processes: int) -> multiprocessing.pool.Pool:
    """The shared pool, (re)created only when the size changes.

    Caller must hold ``_POOL_LOCK``.  While another thread is actively
    dispatching over the pool (``_POOL_ACTIVE > 0``) a differing size
    request reuses the existing pool instead of terminating it out from
    under the other thread — concurrent advisor queries share one pool,
    whatever sizes they ask for.
    """
    global _POOL, _POOL_SIZE
    if _IN_POOL_WORKER:
        raise RuntimeError(
            "cannot create the shared process pool inside one of its own "
            "workers — nested campaign calls must run serially"
        )
    if _POOL is not None and _POOL_SIZE != processes and _POOL_ACTIVE == 0:
        _shutdown_pool_locked()
    if _POOL is None:
        _POOL = multiprocessing.Pool(
            processes=processes, initializer=_pool_worker_init
        )
        _POOL_SIZE = processes
    return _POOL


def _shutdown_pool_locked() -> None:
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_SIZE = 0


def shutdown_pool() -> None:
    """Terminate the persistent pool (tests; end of process via atexit)."""
    with _POOL_LOCK:
        _shutdown_pool_locked()


atexit.register(shutdown_pool)


def _advance_progress(
    tracker: obs_progress.ProgressTracker | None,
    result: "RunResult | list[RunResult]",
) -> None:
    """Count one completed task (or block of replications) as progress."""
    if tracker is None:
        return
    group = result if isinstance(result, list) else [result]
    events = sum(r.stats.events for r in group if r.stats is not None)
    tracker.advance(len(group), events)


def _run_pooled(items: Sequence[RunTask | ReplicationBlock],
                processes: int,
                tracker: obs_progress.ProgressTracker | None = None) -> list:
    """Execute items (in order) over the persistent pool."""
    global _POOL_ACTIVE
    with _POOL_LOCK:
        pool = _get_pool(processes)
        _POOL_ACTIVE += 1
    try:
        chunksize = max(1, len(items) // (processes * 4))
        out: list = [None] * len(items)
        for index, result in pool.imap_unordered(
            _execute_indexed, list(enumerate(items)), chunksize=chunksize
        ):
            out[index] = result
            _advance_progress(tracker, result)
        return out
    finally:
        with _POOL_LOCK:
            _POOL_ACTIVE -= 1


def expand_replications(task: RunTask, runs: int,
                        campaign_seed: int | None) -> list[RunTask]:
    """Clone ``task`` into ``runs`` tasks with independent spawned seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(campaign_seed).spawn(runs)
    out = []
    for seq in seeds:
        entropy = tuple(int(v) for v in np.atleast_1d(seq.entropy)) + tuple(
            seq.spawn_key
        )
        out.append(
            RunTask(
                **{
                    **task.__dict__,
                    "seed_entropy": entropy,
                }
            )
        )
    return out


# -- run journal ----------------------------------------------------------
def _journal_task_record(
    task: RunTask,
    results: Sequence[RunResult],
    campaign_seed: int | None = None,
) -> dict:
    """One JSONL ``task`` record: the task's identity plus aggregated
    :class:`~repro.obs.stats.RunStats` over all its replications."""
    stats = [r.stats for r in results if r.stats is not None]
    backend = next((s.backend for s in stats if s.backend), task.simulator)
    record = {
        "kind": "task",
        "technique": task.technique,
        "n": task.params.n,
        "p": task.params.p,
        "h": task.params.h,
        "requested": task.simulator,
        "backend": backend,
        "runs": len(results),
        "wall_time_s": sum(s.wall_time for s in stats),
        "events": sum(s.events for s in stats),
        "fast_path_runs": sum(1 for s in stats if s.fast_path),
        "seed_entropy": list(task.seed_entropy) or None,
    }
    if task.scenario is not None:
        record["scenario"] = task.scenario.name
        record["lost_chunks"] = sum(
            int(r.extras.get("lost_chunks", 0)) for r in results
        )
        record["lost_tasks"] = sum(
            int(r.extras.get("lost_tasks", 0)) for r in results
        )
    if campaign_seed is not None:
        record["campaign_seed"] = campaign_seed
    return record


def _journal_new_fallbacks(journal: RunJournal, seen_before: int) -> None:
    """Journal the fallback events recorded since ``seen_before``.

    The process-wide fallback log is peeked, not drained, so campaign
    reports still surface the same events afterwards.
    """
    for event in peek_fallback_events()[seen_before:]:
        journal.write({"kind": "fallback", **event.to_json()})


def _execute_tasks(
    tasks: Sequence[RunTask],
    processes: int | None,
    tracker: obs_progress.ProgressTracker | None = None,
) -> list[RunResult]:
    """Resolve every task in the parent, then execute (pooled or serial)."""
    for task in tasks:
        resolve_backend(task)
    processes = _usable_workers(processes)
    if processes <= 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            result = task.execute()
            results.append(result)
            _advance_progress(tracker, result)
        return results
    return _run_pooled(tasks, processes, tracker)


def _record_campaign_metrics(
    results: Sequence[RunResult], fallbacks_before: int
) -> None:
    """Fold results into the active metrics registry, if one is on."""
    registry = obs_metrics.active_registry()
    if registry is not None:
        obs_metrics.record_results(
            registry,
            results,
            new_fallbacks=len(peek_fallback_events()) - fallbacks_before,
        )


def run_campaign(tasks: Sequence[RunTask],
                 processes: int | None = None) -> list[RunResult]:
    """Execute tasks, parallelising over processes when it helps.

    Every task's backend is resolved in the parent process first, so
    unresolvable tasks fail fast and every capability degradation is
    recorded here (worker processes keep their own, discarded, fallback
    logs).  ``processes`` defaults to ``REPRO_WORKERS`` or the CPU
    count; with one process (or one task) the loop stays in-process,
    avoiding pickling overhead.  Results are returned in task order.

    While a result cache is active (:func:`repro.cache.set_cache` /
    ``--cache``), every task is looked up in the parent process first:
    hits are served from disk (one ``cache`` journal record each) and
    only the misses are simulated — then stored, so the next campaign
    sharing the cache skips them too.

    When a run journal is active (:func:`repro.obs.set_journal`), one
    ``task`` record is written per freshly simulated task, plus a
    ``fallback`` record per new capability degradation observed while
    resolving.  While a progress sink is active
    (:func:`repro.obs.set_progress`, or the journal itself), throttled
    heartbeats report tasks done/total, events/s, ETA and fallback
    count; while a metrics registry is active
    (:func:`repro.obs.set_registry`), freshly simulated results fold
    into its campaign histograms (cache traffic feeds the dedicated
    ``cache_*`` counters instead).
    """
    journal = active_journal()
    cache = active_cache()
    fallbacks_before = len(peek_fallback_events())
    results: list[RunResult | None] = [None] * len(tasks)
    miss_indices = list(range(len(tasks)))
    if cache is not None:
        miss_indices = []
        for index, task in enumerate(tasks):
            key = cache.task_key(task)
            describe = _cache_describe(task, runs=1)
            entry = cache.get(key, describe=describe)
            if entry is None:
                miss_indices.append(index)
                continue
            cache.maybe_verify(
                key, entry,
                lambda task=task: _fresh_results([task]),
                describe=describe,
            )
            _replay_entry_fallbacks(entry)
            results[index] = entry.results[0]
    miss_tasks = [tasks[i] for i in miss_indices]
    tracker = obs_progress.campaign_tracker(
        total=len(miss_tasks), label="campaign", journal=journal,
        fallback_baseline=fallbacks_before,
    ) if miss_tasks else None
    with obs_core.span("run_campaign", tasks=len(tasks)):
        with cache_suspended():
            fresh = _execute_tasks(miss_tasks, processes, tracker)
    if tracker is not None:
        tracker.finish()
    for index, result in zip(miss_indices, fresh):
        results[index] = result
    if cache is not None:
        for index, result in zip(miss_indices, fresh):
            task = tasks[index]
            cache.put(
                cache.task_key(task),
                [result],
                describe=_cache_describe(task, runs=1),
                wall_time_s=_stats_wall([result]),
                backend=result.stats.backend if result.stats else "",
                fallbacks=_task_fallbacks(task),
                platform=task.platform,
            )
    _record_campaign_metrics(fresh, fallbacks_before)
    if journal is not None:
        _journal_new_fallbacks(journal, fallbacks_before)
        for index, result in zip(miss_indices, fresh):
            journal.write(_journal_task_record(tasks[index], [result]))
    return results


def run_replicated(task: RunTask, runs: int, campaign_seed: int | None = None,
                   processes: int | None = None) -> list[RunResult]:
    """Convenience: expand replications of one task and run them.

    The task's backend is resolved once through the registry's fallback
    chain (recording :class:`~repro.backends.FallbackEvent` objects for
    any degradation).  Backends that support pooled block execution
    (``direct-batch``, ``msg-fast``) split the replications into blocks
    of :data:`BATCH_BLOCK_RUNS` (deterministic in the campaign seed,
    independent of the worker count) that each amortise one
    chunk-schedule precomputation; everything else takes the per-run
    scalar path.

    While a result cache is active, the *whole sweep* is one cache
    entry keyed by (task identity, ``runs``, ``campaign_seed``): a hit
    returns every replication from disk (one ``cache`` journal record,
    no ``task`` record) and replays the entry's stored fallback events
    so degradation reporting stays faithful; a miss simulates as usual
    and stores the sweep for the next campaign.

    When a run journal is active, a freshly simulated sweep is one
    ``task`` record (stats aggregated over all replications), plus a
    ``fallback`` record per new degradation.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    cache = active_cache()
    if cache is None:
        return _run_replicated_fresh(task, runs, campaign_seed, processes)
    key = cache.sweep_key(task, runs, campaign_seed)
    describe = _cache_describe(task, runs, campaign_seed)
    entry = cache.get(key, describe=describe)
    if entry is not None:
        cache.maybe_verify(
            key,
            entry,
            lambda: _fresh_sweep(task, runs, campaign_seed, processes),
            describe=describe,
        )
        _replay_entry_fallbacks(entry)
        return list(entry.results)
    with cache_suspended():
        results = _run_replicated_fresh(task, runs, campaign_seed, processes)
    backend = next(
        (r.stats.backend for r in results if r.stats is not None), ""
    )
    cache.put(
        key,
        results,
        kind="sweep",
        describe=describe,
        wall_time_s=_stats_wall(results),
        backend=backend,
        fallbacks=_task_fallbacks(task),
        platform=task.platform,
    )
    return results


def _fresh_sweep(task: RunTask, runs: int, campaign_seed: int | None,
                 processes: int | None) -> list[RunResult]:
    """Cache-blind sweep re-simulation (the ``--cache-verify`` recompute)."""
    with cache_suspended():
        return _run_replicated_fresh(task, runs, campaign_seed, processes)


def _run_replicated_fresh(
    task: RunTask, runs: int, campaign_seed: int | None,
    processes: int | None,
) -> list[RunResult]:
    """Simulate a replication sweep (the pre-cache ``run_replicated``)."""
    journal = active_journal()
    fallbacks_before = len(peek_fallback_events())
    backend = resolve_backend(task)
    tracker = obs_progress.campaign_tracker(
        total=runs, label=f"{task.technique} x{runs}", journal=journal,
        fallback_baseline=fallbacks_before,
    )
    with obs_core.span(
        "run_replicated", technique=task.technique, runs=runs
    ):
        blocks = backend.replication_blocks(task, runs, campaign_seed)
        if blocks is not None:
            processes = _usable_workers(processes)
            if processes <= 1 or len(blocks) <= 1:
                block_results = []
                for block in blocks:
                    group = block.execute()
                    block_results.append(group)
                    _advance_progress(tracker, group)
            else:
                block_results = _run_pooled(blocks, processes, tracker)
            results = [r for group in block_results for r in group]
        else:
            results = _execute_tasks(
                expand_replications(task, runs, campaign_seed),
                processes,
                tracker,
            )
    if tracker is not None:
        tracker.finish()
    _record_campaign_metrics(results, fallbacks_before)
    if journal is not None:
        _journal_new_fallbacks(journal, fallbacks_before)
        journal.write(
            _journal_task_record(task, results, campaign_seed=campaign_seed)
        )
    return results


def run_replicated_batch(
    sweeps: Sequence[tuple[RunTask, int, int | None]],
    processes: int | None = None,
    label: str = "batch",
) -> list[list[RunResult]]:
    """Execute many replication sweeps with *one* pooled dispatch.

    ``sweeps`` is a sequence of ``(task, runs, campaign_seed)`` triples
    — e.g. every candidate technique of one advisor query, or the
    union of several concurrent queries.  Each sweep is bit-identical
    to :func:`run_replicated` on the same triple (same cache keys, same
    seeds, same block partitioning), but the execution items of *all*
    cache misses — replication blocks for pooled-block backends,
    expanded per-run tasks otherwise — fan out over the shared process
    pool in a single ``imap`` pass, amortising pool dispatch across
    the whole batch instead of paying one round-trip per sweep.

    Cache, journal and metrics semantics match ``run_replicated``
    sweep-for-sweep: one sweep cache entry per miss (hits replay their
    stored fallback events), one journal ``task`` record per freshly
    simulated sweep, fresh results folded into the active metrics
    registry.
    """
    journal = active_journal()
    cache = active_cache()
    fallbacks_before = len(peek_fallback_events())
    results: list[list[RunResult] | None] = [None] * len(sweeps)
    misses: list[int] = []
    for index, (task, runs, campaign_seed) in enumerate(sweeps):
        if runs < 1:
            raise ValueError("runs must be >= 1")
        if cache is None:
            misses.append(index)
            continue
        key = cache.sweep_key(task, runs, campaign_seed)
        describe = _cache_describe(task, runs, campaign_seed)
        entry = cache.get(key, describe=describe)
        if entry is None:
            misses.append(index)
            continue
        cache.maybe_verify(
            key,
            entry,
            lambda task=task, runs=runs, seed=campaign_seed: _fresh_sweep(
                task, runs, seed, processes
            ),
            describe=describe,
        )
        _replay_entry_fallbacks(entry)
        results[index] = list(entry.results)
    # Per-sweep items stay contiguous and ordered, and _run_pooled
    # returns results in item order, so regrouping below reproduces the
    # serial run_replicated ordering bit for bit.
    items: list[RunTask | ReplicationBlock] = []
    owners: list[tuple[int, bool]] = []  # (sweep index, item is a block)
    for index in misses:
        task, runs, campaign_seed = sweeps[index]
        backend = resolve_backend(task)
        blocks = backend.replication_blocks(task, runs, campaign_seed)
        if blocks is not None:
            items.extend(blocks)
            owners.extend((index, True) for _ in blocks)
        else:
            expanded = expand_replications(task, runs, campaign_seed)
            items.extend(expanded)
            owners.extend((index, False) for _ in expanded)
    total_runs = sum(sweeps[index][1] for index in misses)
    tracker = obs_progress.campaign_tracker(
        total=total_runs, label=f"{label} x{len(misses)}", journal=journal,
        fallback_baseline=fallbacks_before,
    ) if items else None
    with obs_core.span(
        "run_replicated_batch", sweeps=len(sweeps), items=len(items)
    ):
        with cache_suspended():
            workers = _usable_workers(processes)
            if workers <= 1 or len(items) <= 1:
                outputs: list = []
                for item in items:
                    output = item.execute()
                    outputs.append(output)
                    _advance_progress(tracker, output)
            else:
                outputs = _run_pooled(items, workers, tracker)
    if tracker is not None:
        tracker.finish()
    fresh_groups: dict[int, list[RunResult]] = {i: [] for i in misses}
    for (index, is_block), output in zip(owners, outputs):
        if is_block:
            fresh_groups[index].extend(output)
        else:
            fresh_groups[index].append(output)
    all_fresh: list[RunResult] = []
    for index in misses:
        group = fresh_groups[index]
        results[index] = group
        all_fresh.extend(group)
        if cache is not None:
            task, runs, campaign_seed = sweeps[index]
            backend_name = next(
                (r.stats.backend for r in group if r.stats is not None), ""
            )
            cache.put(
                cache.sweep_key(task, runs, campaign_seed),
                group,
                kind="sweep",
                describe=_cache_describe(task, runs, campaign_seed),
                wall_time_s=_stats_wall(group),
                backend=backend_name,
                fallbacks=_task_fallbacks(task),
                platform=task.platform,
            )
    _record_campaign_metrics(all_fresh, fallbacks_before)
    if journal is not None:
        _journal_new_fallbacks(journal, fallbacks_before)
        for index in misses:
            task, runs, campaign_seed = sweeps[index]
            journal.write(_journal_task_record(
                task, results[index], campaign_seed=campaign_seed
            ))
    return results
