"""Replication campaign runner.

A campaign is a set of independent simulation runs (technique x parameters
x replication).  Runs are described by picklable :class:`RunTask` objects
so campaigns can be distributed over processes with
:mod:`multiprocessing` — the role the HPC cluster *taurus* played for the
original measurement campaign ("the individual measurements were
performed in parallel", Section V).  On a single-core machine the runner
degrades to a sequential loop.

Two throughput layers compose here:

* **Process-level parallelism** — tasks fan out over a persistent worker
  pool (created once, reused across calls) via ``imap_unordered`` with a
  tuned chunksize.  The pool size defaults to ``os.cpu_count()`` and can
  be overridden with the ``REPRO_WORKERS`` environment variable or the
  ``processes`` argument (CLI: ``repro-dls campaign --workers``).
* **Batch-level vectorisation** — tasks with ``simulator="direct-batch"``
  route whole replication blocks through the vectorized kernel
  (:mod:`repro.directsim.batch`) instead of one Python event loop per
  replication, falling back to the scalar direct simulator for adaptive
  techniques and worker-dependent schedules.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..core.params import SchedulingParams
from ..core.registry import get_technique
from ..directsim import DirectSimulator
from ..metrics.wasted_time import OverheadModel
from ..results import RunResult
from ..simgrid.fastpath import FastMasterWorkerSimulation
from ..simgrid.masterworker import MasterWorkerConfig, MasterWorkerSimulation
from ..simgrid.platform import Platform
from ..workloads.distributions import Workload

SimulatorKind = Literal["msg", "msg-fast", "direct", "direct-batch"]

#: replications per batched pool block.  Fixed (instead of derived from
#: the worker count) so campaign results are deterministic in
#: (task, runs, campaign_seed) regardless of how many processes execute.
BATCH_BLOCK_RUNS = 64


@dataclass(frozen=True)
class RunTask:
    """One independent simulation run, fully described by data.

    Seeding: ``seed_entropy`` holds the entropy of the run's
    ``numpy.random.SeedSequence``.  When it is left empty the seed is
    *derived deterministically from the task's own fields* (technique,
    params, workload, simulator, ...), so executing the same task twice
    always reproduces the same result — there is no silent fallback to
    OS entropy.  Distinct replications of one cell must therefore carry
    distinct explicit entropy (see :func:`expand_replications`).
    """

    technique: str
    params: SchedulingParams
    workload: Workload
    simulator: SimulatorKind = "msg"
    overhead_model: OverheadModel = OverheadModel.POST_HOC
    platform: Platform | None = None
    speeds: tuple[float, ...] | None = None
    start_times: tuple[float, ...] | None = None
    technique_kwargs: dict = field(default_factory=dict)
    seed_entropy: tuple[int, ...] = ()

    def derived_entropy(self) -> tuple[int, ...]:
        """Deterministic seed entropy from the task's own fields.

        Used when ``seed_entropy`` is empty; stable across processes and
        interpreter restarts (content hash, not ``hash()``).
        """
        key = "|".join(
            (
                self.technique,
                repr(self.params),
                repr(self.workload),
                # msg-fast is bit-identical to msg; give it the same
                # derived seeds so the equality is visible even for
                # single un-seeded tasks.
                "msg" if self.simulator == "msg-fast" else self.simulator,
                self.overhead_model.value,
                repr(self.speeds),
                repr(self.start_times),
                repr(sorted(self.technique_kwargs.items())),
            )
        )
        digest = hashlib.sha256(key.encode()).digest()
        return tuple(
            int.from_bytes(digest[i:i + 4], "big") for i in range(0, 16, 4)
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """The run's seed (explicit entropy, else derived from fields)."""
        entropy = self.seed_entropy or self.derived_entropy()
        return np.random.SeedSequence(entropy=list(entropy))

    def execute(self) -> RunResult:
        """Run this task and return its result."""
        factory = lambda params: get_technique(self.technique)(
            params, **self.technique_kwargs
        )
        seed = self.seed_sequence()
        if self.simulator == "direct-batch":
            from ..directsim.batch import BatchDirectSimulator, batch_supported

            if batch_supported(self.technique):
                sim = BatchDirectSimulator(
                    self.params,
                    self.workload,
                    overhead_model=self.overhead_model,
                    speeds=list(self.speeds) if self.speeds else None,
                    start_times=(
                        list(self.start_times) if self.start_times else None
                    ),
                )
                return sim.run_batch(factory, 1, seed)[0]
            # Adaptive / worker-dependent technique: scalar fallback.
        if self.simulator in ("direct", "direct-batch"):
            sim = DirectSimulator(
                self.params,
                self.workload,
                overhead_model=self.overhead_model,
                speeds=list(self.speeds) if self.speeds else None,
                start_times=list(self.start_times) if self.start_times else None,
            )
            return sim.run(factory, seed)
        config = MasterWorkerConfig(
            overhead_model=self.overhead_model,
            start_times=list(self.start_times) if self.start_times else None,
        )
        sim_cls = (
            FastMasterWorkerSimulation
            if self.simulator == "msg-fast"
            else MasterWorkerSimulation
        )
        sim = sim_cls(
            self.params, self.workload, platform=self.platform, config=config
        )
        return sim.run(factory, seed)


@dataclass(frozen=True)
class BatchRunBlock:
    """A block of replications of one cell, executed by the batch kernel.

    Picklable, so blocks distribute over the process pool just like
    individual :class:`RunTask` objects — but each block amortises the
    schedule precomputation and samples its chunk times in bulk.
    """

    task: RunTask
    runs: int
    seed_entropy: tuple[int, ...]

    def execute(self) -> list[RunResult]:
        from ..directsim.batch import BatchDirectSimulator

        task = self.task
        factory = lambda params: get_technique(task.technique)(
            params, **task.technique_kwargs
        )
        sim = BatchDirectSimulator(
            task.params,
            task.workload,
            overhead_model=task.overhead_model,
            speeds=list(task.speeds) if task.speeds else None,
            start_times=list(task.start_times) if task.start_times else None,
        )
        seed = np.random.SeedSequence(entropy=list(self.seed_entropy))
        return sim.run_batch(factory, self.runs, seed)


@dataclass(frozen=True)
class MsgRunBlock:
    """A block of MSG fast-path replications of one cell.

    Carries the *per-run* seed entropies derived exactly as
    :func:`expand_replications` derives them, so a blocked pooled
    campaign is bit-identical to the serial per-task path — the block
    partitioning only amortises the chunk-schedule precomputation
    (``FastMasterWorkerSimulation.run_many``) and pickling overhead.
    """

    task: RunTask
    seed_entropies: tuple[tuple[int, ...], ...]

    def execute(self) -> list[RunResult]:
        task = self.task
        factory = lambda params: get_technique(task.technique)(
            params, **task.technique_kwargs
        )
        config = MasterWorkerConfig(
            overhead_model=task.overhead_model,
            start_times=list(task.start_times) if task.start_times else None,
        )
        sim = FastMasterWorkerSimulation(
            task.params, task.workload, platform=task.platform, config=config
        )
        seeds = [
            np.random.SeedSequence(entropy=list(entropy))
            for entropy in self.seed_entropies
        ]
        return sim.run_many(factory, seeds)


def _execute_task(task: RunTask) -> RunResult:
    return task.execute()


def _execute_indexed(item: tuple[int, RunTask | BatchRunBlock | MsgRunBlock]):
    index, task = item
    return index, task.execute()


def resolve_workers(processes: int | None = None) -> int:
    """The worker-pool size: argument > ``REPRO_WORKERS`` > CPU count."""
    if processes is not None:
        return max(1, int(processes))
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


# -- persistent worker pool ----------------------------------------------
_POOL: multiprocessing.pool.Pool | None = None
_POOL_SIZE: int = 0


def _get_pool(processes: int) -> multiprocessing.pool.Pool:
    """The shared pool, (re)created only when the size changes."""
    global _POOL, _POOL_SIZE
    if _POOL is not None and _POOL_SIZE != processes:
        shutdown_pool()
    if _POOL is None:
        _POOL = multiprocessing.Pool(processes=processes)
        _POOL_SIZE = processes
    return _POOL


def shutdown_pool() -> None:
    """Terminate the persistent pool (tests; end of process via atexit)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_pool)


def _run_pooled(items: Sequence[RunTask | BatchRunBlock | MsgRunBlock],
                processes: int) -> list:
    """Execute items (in order) over the persistent pool."""
    pool = _get_pool(processes)
    chunksize = max(1, len(items) // (processes * 4))
    out: list = [None] * len(items)
    for index, result in pool.imap_unordered(
        _execute_indexed, list(enumerate(items)), chunksize=chunksize
    ):
        out[index] = result
    return out


def expand_replications(task: RunTask, runs: int,
                        campaign_seed: int | None) -> list[RunTask]:
    """Clone ``task`` into ``runs`` tasks with independent spawned seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(campaign_seed).spawn(runs)
    out = []
    for seq in seeds:
        entropy = tuple(int(v) for v in np.atleast_1d(seq.entropy)) + tuple(
            seq.spawn_key
        )
        out.append(
            RunTask(
                **{
                    **task.__dict__,
                    "seed_entropy": entropy,
                }
            )
        )
    return out


def run_campaign(tasks: Sequence[RunTask],
                 processes: int | None = None) -> list[RunResult]:
    """Execute tasks, parallelising over processes when it helps.

    ``processes`` defaults to ``REPRO_WORKERS`` or the CPU count; with
    one process (or one task) the loop stays in-process, avoiding
    pickling overhead.  Results are returned in task order.
    """
    processes = resolve_workers(processes)
    if processes <= 1 or len(tasks) <= 1:
        return [task.execute() for task in tasks]
    return _run_pooled(tasks, processes)


def _batch_blocks(task: RunTask, runs: int,
                  campaign_seed: int | None) -> list[BatchRunBlock] | None:
    """Split ``runs`` replications into batch-kernel blocks, or None when
    the task cannot take the batched path."""
    from ..directsim.batch import batch_supported

    if task.simulator != "direct-batch":
        return None
    if not batch_supported(task.technique):
        return None
    counts = [BATCH_BLOCK_RUNS] * (runs // BATCH_BLOCK_RUNS)
    if runs % BATCH_BLOCK_RUNS:
        counts.append(runs % BATCH_BLOCK_RUNS)
    seeds = np.random.SeedSequence(campaign_seed).spawn(len(counts))
    blocks = []
    for count, seq in zip(counts, seeds):
        entropy = tuple(int(v) for v in np.atleast_1d(seq.entropy)) + tuple(
            seq.spawn_key
        )
        blocks.append(BatchRunBlock(task=task, runs=count,
                                    seed_entropy=entropy))
    return blocks


def _msg_blocks(task: RunTask, runs: int,
                campaign_seed: int | None) -> list[MsgRunBlock] | None:
    """Split ``runs`` msg-fast replications into pooled blocks, or None.

    Per-run seed entropies are derived exactly as
    :func:`expand_replications` derives them, then grouped into
    consecutive blocks of :data:`BATCH_BLOCK_RUNS`; the grouping cannot
    affect results because every run keeps its own seed.
    """
    if task.simulator != "msg-fast":
        return None
    seeds = np.random.SeedSequence(campaign_seed).spawn(runs)
    entropies = [
        tuple(int(v) for v in np.atleast_1d(seq.entropy)) + tuple(
            seq.spawn_key
        )
        for seq in seeds
    ]
    return [
        MsgRunBlock(
            task=task,
            seed_entropies=tuple(entropies[i:i + BATCH_BLOCK_RUNS]),
        )
        for i in range(0, runs, BATCH_BLOCK_RUNS)
    ]


def run_replicated(task: RunTask, runs: int, campaign_seed: int | None = None,
                   processes: int | None = None) -> list[RunResult]:
    """Convenience: expand replications of one task and run them.

    For ``simulator="direct-batch"`` tasks whose technique supports the
    vectorized kernel, replications execute in blocks of
    :data:`BATCH_BLOCK_RUNS` (deterministic in the campaign seed,
    independent of the worker count); ``simulator="msg-fast"`` tasks
    similarly execute in blocks that share one chunk-schedule
    precomputation per block.  Everything else takes the per-run scalar
    path.
    """
    blocks = _batch_blocks(task, runs, campaign_seed)
    if blocks is None:
        blocks = _msg_blocks(task, runs, campaign_seed)
    if blocks is not None:
        processes = resolve_workers(processes)
        if processes <= 1 or len(blocks) <= 1:
            results = [block.execute() for block in blocks]
        else:
            results = _run_pooled(blocks, processes)
        return [r for block_results in results for r in block_results]
    return run_campaign(
        expand_replications(task, runs, campaign_seed), processes=processes
    )
