"""Replication campaign runner.

A campaign is a set of independent simulation runs (technique x parameters
x replication).  Runs are described by picklable :class:`RunTask` objects
so campaigns can be distributed over processes with
:mod:`multiprocessing` — the role the HPC cluster *taurus* played for the
original measurement campaign ("the individual measurements were
performed in parallel", Section V).  On a single-core machine the runner
degrades to a sequential loop.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..core.params import SchedulingParams
from ..core.registry import get_technique
from ..directsim import DirectSimulator
from ..metrics.wasted_time import OverheadModel
from ..results import RunResult
from ..simgrid.masterworker import MasterWorkerConfig, MasterWorkerSimulation
from ..simgrid.platform import Platform
from ..workloads.distributions import Workload

SimulatorKind = Literal["msg", "direct"]


@dataclass(frozen=True)
class RunTask:
    """One independent simulation run, fully described by data."""

    technique: str
    params: SchedulingParams
    workload: Workload
    simulator: SimulatorKind = "msg"
    overhead_model: OverheadModel = OverheadModel.POST_HOC
    platform: Platform | None = None
    speeds: tuple[float, ...] | None = None
    start_times: tuple[float, ...] | None = None
    technique_kwargs: dict = field(default_factory=dict)
    seed_entropy: tuple[int, ...] = ()

    def execute(self) -> RunResult:
        """Run this task and return its result."""
        factory = lambda params: get_technique(self.technique)(
            params, **self.technique_kwargs
        )
        seed = (
            np.random.SeedSequence(entropy=list(self.seed_entropy))
            if self.seed_entropy
            else None
        )
        if self.simulator == "direct":
            sim = DirectSimulator(
                self.params,
                self.workload,
                overhead_model=self.overhead_model,
                speeds=list(self.speeds) if self.speeds else None,
                start_times=list(self.start_times) if self.start_times else None,
            )
            return sim.run(factory, seed)
        config = MasterWorkerConfig(
            overhead_model=self.overhead_model,
            start_times=list(self.start_times) if self.start_times else None,
        )
        sim = MasterWorkerSimulation(
            self.params, self.workload, platform=self.platform, config=config
        )
        return sim.run(factory, seed)


def _execute_task(task: RunTask) -> RunResult:
    return task.execute()


def expand_replications(task: RunTask, runs: int,
                        campaign_seed: int | None) -> list[RunTask]:
    """Clone ``task`` into ``runs`` tasks with independent spawned seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(campaign_seed).spawn(runs)
    out = []
    for seq in seeds:
        entropy = tuple(int(v) for v in np.atleast_1d(seq.entropy)) + tuple(
            seq.spawn_key
        )
        out.append(
            RunTask(
                **{
                    **task.__dict__,
                    "seed_entropy": entropy,
                }
            )
        )
    return out


def run_campaign(tasks: Sequence[RunTask],
                 processes: int | None = None) -> list[RunResult]:
    """Execute tasks, parallelising over processes when it helps.

    ``processes`` defaults to the CPU count; with one process (or one
    task) the loop stays in-process, avoiding pickling overhead.
    """
    if processes is None:
        processes = os.cpu_count() or 1
    if processes <= 1 or len(tasks) <= 1:
        return [task.execute() for task in tasks]
    with multiprocessing.Pool(processes=processes) as pool:
        return pool.map(_execute_task, tasks, chunksize=1)


def run_replicated(task: RunTask, runs: int, campaign_seed: int | None = None,
                   processes: int | None = None) -> list[RunResult]:
    """Convenience: expand replications of one task and run them."""
    return run_campaign(
        expand_replications(task, runs, campaign_seed), processes=processes
    )
