"""Scalability study — the paper's companion dimension (ref [1]).

Balasubramaniam et al. (IPDPS-W 2012) studied the scalability of the DLS
techniques via discrete event simulation: how efficiency behaves as the
PE count grows under weak scaling (constant work per PE) and strong
scaling (constant total work).  The paper under reproduction cites this
as the first of the verified implementation's use cases, so the harness
keeps the study runnable.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from ..backends import get_backend
from ..core.params import SchedulingParams
from ..directsim import OverheadModel
from ..workloads.distributions import ExponentialWorkload, Workload


@dataclass
class ScalingResult:
    """Efficiency and wasted time across a PE sweep."""

    mode: str                      # "strong" or "weak"
    pe_counts: tuple[int, ...]
    tasks_at: dict[int, int]       # p -> n used at that point
    efficiency: dict[str, list[float]] = field(default_factory=dict)
    wasted: dict[str, list[float]] = field(default_factory=dict)


def run_scaling_study(
    mode: str = "strong",
    techniques: Sequence[str] = ("stat", "ss", "gss", "tss", "fac2", "bold"),
    pe_counts: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    n_total: int = 16384,
    tasks_per_pe: int = 256,
    h: float = 0.05,
    workload: Workload | None = None,
    runs: int = 5,
    seed: int = 2012,
    simulator: str = "direct",
) -> ScalingResult:
    """Run a strong- or weak-scaling sweep on the direct simulator.

    Strong scaling keeps ``n_total`` fixed; weak scaling keeps
    ``tasks_per_pe`` per PE.  Efficiency is speedup / p (1.0 = perfect).
    The SERIALIZED_MASTER overhead model is used so scheduling operations
    contend at the master — the contention that actually limits SS's
    scalability; post-hoc accounting would make SS look free.

    Runs execute through :class:`~repro.experiments.runner.RunTask`
    (per-run integer seeds reproduce the historical direct-call
    outputs), so an active result cache serves repeats.
    """
    from .runner import RunTask

    if mode not in ("strong", "weak"):
        raise ValueError(f"mode must be 'strong' or 'weak', got {mode!r}")
    get_backend(simulator)  # fail fast on unknown backends
    workload = workload or ExponentialWorkload(1.0)
    result = ScalingResult(
        mode=mode,
        pe_counts=tuple(pe_counts),
        tasks_at={},
    )
    for technique in techniques:
        effs: list[float] = []
        wts: list[float] = []
        for p in pe_counts:
            n = n_total if mode == "strong" else tasks_per_pe * p
            result.tasks_at[p] = n
            params = SchedulingParams(
                n=n, p=p, h=h, mu=workload.mean,
                sigma=workload.std,
            )
            samples = [
                RunTask(
                    technique=technique,
                    params=params,
                    workload=workload,
                    simulator=simulator,
                    overhead_model=OverheadModel.SERIALIZED_MASTER,
                    seed_entropy=(seed * 1000 + p * 10 + i,),
                ).execute()
                for i in range(runs)
            ]
            effs.append(statistics.mean(r.efficiency for r in samples))
            wts.append(
                statistics.mean(r.average_wasted_time for r in samples)
            )
        result.efficiency[technique] = effs
        result.wasted[technique] = wts
    return result


def efficiency_report(result: ScalingResult) -> str:
    """The scaling sweep as an ASCII table."""
    from .report import series_table

    title = (
        f"{result.mode} scaling, "
        f"n per point: {[result.tasks_at[p] for p in result.pe_counts]}"
    )
    table = series_table(
        {t.upper(): v for t, v in result.efficiency.items()},
        result.pe_counts,
        key_header="eff\\PEs",
    )
    return f"{title}\n{table}"
