"""Experiment descriptors: one entry per table/figure of the paper.

The registry maps experiment ids (``fig3`` .. ``fig9``, ``table2``,
``table3``) to runnable descriptors, powering the CLI and serving as the
per-experiment index DESIGN.md references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ExperimentDescriptor:
    """A reproducible artifact of the paper."""

    id: str
    paper_artifact: str
    description: str
    run: Callable[..., str]   # returns a printable report


def _fallback_lines(events) -> list[str]:
    """Report lines for recorded backend degradations (empty if none)."""
    if not events:
        return []
    lines = ["", "Backend fallbacks (requested backend could not serve):"]
    lines.extend(f"  {event.describe()}" for event in events)
    return lines


def _run_table2(**kwargs) -> str:
    from .tables import format_table2, table2_matches_publication

    lines = [format_table2(), ""]
    for tech, ok in table2_matches_publication().items():
        lines.append(f"{tech:>5}: {'matches Table II' if ok else 'MISMATCH'}")
    return "\n".join(lines)


def _run_table3(**kwargs) -> str:
    from .tables import format_table3

    return format_table3()


def _run_tss(experiment: int, **kwargs) -> str:
    from .report import series_table
    from .tss_experiments import run_tss_experiment, tss_reproduction_verdicts

    result = run_tss_experiment(experiment, **kwargs)
    lines = [
        f"TSS experiment {experiment}: n={result.n:,}, "
        f"constant task time {result.task_time * 1e6:.0f} us",
        series_table(result.speedups, result.pe_counts, key_header="speedup\\PEs"),
        "",
        "Reproduction verdicts vs digitized published curves:",
    ]
    for v in tss_reproduction_verdicts(result):
        status = "reproduced" if v.reproduced else "NOT reproduced"
        lines.append(
            f"  {v.technique:>8}: max |rel. discrepancy| = "
            f"{v.max_abs_relative_discrepancy:6.1f}%  -> {status}"
        )
    return "\n".join(lines)


def _run_bold(n: int, **kwargs) -> str:
    from .bold_experiments import compare_to_reference, run_bold_experiment
    from .published import bold_reference_available
    from .report import series_table

    result = run_bold_experiment(n, **kwargs)
    lines = [
        f"BOLD experiment: n={n:,} tasks, exp(mu=1s), h=0.5s, "
        f"{result.runs} runs, simulator={result.simulator}",
        series_table(result.values, result.pe_counts, key_header="AWT[s]\\PEs"),
    ]
    if bold_reference_available():
        lines.append("")
        lines.append("Discrepancy vs reference [s] (positive = slower):")
        for row in compare_to_reference(result):
            cells = " ".join(f"{d:8.2f}" for d in row.discrepancies)
            lines.append(f"  {row.technique:>5}: {cells}")
        lines.append("Relative discrepancy vs reference [%]:")
        for row in compare_to_reference(result):
            cells = " ".join(
                f"{d:8.1f}" for d in row.relative_discrepancies
            )
            lines.append(f"  {row.technique:>5}: {cells}")
    lines.extend(_fallback_lines(result.fallbacks))
    return "\n".join(lines)


def _run_fig9(**kwargs) -> str:
    from .bold_experiments import fac_outlier_study
    from .report import ascii_histogram

    study = fac_outlier_study(**kwargs)
    return "\n".join(
        [
            f"FAC outlier study (Figure 9): n={study.n:,}, p={study.p}, "
            f"{study.runs} runs",
            f"  mean average wasted time          : {study.mean:10.2f} s",
            f"  runs above {study.threshold:.0f} s               : "
            f"{study.num_above} ({study.fraction_above * 100:.1f}%)",
            f"  mean excluding those runs         : "
            f"{study.mean_excluding:10.2f} s",
            "  (paper: 15/1000 runs above 400 s; excluded mean 25.82 s)",
            "",
            "per-run distribution (log-scaled bars):",
            ascii_histogram(study.per_run, log_counts=True),
        ]
        + _fallback_lines(study.fallbacks)
    )


def _run_robustness(**kwargs) -> str:
    from ..scenarios import get_scenario
    from .robustness import robustness_report, run_robustness_study

    scenario = kwargs.pop("scenario", None)
    if scenario is None:
        scenario = get_scenario("perturbed")
    result = run_robustness_study(scenario, **kwargs)
    return "\n".join(
        [robustness_report(result)] + _fallback_lines(result.fallbacks)
    )


def _run_scalability(mode: str = "strong", **kwargs) -> str:
    from .scalability import efficiency_report, run_scaling_study

    return efficiency_report(run_scaling_study(mode=mode, **kwargs))


def _run_css_sweep(**kwargs) -> str:
    from .tss_experiments import run_css_k_sweep

    sweep = run_css_k_sweep(**kwargs)
    lines = [f"{'k':>8} {'speedup':>9}"]
    for k, s in sweep.items():
        marker = "  <- k = I/P (original: 69.2)" if k == 1389 else ""
        lines.append(f"{k:>8} {s:>9.2f}{marker}")
    return "\n".join(lines)


def _run_tss_shapes(**kwargs) -> str:
    from .tss_experiments import run_tss_workload_study

    table = run_tss_workload_study(2, **kwargs)
    techniques = list(next(iter(table.values())))
    lines = [f"{'shape':>12}" + "".join(f"{t:>10}" for t in techniques)]
    for shape, row in table.items():
        lines.append(
            f"{shape:>12}" + "".join(f"{row[t]:>10.2f}" for t in row)
        )
    return "\n".join(lines)


def _run_remote_ratio(**kwargs) -> str:
    from .tss_experiments import run_remote_ratio_study

    study = run_remote_ratio_study(**kwargs)
    lines = [f"{'remote ratio':>13} {'speedup':>9}"]
    for ratio, speedup in study.items():
        lines.append(f"{ratio:>12.0%} {speedup:>9.2f}")
    return "\n".join(lines)


EXPERIMENTS: dict[str, ExperimentDescriptor] = {
    "table2": ExperimentDescriptor(
        id="table2",
        paper_artifact="Table II",
        description="Required parameters per DLS technique",
        run=_run_table2,
    ),
    "table3": ExperimentDescriptor(
        id="table3",
        paper_artifact="Table III",
        description="Overview of the reproducibility experiments",
        run=_run_table3,
    ),
    "fig3": ExperimentDescriptor(
        id="fig3",
        paper_artifact="Figure 3",
        description="TSS experiment 1 speedups (100,000 x 110 us)",
        run=lambda **kw: _run_tss(1, **kw),
    ),
    "fig4": ExperimentDescriptor(
        id="fig4",
        paper_artifact="Figure 4",
        description="TSS experiment 2 speedups (10,000 x 2 ms)",
        run=lambda **kw: _run_tss(2, **kw),
    ),
    "fig5": ExperimentDescriptor(
        id="fig5",
        paper_artifact="Figure 5",
        description="BOLD experiment, 1,024 tasks",
        run=lambda **kw: _run_bold(1024, **kw),
    ),
    "fig6": ExperimentDescriptor(
        id="fig6",
        paper_artifact="Figure 6",
        description="BOLD experiment, 8,192 tasks",
        run=lambda **kw: _run_bold(8192, **kw),
    ),
    "fig7": ExperimentDescriptor(
        id="fig7",
        paper_artifact="Figure 7",
        description="BOLD experiment, 65,536 tasks",
        run=lambda **kw: _run_bold(65536, **kw),
    ),
    "fig8": ExperimentDescriptor(
        id="fig8",
        paper_artifact="Figure 8",
        description="BOLD experiment, 524,288 tasks",
        run=lambda **kw: _run_bold(524288, **kw),
    ),
    "fig9": ExperimentDescriptor(
        id="fig9",
        paper_artifact="Figure 9",
        description="FAC per-run outliers (p=2, 524,288 tasks)",
        run=_run_fig9,
    ),
    # Extension studies (companion-study scenarios, not paper artifacts).
    "robustness": ExperimentDescriptor(
        id="robustness",
        paper_artifact="(ext: refs [2,3])",
        description="Makespan degradation under a perturbation scenario",
        run=_run_robustness,
    ),
    "scalability": ExperimentDescriptor(
        id="scalability",
        paper_artifact="(ext: ref [1])",
        description="Strong-scaling efficiency sweep",
        run=_run_scalability,
    ),
    "css-sweep": ExperimentDescriptor(
        id="css-sweep",
        paper_artifact="(ext: TSS pub.)",
        description="CSS(k) chunk-size tuning sweep",
        run=_run_css_sweep,
    ),
    "tss-shapes": ExperimentDescriptor(
        id="tss-shapes",
        paper_artifact="(ext: TSS pub.)",
        description="TSS techniques across workload shapes",
        run=_run_tss_shapes,
    ),
    "remote-ratio": ExperimentDescriptor(
        id="remote-ratio",
        paper_artifact="(ext: TSS pub.)",
        description="Speedup vs remote memory reference ratio",
        run=_run_remote_ratio,
    ),
}


def get_experiment(exp_id: str) -> ExperimentDescriptor:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
