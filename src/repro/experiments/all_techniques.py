"""Full-registry comparison: every technique on one problem cell.

The verified eight plus CSS/WF/TAP, the adaptive family and the
follow-on canon, ranked by measured average wasted time on a chosen
(n, p, h, workload) cell — the "canonical implementation" view the DLS
literature lacks a single source for.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from ..core.params import SchedulingParams
from ..core.registry import get_technique, technique_names
from ..directsim import DirectSimulator
from ..workloads.distributions import ExponentialWorkload, Workload


@dataclass(frozen=True)
class TechniqueRow:
    """Measured behaviour of one technique on the comparison cell."""

    name: str
    label: str
    adaptive: bool
    mean_wasted_time: float
    mean_chunks: float
    mean_speedup: float


def run_all_techniques(
    n: int = 4096,
    p: int = 16,
    h: float = 0.1,
    workload: Workload | None = None,
    runs: int = 10,
    seed: int = 42,
    techniques: Sequence[str] | None = None,
) -> list[TechniqueRow]:
    """Measure every registered technique; returns rows, best first."""
    workload = workload or ExponentialWorkload(1.0)
    if techniques is None:
        techniques = technique_names()
    params = SchedulingParams(
        n=n, p=p, h=h, mu=workload.mean,
        sigma=workload.std,
    )
    sim = DirectSimulator(params, workload)
    rows: list[TechniqueRow] = []
    for name in techniques:
        cls = get_technique(name)
        results = [sim.run(cls, seed=seed + i) for i in range(runs)]
        rows.append(
            TechniqueRow(
                name=name,
                label=cls.label or name,
                adaptive=cls.adaptive,
                mean_wasted_time=statistics.mean(
                    r.average_wasted_time for r in results
                ),
                mean_chunks=statistics.mean(r.num_chunks for r in results),
                mean_speedup=statistics.mean(r.speedup for r in results),
            )
        )
    rows.sort(key=lambda r: r.mean_wasted_time)
    return rows


def all_techniques_report(rows: Sequence[TechniqueRow]) -> str:
    """The comparison as an ASCII leaderboard."""
    lines = [
        f"{'rank':>4} {'technique':>10} {'adaptive':>8} {'wasted[s]':>10} "
        f"{'chunks':>8} {'speedup':>8}"
    ]
    for i, row in enumerate(rows, start=1):
        lines.append(
            f"{i:>4} {row.label:>10} {str(row.adaptive):>8} "
            f"{row.mean_wasted_time:>10.2f} {row.mean_chunks:>8.1f} "
            f"{row.mean_speedup:>8.2f}"
        )
    return "\n".join(lines)
