"""The BOLD-publication reproducibility experiments (Figures 5-9, Table III).

Eight DLS techniques schedule n ∈ {1024, 8192, 65536, 524288} tasks onto
p ∈ {2, 8, 64, 256, 1024} PEs; task times are exponential with
mu = sigma = 1 s; the scheduling overhead is h = 0.5 s; the metric is the
sample mean of the average wasted time over the runs (Section III-B /
IV-B of the paper).

Run-count defaults are scaled to the cost of each task count so the
benchmark suite stays tractable on a laptop (the paper used 1,000 runs on
an HPC cluster); override with the ``REPRO_RUNS`` environment variable or
the ``runs`` argument, and see EXPERIMENTS.md for what was actually run.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..scenarios import Scenario

from ..backends import FallbackEvent, drain_fallback_events, get_backend
from ..core.params import SchedulingParams
from ..metrics.discrepancy import DiscrepancyRow, discrepancy_table
from ..metrics.summary import Summary, mean_excluding_above, summarize
from ..metrics.wasted_time import OverheadModel
from ..workloads.distributions import ExponentialWorkload
from .runner import RunTask, run_replicated

#: the eight techniques of the BOLD publication, in the paper's order
BOLD_TECHNIQUES = ("STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD")
BOLD_TASK_COUNTS = (1024, 8192, 65536, 524288)
BOLD_PE_COUNTS = (2, 8, 64, 256, 1024)
BOLD_H = 0.5
BOLD_MU = 1.0
BOLD_SIGMA = 1.0
#: the paper's run count (per-cell defaults below are laptop-scaled)
BOLD_PAPER_RUNS = 1000

#: default replications per task count (cost scales with chunk count)
DEFAULT_RUNS = {1024: 40, 8192: 12, 65536: 4, 524288: 2}


def default_runs(n: int) -> int:
    """Replications for an ``n``-task experiment (env-overridable)."""
    env = os.environ.get("REPRO_RUNS")
    if env:
        return max(1, int(env))
    return DEFAULT_RUNS.get(n, 10)


def scheduling_params(n: int, p: int) -> SchedulingParams:
    """The BOLD experiment's parameters for one (n, p) cell."""
    return SchedulingParams(n=n, p=p, h=BOLD_H, mu=BOLD_MU, sigma=BOLD_SIGMA)


@dataclass
class BoldExperimentResult:
    """Means (and summaries) of one n-task experiment across PE counts."""

    n: int
    pe_counts: tuple[int, ...]
    techniques: tuple[str, ...]
    runs: int
    simulator: str
    values: dict[str, list[float]] = field(default_factory=dict)
    summaries: dict[str, list[Summary]] = field(default_factory=dict)
    #: capability degradations recorded while running (e.g. direct-batch
    #: -> direct for the adaptive BOLD technique) — never silent
    fallbacks: list[FallbackEvent] = field(default_factory=list)

    def value(self, technique: str, p: int) -> float:
        return self.values[technique][self.pe_counts.index(p)]


def run_bold_experiment(
    n: int,
    pe_counts: Sequence[int] = BOLD_PE_COUNTS,
    techniques: Sequence[str] = BOLD_TECHNIQUES,
    runs: int | None = None,
    simulator: str = "msg",
    seed: int = 2017,
    processes: int | None = None,
    scenario: "Scenario | None" = None,
) -> BoldExperimentResult:
    """Reproduce one of the four n-task experiments (Figures 5-8 a/b).

    ``simulator`` names a registered backend; cells the backend cannot
    serve degrade along its declared fallback chain, and the recorded
    :class:`~repro.backends.FallbackEvent` objects are attached to the
    result (``result.fallbacks``) and surfaced in the ``fig5``-``fig8``
    reports.  ``scenario`` perturbs every cell with a
    :class:`repro.scenarios.Scenario` (speed fluctuations and/or
    fail-stop faults); perturbed cells key the result cache separately
    from clean ones.
    """
    get_backend(simulator)  # fail fast on unknown backends
    if runs is None:
        runs = default_runs(n)
    workload = ExponentialWorkload(BOLD_MU)
    result = BoldExperimentResult(
        n=n,
        pe_counts=tuple(pe_counts),
        techniques=tuple(techniques),
        runs=runs,
        simulator=simulator,
    )
    drain_fallback_events()  # scope the log to this experiment
    for technique in techniques:
        means: list[float] = []
        summaries: list[Summary] = []
        for p in pe_counts:
            task = RunTask(
                technique=technique.lower(),
                params=scheduling_params(n, p),
                workload=workload,
                simulator=simulator,
                overhead_model=OverheadModel.POST_HOC,
                scenario=scenario,
            )
            results = run_replicated(
                task, runs,
                campaign_seed=_cell_seed(seed, n, p, technique),
                processes=processes,
            )
            sample = [r.average_wasted_time for r in results]
            summary = summarize(sample)
            means.append(summary.mean)
            summaries.append(summary)
        result.values[technique] = means
        result.summaries[technique] = summaries
    result.fallbacks = drain_fallback_events()
    return result


def compare_to_reference(result: BoldExperimentResult) -> list[DiscrepancyRow]:
    """Figures 5c/d .. 8c/d: discrepancies against the reference values."""
    from .published import bold_reference

    reference = bold_reference(result.n)
    return discrepancy_table(result.values, reference, result.pe_counts)


@dataclass
class FacOutlierResult:
    """Figure 9's study: per-run FAC wasted times at p=2, n=524288."""

    n: int
    p: int
    runs: int
    threshold: float
    per_run: list[float]
    mean: float
    mean_excluding: float
    num_above: int
    fallbacks: tuple[FallbackEvent, ...] = ()

    @property
    def fraction_above(self) -> float:
        return self.num_above / self.runs


def fac_outlier_study(
    n: int = 524288,
    p: int = 2,
    runs: int = 1000,
    threshold: float = 400.0,
    simulator: str = "direct",
    seed: int = 1997,
    technique: str = "fac",
    processes: int | None = None,
    scenario: "Scenario | None" = None,
) -> FacOutlierResult:
    """Reproduce Figure 9: the heavy tail of FAC's per-run wasted time.

    The paper observes 15 of 1,000 runs above 400 s (1.5 %) and an
    outlier-excluded mean of 25.82 s.
    """
    get_backend(simulator)  # fail fast on unknown backends
    task = RunTask(
        technique=technique,
        params=scheduling_params(n, p),
        workload=ExponentialWorkload(BOLD_MU),
        simulator=simulator,
        overhead_model=OverheadModel.POST_HOC,
        scenario=scenario,
    )
    drain_fallback_events()  # scope the log to this study
    results = run_replicated(task, runs, campaign_seed=seed,
                             processes=processes)
    per_run = [r.average_wasted_time for r in results]
    mean = sum(per_run) / len(per_run)
    try:
        mean_excl, num_above = mean_excluding_above(per_run, threshold)
    except ValueError:
        # a perturbed machine can push every run past the outlier
        # threshold; report that instead of aborting the campaign
        mean_excl, num_above = float("nan"), len(per_run)
    return FacOutlierResult(
        n=n, p=p, runs=runs, threshold=threshold,
        per_run=per_run, mean=mean,
        mean_excluding=mean_excl, num_above=num_above,
        fallbacks=tuple(drain_fallback_events()),
    )


def _cell_seed(seed: int, n: int, p: int, technique: str) -> int:
    """A deterministic per-cell campaign seed (stable across processes)."""
    key = f"{seed}:{n}:{p}:{technique.upper()}".encode()
    return zlib.crc32(key)
