"""Extension study: technique robustness under perturbation scenarios.

For each DLS technique the study runs the same (n, p) cell twice —
once on a clean machine and once under a :class:`repro.scenarios.Scenario`
— and reports the makespan degradation the perturbations cause.  This
regenerates the spirit of the companion studies' robustness figures
(IPDPS-W 2013 flexibility, ISPDC 2015 resilience) on top of the
reproduction's own simulators.

Both halves go through the active result cache (:mod:`repro.cache`)
when one is set, and the scenario participates in the cache key, so a
clean baseline computed by an earlier campaign is reused as-is while
the perturbed runs are keyed — and cached — separately.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..backends import FallbackEvent, drain_fallback_events, get_backend
from ..workloads.distributions import ExponentialWorkload
from .bold_experiments import BOLD_MU, scheduling_params
from .runner import RunTask, run_replicated

if TYPE_CHECKING:  # pragma: no cover
    from ..scenarios import Scenario

__all__ = [
    "RobustnessResult",
    "RobustnessRow",
    "robustness_report",
    "run_robustness_study",
]

#: techniques spanning static, non-adaptive dynamic, and adaptive DLS
DEFAULT_TECHNIQUES = ("stat", "ss", "gss", "tss", "fac", "awf-c", "bold")


@dataclass(frozen=True)
class RobustnessRow:
    """One technique's clean-vs-perturbed makespan comparison."""

    technique: str
    clean_makespan: float
    perturbed_makespan: float
    lost_chunks: int
    lost_tasks: int

    @property
    def degradation_percent(self) -> float:
        if self.clean_makespan == 0.0:
            return 0.0
        return 100.0 * (
            self.perturbed_makespan / self.clean_makespan - 1.0
        )


@dataclass
class RobustnessResult:
    """The robustness study over every technique, for one (n, p) cell."""

    scenario_name: str
    n: int
    p: int
    runs: int
    simulator: str
    rows: list[RobustnessRow] = field(default_factory=list)
    fallbacks: tuple[FallbackEvent, ...] = ()


def run_robustness_study(
    scenario: "Scenario",
    n: int = 1024,
    p: int = 8,
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    runs: int = 5,
    simulator: str = "direct",
    seed: int = 2013,
    processes: int | None = None,
) -> RobustnessResult:
    """Mean makespan per technique, clean vs under ``scenario``."""
    get_backend(simulator)  # fail fast on unknown backends
    workload = ExponentialWorkload(BOLD_MU)
    result = RobustnessResult(
        scenario_name=scenario.name, n=n, p=p, runs=runs,
        simulator=simulator,
    )
    drain_fallback_events()  # scope the log to this study
    for technique in techniques:
        clean_task = RunTask(
            technique=technique,
            params=scheduling_params(n, p),
            workload=workload,
            simulator=simulator,
        )
        perturbed_task = RunTask(
            technique=technique,
            params=scheduling_params(n, p),
            workload=workload,
            simulator=simulator,
            scenario=scenario,
        )
        cell_seed = zlib.crc32(f"{seed}:{n}:{p}:{technique}".encode())
        clean = run_replicated(
            clean_task, runs, campaign_seed=cell_seed, processes=processes
        )
        perturbed = run_replicated(
            perturbed_task, runs, campaign_seed=cell_seed,
            processes=processes,
        )
        result.rows.append(RobustnessRow(
            technique=technique,
            clean_makespan=sum(r.makespan for r in clean) / runs,
            perturbed_makespan=sum(r.makespan for r in perturbed) / runs,
            lost_chunks=sum(
                r.extras.get("lost_chunks", 0) for r in perturbed
            ),
            lost_tasks=sum(
                r.extras.get("lost_tasks", 0) for r in perturbed
            ),
        ))
    result.fallbacks = tuple(drain_fallback_events())
    return result


def robustness_report(result: RobustnessResult, width: int = 30) -> str:
    """An ASCII robustness figure: degradation bars per technique."""
    lines = [
        f"robustness under scenario {result.scenario_name!r}: "
        f"n={result.n:,}, p={result.p}, {result.runs} run(s)/cell, "
        f"simulator={result.simulator}",
        f"  {'technique':>10} {'clean[s]':>10} {'perturbed[s]':>13} "
        f"{'degradation':>12}  {'lost':>5}",
    ]
    worst = max(
        (abs(row.degradation_percent) for row in result.rows),
        default=0.0,
    )
    for row in result.rows:
        deg = row.degradation_percent
        bar_len = (
            0 if worst == 0.0
            else max(0, round(width * abs(deg) / worst))
        )
        bar = ("+" if deg >= 0 else "-") * bar_len
        lines.append(
            f"  {row.technique:>10} {row.clean_makespan:>10.2f} "
            f"{row.perturbed_makespan:>13.2f} {deg:>+11.1f}%  "
            f"{row.lost_chunks:>5d} {bar}"
        )
    most = max(
        result.rows, key=lambda r: r.degradation_percent, default=None
    )
    least = min(
        result.rows, key=lambda r: r.degradation_percent, default=None
    )
    if most is not None and least is not None and most is not least:
        lines.append(
            f"  most robust: {least.technique} "
            f"({least.degradation_percent:+.1f}%), least robust: "
            f"{most.technique} ({most.degradation_percent:+.1f}%)"
        )
    return "\n".join(lines)
