"""Mandelbrot row workload — the canonical irregular parallel loop.

Task ``i`` renders image row ``i``; its cost is the *actual* sum of
escape-time iterations over the row's pixels, computed here with the
standard ``z <- z^2 + c`` recurrence (vectorised).  Rows crossing the
set's interior iterate to ``max_iter`` per pixel while exterior rows
escape quickly — producing the strongly non-uniform, spatially
correlated task times that motivated dynamic loop scheduling in fractal
and ray-tracing codes.
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationModel, require_positive


def escape_counts(
    re_coords: np.ndarray,
    im_coords: np.ndarray,
    max_iter: int,
) -> np.ndarray:
    """Escape iteration counts for the complex grid rows x columns."""
    c = re_coords[np.newaxis, :] + 1j * im_coords[:, np.newaxis]
    z = np.zeros_like(c)
    counts = np.zeros(c.shape, dtype=np.int64)
    active = np.ones(c.shape, dtype=bool)
    for _ in range(max_iter):
        z[active] = z[active] ** 2 + c[active]
        escaped = active & (np.abs(z) > 2.0)
        active &= ~escaped
        counts[active] += 1
        if not active.any():
            break
    return counts


class MandelbrotRows(ApplicationModel):
    """One task per image row of a Mandelbrot rendering.

    Parameters
    ----------
    width, height:
        Image resolution; ``height`` is the task count.
    max_iter:
        Iteration cap (interior pixels cost this much).
    center, scale:
        Complex-plane window: ``center`` ± ``scale`` on the real axis
        (imaginary axis scaled by the aspect ratio).
    time_per_iteration:
        Seconds of simulated compute per escape iteration.
    """

    name = "mandelbrot"

    def __init__(
        self,
        width: int = 256,
        height: int = 256,
        max_iter: int = 100,
        center: complex = -0.5 + 0.0j,
        scale: float = 1.5,
        time_per_iteration: float = 1e-6,
    ):
        if width < 1 or height < 1:
            raise ValueError("width and height must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        require_positive(scale, "scale")
        require_positive(time_per_iteration, "time_per_iteration")
        self.width = width
        self.height = height
        self.max_iter = max_iter
        self.center = center
        self.scale = scale
        self.time_per_iteration = time_per_iteration
        self._cache: np.ndarray | None = None

    @property
    def n_tasks(self) -> int:
        return self.height

    def _row_iterations(self) -> np.ndarray:
        if self._cache is None:
            aspect = self.height / self.width
            re = self.center.real + np.linspace(
                -self.scale, self.scale, self.width
            )
            im = self.center.imag + np.linspace(
                -self.scale * aspect, self.scale * aspect, self.height
            )
            counts = escape_counts(re, im, self.max_iter)
            self._cache = counts.sum(axis=1)
        return self._cache

    def task_times(self, step: int = 0, rng=None) -> np.ndarray:
        # The rendering is deterministic; steps do not change it.
        iterations = self._row_iterations()
        # Every pixel costs at least one arithmetic evaluation.
        return (iterations + self.width) * self.time_per_iteration
