"""Wave packet workload — a moving hot region over a discretised domain.

Models the adaptive quantum trajectory method the paper cites
(Cariño et al., "Parallel adaptive quantum trajectory method for
wavepacket simulations"): a Gaussian packet travels across a 1-D grid;
the task for a grid block costs more where the packet's density (and
hence the local trajectory count) is high.  Between time steps the hot
region *moves*, so a static partition that was balanced at step 0 is
wrong a few steps later — the time-stepping AWF scenario.
"""

from __future__ import annotations

import math

import numpy as np

from .base import ApplicationModel, require_positive


class WavePacket(ApplicationModel):
    """One task per grid block under a travelling Gaussian packet."""

    name = "wavepacket"

    def __init__(
        self,
        n_tasks: int = 1024,
        base_time: float = 1e-4,
        peak_factor: float = 50.0,
        packet_width: float = 0.05,
        velocity: float = 0.02,
        start_position: float = 0.1,
        dispersion: float = 0.002,
        noise: float = 0.05,
        seed: int = 0,
    ):
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        require_positive(base_time, "base_time")
        if peak_factor < 0:
            raise ValueError("peak_factor must be >= 0")
        require_positive(packet_width, "packet_width")
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self._n_tasks = n_tasks
        self.base_time = base_time
        self.peak_factor = peak_factor
        self.packet_width = packet_width
        self.velocity = velocity
        self.start_position = start_position
        self.dispersion = dispersion
        self.noise = noise
        self.seed = seed

    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    def packet_center(self, step: int) -> float:
        """Packet position at a step (reflecting off the domain ends)."""
        x = self.start_position + step * self.velocity
        # Reflect into [0, 1] (triangle wave).
        period, phase = divmod(x, 1.0)
        return phase if int(period) % 2 == 0 else 1.0 - phase

    def packet_sigma(self, step: int) -> float:
        """Packet width at a step (dispersion broadens it)."""
        return self.packet_width + self.dispersion * step

    def task_times(self, step: int = 0, rng=None) -> np.ndarray:
        xs = (np.arange(self._n_tasks) + 0.5) / self._n_tasks
        center = self.packet_center(step)
        sigma = self.packet_sigma(step)
        density = np.exp(-((xs - center) ** 2) / (2.0 * sigma**2))
        # Trajectory count scales with density; normalise the peak so the
        # hottest block costs peak_factor * base_time.
        times = self.base_time * (1.0 + self.peak_factor * density)
        if self.noise > 0:
            if rng is None:
                rng = np.random.default_rng(
                    np.random.SeedSequence([self.seed, step])
                )
            times = times * np.exp(
                rng.normal(
                    -self.noise**2 / 2.0, self.noise, size=self._n_tasks
                )
            )
        return times

    def hot_block(self, step: int) -> int:
        """Index of the most expensive task at a step."""
        return int(
            min(
                self._n_tasks - 1,
                math.floor(self.packet_center(step) * self._n_tasks),
            )
        )
