"""Synthetic scientific application models (the paper's motivating apps)."""

from .base import ApplicationModel
from .mandelbrot import MandelbrotRows, escape_counts
from .montecarlo import MonteCarloHistories
from .nbody import ClusteredNBody
from .wavepacket import WavePacket

__all__ = [
    "ApplicationModel",
    "ClusteredNBody",
    "MandelbrotRows",
    "MonteCarloHistories",
    "WavePacket",
    "escape_counts",
]
