"""Monte Carlo particle-history workload — heavy-tailed task times.

A task tracks a batch of particle histories; each history scatters a
geometrically distributed number of times before absorption, so a batch's
cost is a sum of geometric variates — mildly heavy-tailed, with rare
batches dominated by long histories.  Models the Monte Carlo transport
codes the paper's introduction cites.
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationModel, require_positive


class MonteCarloHistories(ApplicationModel):
    """One task per batch of particle histories."""

    name = "montecarlo"

    def __init__(
        self,
        n_tasks: int = 2048,
        histories_per_task: int = 100,
        absorption_probability: float = 0.05,
        time_per_event: float = 2e-6,
        splitting_probability: float = 0.01,
        max_split_factor: int = 50,
        seed: int = 0,
    ):
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if histories_per_task < 1:
            raise ValueError("histories_per_task must be >= 1")
        if not 0.0 < absorption_probability <= 1.0:
            raise ValueError("absorption_probability must be in (0, 1]")
        if not 0.0 <= splitting_probability < 1.0:
            raise ValueError("splitting_probability must be in [0, 1)")
        if max_split_factor < 1:
            raise ValueError("max_split_factor must be >= 1")
        require_positive(time_per_event, "time_per_event")
        self._n_tasks = n_tasks
        self.histories_per_task = histories_per_task
        self.absorption_probability = absorption_probability
        self.time_per_event = time_per_event
        self.splitting_probability = splitting_probability
        self.max_split_factor = max_split_factor
        self.seed = seed

    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    def task_times(self, step: int = 0, rng=None) -> np.ndarray:
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, step])
            )
        # Events per history: geometric (number of scatters + absorption).
        events = rng.geometric(
            self.absorption_probability,
            size=(self._n_tasks, self.histories_per_task),
        ).sum(axis=1).astype(np.float64)
        # Rare variance-reduction splitting events multiply a batch's
        # work — the heavy tail.
        split_mask = rng.random(self._n_tasks) < self.splitting_probability
        factors = rng.integers(
            2, self.max_split_factor + 1, size=self._n_tasks
        )
        events[split_mask] *= factors[split_mask]
        return events * self.time_per_event
