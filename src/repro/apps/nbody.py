"""Clustered N-body workload — spatially correlated, drifting load.

Bodies live in a unit square, drawn from a mixture of Gaussian clusters
that drift over time steps.  A task is one cell of a regular spatial
grid; its cost models a direct-sum force evaluation restricted to a
neighbourhood: ``cost ∝ n_cell * n_neighbourhood``.  Dense clusters make
some cells orders of magnitude more expensive, and the drift moves that
imbalance across tasks between steps — the scenario AWF was built for
(Banicescu & Hummel's N-body experiments are among the paper's cited
DLS applications).
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationModel, require_positive


class ClusteredNBody(ApplicationModel):
    """One task per spatial grid cell of a clustered particle set."""

    name = "nbody"

    def __init__(
        self,
        n_bodies: int = 20_000,
        grid: int = 16,
        clusters: int = 3,
        cluster_std: float = 0.06,
        background_fraction: float = 0.2,
        drift: float = 0.04,
        time_per_interaction: float = 1e-7,
        seed: int = 0,
    ):
        if n_bodies < 1:
            raise ValueError("n_bodies must be >= 1")
        if grid < 1:
            raise ValueError("grid must be >= 1")
        if clusters < 1:
            raise ValueError("clusters must be >= 1")
        if not 0.0 <= background_fraction <= 1.0:
            raise ValueError("background_fraction must be in [0, 1]")
        require_positive(cluster_std, "cluster_std")
        require_positive(time_per_interaction, "time_per_interaction")
        self.n_bodies = n_bodies
        self.grid = grid
        self.clusters = clusters
        self.cluster_std = cluster_std
        self.background_fraction = background_fraction
        self.drift = drift
        self.time_per_interaction = time_per_interaction
        init_rng = np.random.default_rng(seed)
        self._centers = init_rng.random((clusters, 2))
        self._velocities = init_rng.normal(0.0, 1.0, (clusters, 2))
        norms = np.linalg.norm(self._velocities, axis=1, keepdims=True)
        self._velocities = self._velocities / np.maximum(norms, 1e-12)
        self._body_seed = int(init_rng.integers(0, 2**31 - 1))

    @property
    def n_tasks(self) -> int:
        return self.grid * self.grid

    def positions(self, step: int = 0) -> np.ndarray:
        """Body positions at a time step (clusters drift, wrap around)."""
        centers = (self._centers + step * self.drift * self._velocities) % 1.0
        rng = np.random.default_rng(self._body_seed)
        n_bg = int(self.n_bodies * self.background_fraction)
        n_clustered = self.n_bodies - n_bg
        counts = np.full(self.clusters, n_clustered // self.clusters)
        counts[: n_clustered % self.clusters] += 1
        parts = [rng.random((n_bg, 2))]
        for center, count in zip(centers, counts):
            parts.append(
                (rng.normal(center, self.cluster_std, (count, 2))) % 1.0
            )
        return np.vstack(parts)

    def cell_counts(self, step: int = 0) -> np.ndarray:
        """Bodies per grid cell, flattened row-major."""
        pos = self.positions(step)
        idx = np.clip((pos * self.grid).astype(int), 0, self.grid - 1)
        flat = idx[:, 0] * self.grid + idx[:, 1]
        return np.bincount(flat, minlength=self.n_tasks)

    def task_times(self, step: int = 0, rng=None) -> np.ndarray:
        counts = self.cell_counts(step).astype(np.float64)
        # Neighbourhood population: 3x3 stencil with wrap-around.
        grid = counts.reshape(self.grid, self.grid)
        neighbourhood = np.zeros_like(grid)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                neighbourhood += np.roll(np.roll(grid, di, 0), dj, 1)
        cost = grid * neighbourhood
        # Every cell pays a small traversal cost even when empty.
        cost += 1.0
        return (cost * self.time_per_interaction).ravel()
