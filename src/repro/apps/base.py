"""Application models: synthetic scientific workloads.

The paper motivates DLS with real applications — "Monte Carlo
simulations, radar signal processing, N-body simulations, computational
fluid dynamics on unstructured grids, or wave packet simulations".  The
models in this package are the closest synthetic equivalents that
exercise the same scheduling behaviour (see DESIGN.md §3): each produces
per-task execution times, possibly evolving over time steps, which feed
the simulators through :class:`~repro.workloads.distributions.TraceWorkload`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..workloads.distributions import TraceWorkload


class ApplicationModel(ABC):
    """A source of per-task execution times, evolving over time steps."""

    #: short identifier, e.g. "mandelbrot"
    name: str = ""

    @property
    @abstractmethod
    def n_tasks(self) -> int:
        """Number of tasks per time step."""

    @abstractmethod
    def task_times(self, step: int = 0,
                   rng: np.random.Generator | None = None) -> np.ndarray:
        """Execution times (seconds) of the ``n_tasks`` tasks at ``step``."""

    def workload(self, step: int = 0,
                 rng: np.random.Generator | None = None) -> TraceWorkload:
        """The step's task times wrapped as a replayable trace workload."""
        return TraceWorkload(self.task_times(step, rng))

    def imbalance_factor(self, step: int = 0,
                         rng: np.random.Generator | None = None) -> float:
        """Max over mean task time — a quick measure of irregularity."""
        times = self.task_times(step, rng)
        mean = float(times.mean())
        if mean <= 0:
            return 1.0
        return float(times.max()) / mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n_tasks={self.n_tasks}>"


def require_positive(value: float, name: str) -> float:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value
