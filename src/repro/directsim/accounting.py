"""Overhead accounting for the direct simulator.

The canonical definitions live in :mod:`repro.metrics.wasted_time`; this
module re-exports them under the historical location so that
``repro.directsim.OverheadModel`` keeps working.
"""

from ..metrics.wasted_time import OverheadModel, average_wasted_time

__all__ = ["OverheadModel", "average_wasted_time"]
