"""Fault and perturbation models for the direct simulator.

The paper's companion studies examined the *flexibility* of the DLS
techniques under fluctuating load (Sukhija et al., IPDPS-W 2013, ref [2])
and their *resilience* to PE failures (Sukhija et al., ISPDC 2015,
ref [3]).  These models let the direct simulator regenerate the spirit of
those experiments:

* :class:`FailStop` — a PE dies at a given time; the chunk it was
  executing is lost and its task region is requeued to the scheduler
  (fail-stop with work loss, the model of [3]).
* Fluctuations — a per-chunk multiplicative speed factor modelling
  background load: :class:`LognormalFluctuation` (stationary noise),
  :class:`StepFluctuation` (a PE slows down at a point in time) and
  :class:`CyclicFluctuation` (deterministic periodic background load),
  as in the fluctuating-load scenarios of [2].
  :class:`CompositeFluctuation` multiplies several models together.

These are the *mechanism* layer.  The declarative, campaign-level
description of a perturbed experiment — which fraction of PEs slows
down, when faults strike, how much noise — lives in
:mod:`repro.scenarios`, whose :class:`~repro.scenarios.Scenario`
descriptors compile down to the models in this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Protocol

import numpy as np


@dataclass(frozen=True)
class FailStop:
    """Fail-stop failure injection.

    ``fail_times`` maps worker index -> simulated failure time.  A worker
    whose chunk would complete after its failure time loses that chunk
    (the tasks are requeued); it never requests work again.
    """

    fail_times: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for worker, t in self.fail_times.items():
            if worker < 0:
                raise ValueError(f"invalid worker index {worker}")
            if t < 0:
                raise ValueError(f"failure time must be >= 0, got {t}")

    def fails_before(self, worker: int, time: float) -> bool:
        """Whether ``worker`` is already dead at ``time``."""
        t = self.fail_times.get(worker)
        return t is not None and time >= t

    def fails_during(self, worker: int, start: float, end: float) -> bool:
        """Whether ``worker`` dies before finishing a chunk in [start, end)."""
        t = self.fail_times.get(worker)
        return t is not None and t < end


class Fluctuation(Protocol):
    """Per-chunk speed multiplier model (>= values speed the PE up)."""

    def multiplier(self, worker: int, time: float,
                   rng: np.random.Generator) -> float:
        """The speed factor for a chunk starting at ``time``."""
        ...


@dataclass(frozen=True)
class LognormalFluctuation:
    """Stationary multiplicative load noise with unit mean.

    The multiplier is ``LogNormal(-sigma^2/2, sigma)`` so the expected
    speed factor is exactly 1: fluctuation adds variability, not bias.
    """

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def multiplier(self, worker, time, rng) -> float:
        if self.sigma == 0:
            return 1.0
        return float(
            rng.lognormal(mean=-self.sigma**2 / 2.0, sigma=self.sigma)
        )


@dataclass(frozen=True)
class StepFluctuation:
    """A set of PEs slows down (or speeds up) at a point in time.

    ``factors`` maps worker -> (time, factor); from ``time`` on, chunks of
    that worker run at ``factor`` times their nominal speed.
    """

    factors: Mapping[int, tuple[float, float]]

    def __post_init__(self) -> None:
        for worker, (time, factor) in self.factors.items():
            if time < 0:
                raise ValueError(f"step time must be >= 0, got {time}")
            if factor <= 0 or not math.isfinite(factor):
                raise ValueError(
                    f"factor must be positive and finite, got {factor}"
                )
            if worker < 0:
                raise ValueError(f"invalid worker index {worker}")

    def multiplier(self, worker, time, rng) -> float:
        entry = self.factors.get(worker)
        if entry is None:
            return 1.0
        step_time, factor = entry
        return factor if time >= step_time else 1.0


@dataclass(frozen=True)
class CyclicFluctuation:
    """Deterministic periodic background load (a triangle wave).

    The multiplier for an affected PE is ``1 + amplitude * tri(x)``
    with ``x = time / period + phase`` and ``tri`` a triangle wave in
    ``[-1, 1]``.  ``phases`` maps worker -> phase offset (in cycles);
    workers absent from the mapping are unaffected (multiplier 1.0).

    The wave is built from division, ``floor``, ``abs`` and
    multiplication only — all exactly-rounded IEEE operations — so
    scalar and vectorized (NumPy) evaluation agree bit for bit.  That
    property is what lets the batch kernel stay bit-identical to the
    scalar simulator under deterministic fluctuation scenarios.
    """

    period: float
    amplitude: float
    phases: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (self.period > 0 and math.isfinite(self.period)):
            raise ValueError(
                f"period must be positive and finite, got {self.period}"
            )
        if not 0 <= self.amplitude < 1:
            raise ValueError(
                "amplitude must be in [0, 1) so speeds stay positive, "
                f"got {self.amplitude}"
            )
        for worker in self.phases:
            if worker < 0:
                raise ValueError(f"invalid worker index {worker}")

    def multiplier(self, worker, time, rng) -> float:
        phase = self.phases.get(worker)
        if phase is None:
            return 1.0
        x = time / self.period + phase
        u = x - math.floor(x)
        return 1.0 + self.amplitude * (4.0 * abs(u - 0.5) - 1.0)


@dataclass(frozen=True)
class CompositeFluctuation:
    """The product of several fluctuation models, applied in order.

    The multiplication order is part of the contract: the batch kernel
    reproduces it factor by factor, so deterministic compositions stay
    bit-identical between the scalar and vectorized simulators.
    """

    components: tuple = ()

    def multiplier(self, worker, time, rng) -> float:
        m = 1.0
        for component in self.components:
            m *= component.multiplier(worker, time, rng)
        return m


class SimulationError(RuntimeError):
    """A simulated campaign cannot make progress (e.g. every PE died)."""


class AllWorkersFailedError(SimulationError):
    """Raised when every PE has failed while tasks remain."""
