"""The direct simulator — a replica of Hagerup's (1997) chunk-level
simulator, which the paper reproduced after the fictitious-platform route
failed (Section III-B).

The model has no network: a run is a sequence of chunk executions at chunk
granularity.  Workers become ready, receive a chunk from the scheduler,
execute it for the summed task time of the chunk (divided by the worker's
relative speed), and return for more work.  Scheduling overhead is charged
according to an :class:`~repro.directsim.accounting.OverheadModel`.

The simulator is deliberately simple — a single binary heap over worker
ready times — so that it serves as the *independent second implementation*
against which the event-driven SimGrid-MSG-like simulator is verified
(tests/test_cross_validation.py).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Sequence

import numpy as np

from ..core.base import Scheduler
from ..core.params import SchedulingParams
from ..obs.stats import RunStats
from ..results import ChunkExecution, RunResult
from ..workloads.distributions import Workload
from ..workloads.generator import make_rng
from .accounting import OverheadModel
from .faults import AllWorkersFailedError, FailStop, Fluctuation


class DirectSimulator:
    """Chunk-granularity master-worker simulation without a network.

    Parameters
    ----------
    params:
        The scheduling parameters (``n``, ``p``, ``h`` are used here).
    workload:
        Distribution of task execution times.
    overhead_model:
        Where ``h`` is charged; default is the paper's POST_HOC model.
    speeds:
        Relative PE speeds (default homogeneous 1.0).  A chunk's wall time
        is its summed task time divided by the executing PE's speed.
    start_times:
        Per-PE ready times at simulation start (default all zero) —
        GSS's "uneven starting times" scenario.
    record_chunks:
        Keep a full per-chunk execution log on the result (memory-heavy
        for SS at large ``n``; off by default).
    failures:
        Optional :class:`~repro.directsim.faults.FailStop` model — the
        resilience scenario of the paper's companion study [3].
    fluctuation:
        Optional per-chunk speed :class:`~repro.directsim.faults.Fluctuation`
        — the fluctuating-load scenario of [2].
    """

    def __init__(
        self,
        params: SchedulingParams,
        workload: Workload,
        overhead_model: OverheadModel = OverheadModel.POST_HOC,
        speeds: Sequence[float] | None = None,
        start_times: Sequence[float] | None = None,
        record_chunks: bool = False,
        failures: FailStop | None = None,
        fluctuation: Fluctuation | None = None,
    ):
        self.params = params
        self.workload = workload
        self.overhead_model = overhead_model
        if speeds is None:
            speeds = [1.0] * params.p
        if len(speeds) != params.p:
            raise ValueError(f"need {params.p} speeds, got {len(speeds)}")
        if any(s <= 0 for s in speeds):
            raise ValueError("speeds must all be positive")
        self.speeds = list(map(float, speeds))
        if start_times is None:
            start_times = [0.0] * params.p
        if len(start_times) != params.p:
            raise ValueError(
                f"need {params.p} start times, got {len(start_times)}"
            )
        if any(t < 0 for t in start_times):
            raise ValueError("start times must be non-negative")
        self.start_times = list(map(float, start_times))
        self.record_chunks = record_chunks
        self.failures = failures
        self.fluctuation = fluctuation

    def run(
        self,
        scheduler: Scheduler | Callable[[SchedulingParams], Scheduler],
        seed: int | np.random.SeedSequence | None = None,
    ) -> RunResult:
        """Simulate one run; returns timing and accounting for it.

        ``scheduler`` may be an instance (used as-is; must be fresh) or a
        factory called with the simulator's params.
        """
        t_wall = time.perf_counter()
        if not isinstance(scheduler, Scheduler):
            scheduler = scheduler(self.params)
        if scheduler.state.scheduled_chunks:
            raise ValueError("scheduler has already been used; pass a fresh one")
        rng = make_rng(seed)
        p = self.params.p
        h = self.params.h
        model = self.overhead_model

        compute = [0.0] * p
        chunk_counts = [0] * p
        # Last activity end per worker; a worker that never receives work
        # does not extend the makespan (it only idles).
        finish = [0.0] * p
        total_task_time = 0.0
        log: list[ChunkExecution] = []
        master_free = 0.0

        ready = [(self.start_times[w], w) for w in range(p)]
        heapq.heapify(ready)
        # Chunk completions are reported when the worker next requests
        # work — i.e. when the chunk has physically finished — so that the
        # scheduler's m (remaining + in-flight) and the adaptive
        # techniques' timing feedback reflect simulated time.
        pending: list[tuple[int, float] | None] = [None] * p

        lost_chunks = 0
        lost_tasks = 0
        events = 0

        while ready and not scheduler.done:
            t, worker = heapq.heappop(ready)
            events += 1
            if pending[worker] is not None:
                done_size, done_elapsed = pending[worker]
                scheduler.record_finished(worker, done_size, done_elapsed)
                pending[worker] = None
            if self.failures is not None and self.failures.fails_before(
                worker, t
            ):
                continue  # dead PE: never requests again
            size = scheduler.next_chunk(worker)
            if size == 0:
                continue
            record = scheduler.last_chunk
            task_time = self.workload.chunk_time(record.start, size, rng)
            speed = self.speeds[worker]
            if self.fluctuation is not None:
                speed *= self.fluctuation.multiplier(worker, t, rng)
            elapsed = task_time / speed

            if model is OverheadModel.PER_WORKER:
                begin = t + h
            elif model is OverheadModel.SERIALIZED_MASTER:
                master_free = max(master_free, t) + h
                begin = master_free
            else:  # POST_HOC — scheduling is free inside the simulation
                begin = t
            end = begin + elapsed

            if self.failures is not None and self.failures.fails_during(
                worker, begin, end
            ):
                # The PE dies mid-chunk: the work is lost and requeued.
                scheduler.requeue_chunk(record)
                lost_chunks += 1
                lost_tasks += size
                continue

            compute[worker] += elapsed
            chunk_counts[worker] += 1
            total_task_time += task_time
            finish[worker] = end
            pending[worker] = (size, elapsed)
            if self.record_chunks:
                log.append(ChunkExecution(record, begin, elapsed))
            heapq.heappush(ready, (end, worker))

        if not scheduler.done:
            raise AllWorkersFailedError(
                f"{scheduler.state.remaining} tasks remain but no live "
                f"worker can execute them"
            )

        for worker, item in enumerate(pending):
            if item is not None:
                scheduler.record_finished(worker, *item)

        makespan = max(finish) if finish else 0.0
        return RunResult(
            technique=scheduler.label or scheduler.name,
            n=self.params.n,
            p=p,
            h=h,
            overhead_model=model,
            makespan=makespan,
            compute_times=compute,
            chunks_per_worker=chunk_counts,
            num_chunks=scheduler.num_scheduling_operations,
            total_task_time=total_task_time,
            chunk_log=log,
            extras={
                "lost_chunks": lost_chunks,
                "lost_tasks": lost_tasks,
            },
            # ``events`` counts worker ready-heap pops (one per chunk
            # assignment attempt); the ready heap never exceeds p.
            stats=RunStats(
                fast_path=False,
                events=events,
                heap_peak=p,
                live_peak=p,
                wall_time=time.perf_counter() - t_wall,
            ),
        )


def replicate(
    simulator: DirectSimulator,
    factory: Callable[[SchedulingParams], Scheduler],
    runs: int,
    seed: int | None = None,
) -> list[RunResult]:
    """Run ``runs`` independent replications with spawned seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(seed).spawn(runs)
    return [simulator.run(factory, s) for s in seeds]
