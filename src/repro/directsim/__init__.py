"""Replica of Hagerup's (1997) chunk-level direct simulator."""

from .accounting import OverheadModel, average_wasted_time
from .faults import (
    AllWorkersFailedError,
    FailStop,
    Fluctuation,
    LognormalFluctuation,
    StepFluctuation,
)
from .simulator import ChunkExecution, DirectSimulator, RunResult, replicate

__all__ = [
    "AllWorkersFailedError",
    "ChunkExecution",
    "DirectSimulator",
    "FailStop",
    "Fluctuation",
    "LognormalFluctuation",
    "OverheadModel",
    "RunResult",
    "StepFluctuation",
    "average_wasted_time",
    "replicate",
]
