"""Replica of Hagerup's (1997) chunk-level direct simulator."""

from .accounting import OverheadModel, average_wasted_time
from .batch import (
    BatchDirectSimulator,
    BatchScheduleUnavailableError,
    batch_replicate,
    batch_supported,
)
from .faults import (
    AllWorkersFailedError,
    CompositeFluctuation,
    CyclicFluctuation,
    FailStop,
    Fluctuation,
    LognormalFluctuation,
    SimulationError,
    StepFluctuation,
)
from .simulator import ChunkExecution, DirectSimulator, RunResult, replicate

__all__ = [
    "AllWorkersFailedError",
    "BatchDirectSimulator",
    "BatchScheduleUnavailableError",
    "ChunkExecution",
    "CompositeFluctuation",
    "CyclicFluctuation",
    "DirectSimulator",
    "FailStop",
    "Fluctuation",
    "LognormalFluctuation",
    "OverheadModel",
    "RunResult",
    "SimulationError",
    "StepFluctuation",
    "average_wasted_time",
    "batch_replicate",
    "batch_supported",
    "replicate",
]
