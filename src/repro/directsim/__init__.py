"""Replica of Hagerup's (1997) chunk-level direct simulator."""

from .accounting import OverheadModel, average_wasted_time
from .batch import (
    BatchDirectSimulator,
    BatchScheduleUnavailableError,
    batch_replicate,
    batch_supported,
)
from .faults import (
    AllWorkersFailedError,
    FailStop,
    Fluctuation,
    LognormalFluctuation,
    StepFluctuation,
)
from .simulator import ChunkExecution, DirectSimulator, RunResult, replicate

__all__ = [
    "AllWorkersFailedError",
    "BatchDirectSimulator",
    "BatchScheduleUnavailableError",
    "ChunkExecution",
    "DirectSimulator",
    "FailStop",
    "Fluctuation",
    "LognormalFluctuation",
    "OverheadModel",
    "RunResult",
    "StepFluctuation",
    "average_wasted_time",
    "batch_replicate",
    "batch_supported",
    "replicate",
]
