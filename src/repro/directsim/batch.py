"""Vectorized batch-replication kernel for the direct simulator.

The BOLD reproduction needs up to 1,000 replications per (technique, n,
p) cell; :class:`~repro.directsim.simulator.DirectSimulator` executes
each replication through a pure-Python heap loop with one RNG draw and
one scheduler call per chunk — half a million Python iterations per SS
replication at n = 524,288.  This module simulates all R replications of
one cell in bulk NumPy operations instead, in three layers:

1. **Chunk-schedule precomputation** — for techniques whose chunk
   sequence is a pure function of ``(n, p, params)``
   (:attr:`~repro.core.base.Scheduler.deterministic_schedule`), the
   ``(start, size)`` sequence is computed once per cell via
   :meth:`~repro.core.base.Scheduler.chunk_schedule` and reused across
   all replications.
2. **Bulk sampling** — :meth:`~repro.workloads.distributions.Workload.
   chunk_times_batch` draws the whole ``(R, C)`` matrix of chunk times
   in one vectorised call per cell (Gamma for exponential, ``k * v``
   for constant, ...).
3. **Vectorized worker assignment** — the heap is replaced by an
   argmin-over-ready-times loop operating on the whole ``(R, p)`` ready
   matrix at once.  Chunks are assigned in the same earliest-ready,
   lowest-index order as the scalar simulator, so for deterministic
   workloads the per-replication results are *identical* to
   ``DirectSimulator`` and for stochastic workloads they are equal in
   distribution (the scalar simulator remains the reference oracle; see
   ``tests/test_batch_kernel.py``).

Not supported (callers must fall back to the scalar simulator):
adaptive techniques (AWF family, AF, BOLD), worker-dependent schedules
(WF, PLS, RND), fault injection, per-chunk speed fluctuation, and
per-chunk execution logs.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.base import Scheduler
from ..core.params import SchedulingParams
from ..core.schedule import (
    ScheduleUnavailableError,
    closed_form_supported,
    precompute_schedule,
)
from ..obs.stats import RunStats
from ..results import RunResult
from ..workloads.distributions import Workload
from ..workloads.generator import make_rng
from .accounting import OverheadModel

#: cap on R * C elements per simulated block (~128 MB of float64), so
#: huge cells (SS at n = 524,288) stream through in replication blocks.
DEFAULT_MAX_BLOCK_ELEMENTS = 1 << 24


def batch_supported(technique: str | type[Scheduler]) -> bool:
    """True when ``technique`` can run on the batch kernel.

    Thin alias of the shared eligibility predicate
    (:func:`repro.core.schedule.closed_form_supported`) — the batch
    kernel and the MSG fast path share one precondition.
    """
    return closed_form_supported(technique)


#: backward-compatible alias: the shared precomputation error
BatchScheduleUnavailableError = ScheduleUnavailableError


class BatchDirectSimulator:
    """Batch-replication counterpart of :class:`DirectSimulator`.

    Takes the same cell description (params, workload, overhead model,
    speeds, start times) but simulates ``reps`` independent replications
    per :meth:`run_batch` call using the vectorized kernel.  Fault
    injection, fluctuation and chunk logs are intentionally absent —
    use the scalar simulator for those scenarios.
    """

    def __init__(
        self,
        params: SchedulingParams,
        workload: Workload,
        overhead_model: OverheadModel = OverheadModel.POST_HOC,
        speeds: Sequence[float] | None = None,
        start_times: Sequence[float] | None = None,
        max_block_elements: int = DEFAULT_MAX_BLOCK_ELEMENTS,
    ):
        self.params = params
        self.workload = workload
        self.overhead_model = overhead_model
        if speeds is None:
            speeds = [1.0] * params.p
        if len(speeds) != params.p:
            raise ValueError(f"need {params.p} speeds, got {len(speeds)}")
        if any(s <= 0 for s in speeds):
            raise ValueError("speeds must all be positive")
        self.speeds = np.asarray(speeds, dtype=np.float64)
        if start_times is None:
            start_times = [0.0] * params.p
        if len(start_times) != params.p:
            raise ValueError(
                f"need {params.p} start times, got {len(start_times)}"
            )
        if any(t < 0 for t in start_times):
            raise ValueError("start times must be non-negative")
        self.start_times = np.asarray(start_times, dtype=np.float64)
        if max_block_elements < 1:
            raise ValueError("max_block_elements must be >= 1")
        self.max_block_elements = int(max_block_elements)

    def run_batch(
        self,
        scheduler: Scheduler | Callable[[SchedulingParams], Scheduler],
        reps: int,
        seed: int | np.random.SeedSequence | None = None,
    ) -> list[RunResult]:
        """Simulate ``reps`` independent replications of the cell.

        ``scheduler`` may be a fresh instance or a factory, exactly as
        for :meth:`DirectSimulator.run`; it is used only to precompute
        the chunk schedule.  All replications share one RNG stream
        spawned from ``seed`` (how that stream is split over internal
        blocks is an implementation detail — per-replication results
        are equal in distribution to scalar runs, not draw-for-draw
        identical for stochastic workloads).
        """
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if not isinstance(scheduler, Scheduler):
            scheduler = scheduler(self.params)
        schedule = precompute_schedule(scheduler)
        label, starts, sizes = schedule.label, schedule.starts, schedule.sizes
        rng = make_rng(seed)

        block = max(1, self.max_block_elements // max(1, sizes.size))
        results: list[RunResult] = []
        done = 0
        while done < reps:
            r = min(block, reps - done)
            results.extend(self._run_block(label, starts, sizes, r, rng))
            done += r
        return results

    # -- the kernel ------------------------------------------------------
    def _run_block(
        self,
        label: str,
        starts: np.ndarray,
        sizes: np.ndarray,
        reps: int,
        rng: np.random.Generator,
    ) -> list[RunResult]:
        t_wall = time.perf_counter()
        p = self.params.p
        h = self.params.h
        model = self.overhead_model
        num_chunks = sizes.size

        # Layer 2: one vectorised draw for every (replication, chunk).
        task_times = self.workload.chunk_times_batch(starts, sizes, reps, rng)

        # Layer 3: argmin-over-ready-times assignment, all replications
        # at once.  Matches the scalar heap exactly: the heap holds one
        # entry per worker, pops the (time, worker) minimum — ties break
        # toward the lowest worker index, as argmin does.
        ready = np.tile(self.start_times, (reps, 1))
        compute = np.zeros((reps, p))
        counts = np.zeros((reps, p), dtype=np.int64)
        makespan = np.zeros(reps)
        rows = np.arange(reps)
        if model is OverheadModel.SERIALIZED_MASTER:
            master_free = np.zeros(reps)

        for c in range(num_chunks):
            w = np.argmin(ready, axis=1)
            t = ready[rows, w]
            # True division (not multiplication by a reciprocal) so the
            # ready times match the scalar simulator bit-for-bit.
            elapsed = task_times[:, c] / self.speeds[w]
            if model is OverheadModel.PER_WORKER:
                begin = t + h
            elif model is OverheadModel.SERIALIZED_MASTER:
                np.maximum(master_free, t, out=master_free)
                master_free += h
                begin = master_free
            else:  # POST_HOC — scheduling is free inside the simulation
                begin = t
            end = begin + elapsed
            ready[rows, w] = end
            compute[rows, w] += elapsed
            counts[rows, w] += 1
            np.maximum(makespan, end, out=makespan)

        total = task_times.sum(axis=1)
        # Each replication carries its share of the block's wall time;
        # ``events`` is the chunk-assignment count, as on the scalar path.
        wall_share = (time.perf_counter() - t_wall) / reps
        return [
            RunResult(
                technique=label,
                n=self.params.n,
                p=p,
                h=h,
                overhead_model=model,
                makespan=float(makespan[r]),
                compute_times=compute[r].tolist(),
                chunks_per_worker=counts[r].tolist(),
                num_chunks=num_chunks,
                total_task_time=float(total[r]),
                extras={"lost_chunks": 0, "lost_tasks": 0},
                stats=RunStats(
                    fast_path=True,
                    events=num_chunks,
                    heap_peak=p,
                    live_peak=p,
                    wall_time=wall_share,
                    extra={"block_reps": reps},
                ),
            )
            for r in range(reps)
        ]


def batch_replicate(
    simulator: BatchDirectSimulator,
    factory: Callable[[SchedulingParams], Scheduler],
    runs: int,
    seed: int | None = None,
) -> list[RunResult]:
    """Batched counterpart of :func:`repro.directsim.simulator.replicate`."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    return simulator.run_batch(factory, runs, np.random.SeedSequence(seed))
