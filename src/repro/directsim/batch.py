"""Vectorized batch-replication kernel for the direct simulator.

The BOLD reproduction needs up to 1,000 replications per (technique, n,
p) cell; :class:`~repro.directsim.simulator.DirectSimulator` executes
each replication through a pure-Python heap loop with one RNG draw and
one scheduler call per chunk — half a million Python iterations per SS
replication at n = 524,288.  This module simulates all R replications of
one cell in bulk NumPy operations instead, in three layers:

1. **Chunk-schedule precomputation** — for techniques whose chunk
   sequence is a pure function of ``(n, p, params)``
   (:attr:`~repro.core.base.Scheduler.deterministic_schedule`), the
   ``(start, size)`` sequence is computed once per cell via
   :meth:`~repro.core.base.Scheduler.chunk_schedule` and reused across
   all replications.
2. **Bulk sampling** — :meth:`~repro.workloads.distributions.Workload.
   chunk_times_batch` draws the whole ``(R, C)`` matrix of chunk times
   in one vectorised call per cell (Gamma for exponential, ``k * v``
   for constant, ...).
3. **Vectorized worker assignment** — the heap is replaced by an
   argmin-over-ready-times loop operating on the whole ``(R, p)`` ready
   matrix at once.  Chunks are assigned in the same earliest-ready,
   lowest-index order as the scalar simulator, so for deterministic
   workloads the per-replication results are *identical* to
   ``DirectSimulator`` and for stochastic workloads they are equal in
   distribution (the scalar simulator remains the reference oracle; see
   ``tests/test_batch_kernel.py``).

Techniques whose chunk sequence *cannot* be precomputed — the adaptive
feedback loops (AWF family, AF, BOLD) and the worker-dependent
schedules (WF, PLS, RND) — run on the **batched stepping kernel**
instead: all R replications advance in lock-step, one scheduling round
at a time, with each technique's adaptive state held as ``(R,)``/``(R,
p)`` arrays (:mod:`repro.core.stepping`).  One round performs one
argmin worker pop, one deferred completion report, one vectorized
chunk-size update and one bulk chunk-time draw per live replication —
the same fidelity contract as the closed-form path (bit-identical for
deterministic workloads, equal in distribution otherwise; see
``tests/test_stepping_kernel.py`` and docs/simulators.md).

Perturbation scenarios run vectorized too: per-chunk speed-fluctuation
multipliers (triangle waves, step slowdowns, lognormal load noise —
the models a :class:`repro.scenarios.Scenario` compiles to) apply on
both paths, and fail-stop fault injection with work loss runs on the
stepping path (dead PEs are masked out of the argmin pop; lost chunk
regions requeue through the same LIFO stack semantics as the scalar
scheduler).  Deterministic perturbations stay bit-identical to the
scalar simulator; lognormal noise shares the block RNG, so stochastic
scenarios are equal in distribution only.  Fail-stop on a *closed-form*
technique is the one unsupported combination (dynamic requeueing
invalidates a precomputed schedule) — callers fall back to the scalar
simulator there.  Per-chunk execution logs are recorded only on request
(``record_chunks=True``) and only on the stepping path — the
closed-form path keeps its log-free fast lane.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.base import ChunkRecord, Scheduler
from ..core.params import SchedulingParams
from ..core.schedule import (
    ScheduleUnavailableError,
    closed_form_supported,
    precompute_schedule,
)
from ..core.stepping import stepping_state_for, stepping_supported
from ..obs.stats import RunStats
from ..results import ChunkExecution, RunResult
from ..workloads.distributions import Workload
from ..workloads.generator import make_rng
from .accounting import OverheadModel
from .faults import (
    AllWorkersFailedError,
    CompositeFluctuation,
    CyclicFluctuation,
    FailStop,
    Fluctuation,
    LognormalFluctuation,
    StepFluctuation,
)

#: cap on R * C elements per simulated block (~128 MB of float64), so
#: huge cells (SS at n = 524,288) stream through in replication blocks.
DEFAULT_MAX_BLOCK_ELEMENTS = 1 << 24

#: the stepping path holds ~this many (R, p) state arrays alive at once
#: (kernel counters plus the technique state), so its replication blocks
#: are sized to keep the total near ``max_block_elements`` elements.
_STEPPING_STATE_ARRAYS = 8


def batch_supported(technique: str | type[Scheduler]) -> bool:
    """True when ``technique`` can run on the batch kernel.

    Either of the two vectorized paths qualifies: a precomputable
    closed-form chunk schedule (:func:`repro.core.schedule.
    closed_form_supported`, shared with the MSG fast path) or a
    registered batched stepping state (:func:`repro.core.stepping.
    stepping_supported`) for the feedback-loop techniques.
    """
    return closed_form_supported(technique) or stepping_supported(technique)


#: backward-compatible alias: the shared precomputation error
BatchScheduleUnavailableError = ScheduleUnavailableError


class _PerturbationArrays:
    """Fault/fluctuation models lowered to per-worker arrays.

    Built once per simulator from the scalar mechanism models in
    :mod:`repro.directsim.faults`; the kernels index the arrays with the
    popped worker vector each round.  Only the model types a
    :class:`repro.scenarios.Scenario` compiles to have an array form —
    an arbitrary :class:`~repro.directsim.faults.Fluctuation` callable
    is rejected at construction time with a pointer to the scalar
    simulator.

    The deterministic models (wave, step) use only exactly-rounded IEEE
    operations in the same order as their scalar counterparts, so the
    multipliers — and everything downstream — are bit-identical to
    :class:`~repro.directsim.simulator.DirectSimulator`.  Lognormal
    noise draws from the shared block RNG instead of one interleaved
    draw per pop, so stochastic scenarios are equal in distribution
    only.
    """

    __slots__ = ("fail_times", "_components")

    def __init__(
        self,
        p: int,
        failures: FailStop | None,
        fluctuation: Fluctuation | None,
    ):
        self.fail_times: np.ndarray | None = None
        if failures is not None:
            if not isinstance(failures, FailStop):
                raise ValueError(
                    f"cannot vectorize failure model "
                    f"{type(failures).__name__}; use the scalar direct "
                    "simulator"
                )
            fail = np.full(p, np.inf)
            for worker, fail_time in failures.fail_times.items():
                if worker < p:  # like the scalar dict: extra PEs never pop
                    fail[worker] = float(fail_time)
            self.fail_times = fail
        self._components: list[tuple] = []
        for component in self._flatten(fluctuation):
            lowered = self._lower(p, component)
            if lowered is not None:
                self._components.append(lowered)

    @staticmethod
    def _flatten(fluctuation: Fluctuation | None) -> tuple:
        if fluctuation is None:
            return ()
        if isinstance(fluctuation, CompositeFluctuation):
            return fluctuation.components
        return (fluctuation,)

    @staticmethod
    def _lower(p: int, component) -> tuple | None:
        if isinstance(component, CyclicFluctuation):
            phase = np.zeros(p)
            mask = np.zeros(p, dtype=bool)
            for worker, value in component.phases.items():
                if worker < p:
                    phase[worker] = float(value)
                    mask[worker] = True
            return ("wave", component.period, component.amplitude,
                    phase, mask)
        if isinstance(component, StepFluctuation):
            times = np.full(p, np.inf)
            factors = np.ones(p)
            for worker, (step_time, factor) in component.factors.items():
                if worker < p:
                    times[worker] = float(step_time)
                    factors[worker] = float(factor)
            return ("step", times, factors)
        if isinstance(component, LognormalFluctuation):
            if component.sigma == 0:  # scalar returns 1.0 without a draw
                return None
            return ("noise", -component.sigma ** 2 / 2.0, component.sigma)
        raise ValueError(
            f"cannot vectorize fluctuation model "
            f"{type(component).__name__}; use the scalar direct simulator"
        )

    @property
    def has_fluctuation(self) -> bool:
        return bool(self._components)

    def speed_multipliers(
        self, w: np.ndarray, t: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray | None:
        """The per-pop speed factors for workers ``w`` popped at ``t``.

        Factors multiply in component order — the scalar
        :class:`~repro.directsim.faults.CompositeFluctuation` contract —
        and a leading implicit 1.0 is dropped (``1.0 * x == x`` bitwise).
        Returns ``None`` when no fluctuation component is present.
        """
        mult: np.ndarray | None = None
        for component in self._components:
            kind = component[0]
            if kind == "wave":
                _, period, amplitude, phase, mask = component
                x = t / period + phase[w]
                u = x - np.floor(x)
                m = np.where(
                    mask[w],
                    1.0 + amplitude * (4.0 * np.abs(u - 0.5) - 1.0),
                    1.0,
                )
            elif kind == "step":
                _, times, factors = component
                m = np.where(t >= times[w], factors[w], 1.0)
            else:  # noise
                _, mean, sigma = component
                m = rng.lognormal(mean=mean, sigma=sigma, size=t.shape)
            mult = m if mult is None else mult * m
        return mult


class BatchDirectSimulator:
    """Batch-replication counterpart of :class:`DirectSimulator`.

    Takes the same cell description (params, workload, overhead model,
    speeds, start times, failures, fluctuation) but simulates ``reps``
    independent replications per :meth:`run_batch` call using the
    vectorized kernel.  Fluctuation applies on both paths; fail-stop
    fault injection runs on the stepping path only (a precomputed
    closed-form schedule cannot absorb requeued work — use the scalar
    simulator there).  ``record_chunks`` keeps per-chunk execution logs
    on the stepping path only (the closed-form path has no per-chunk
    loop to log from).
    """

    def __init__(
        self,
        params: SchedulingParams,
        workload: Workload,
        overhead_model: OverheadModel = OverheadModel.POST_HOC,
        speeds: Sequence[float] | None = None,
        start_times: Sequence[float] | None = None,
        max_block_elements: int = DEFAULT_MAX_BLOCK_ELEMENTS,
        record_chunks: bool = False,
        failures: FailStop | None = None,
        fluctuation: Fluctuation | None = None,
    ):
        self.params = params
        self.workload = workload
        self.overhead_model = overhead_model
        if speeds is None:
            speeds = [1.0] * params.p
        if len(speeds) != params.p:
            raise ValueError(f"need {params.p} speeds, got {len(speeds)}")
        if any(s <= 0 for s in speeds):
            raise ValueError("speeds must all be positive")
        self.speeds = np.asarray(speeds, dtype=np.float64)
        if start_times is None:
            start_times = [0.0] * params.p
        if len(start_times) != params.p:
            raise ValueError(
                f"need {params.p} start times, got {len(start_times)}"
            )
        if any(t < 0 for t in start_times):
            raise ValueError("start times must be non-negative")
        self.start_times = np.asarray(start_times, dtype=np.float64)
        if max_block_elements < 1:
            raise ValueError("max_block_elements must be >= 1")
        self.max_block_elements = int(max_block_elements)
        self.record_chunks = record_chunks
        self.failures = failures
        self.fluctuation = fluctuation
        # None for a clean system, so the kernels' per-round perturbation
        # branches reduce to one ``is None`` check (scenario=None is a
        # no-op on the hot path — BENCH_PR8.json guards this).
        self._perturb: _PerturbationArrays | None = None
        if failures is not None or fluctuation is not None:
            self._perturb = _PerturbationArrays(
                params.p, failures, fluctuation
            )

    def run_batch(
        self,
        scheduler: Scheduler | Callable[[SchedulingParams], Scheduler],
        reps: int,
        seed: int | np.random.SeedSequence | None = None,
    ) -> list[RunResult]:
        """Simulate ``reps`` independent replications of the cell.

        ``scheduler`` may be a fresh instance or a factory, exactly as
        for :meth:`DirectSimulator.run`.  Closed-form techniques take
        the schedule-precomputation path; feedback-loop techniques with
        a registered stepping state take the lock-step round kernel
        (the instance then serves as the never-mutated prototype its
        batched state is built from).  All replications share one RNG
        stream spawned from ``seed`` (how that stream is split over
        internal blocks is an implementation detail — per-replication
        results are equal in distribution to scalar runs, not
        draw-for-draw identical for stochastic workloads).
        """
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if not isinstance(scheduler, Scheduler):
            scheduler = scheduler(self.params)
        rng = make_rng(seed)
        results: list[RunResult] = []
        done = 0
        if closed_form_supported(scheduler):
            if self._perturb is not None and (
                self._perturb.fail_times is not None
            ):
                raise ScheduleUnavailableError(
                    f"{scheduler.label or scheduler.name} has only a "
                    "precomputed closed-form schedule, which fail-stop "
                    "requeueing would invalidate; use the scalar "
                    "simulator for fault scenarios on this technique"
                )
            schedule = precompute_schedule(scheduler)
            label, starts, sizes = (
                schedule.label, schedule.starts, schedule.sizes
            )
            block = max(1, self.max_block_elements // max(1, sizes.size))
            while done < reps:
                r = min(block, reps - done)
                results.extend(self._run_block(label, starts, sizes, r, rng))
                done += r
        elif stepping_supported(scheduler):
            block = max(
                1,
                self.max_block_elements
                // (_STEPPING_STATE_ARRAYS * max(1, self.params.p)),
            )
            while done < reps:
                r = min(block, reps - done)
                results.extend(self._run_stepping_block(scheduler, r, rng))
                done += r
        else:
            raise ScheduleUnavailableError(
                f"{scheduler.label or scheduler.name} has neither a "
                "precomputable chunk schedule nor a batched stepping "
                "state; use a scalar simulator"
            )
        return results

    # -- the kernel ------------------------------------------------------
    def _run_block(
        self,
        label: str,
        starts: np.ndarray,
        sizes: np.ndarray,
        reps: int,
        rng: np.random.Generator,
    ) -> list[RunResult]:
        t_wall = time.perf_counter()
        p = self.params.p
        h = self.params.h
        model = self.overhead_model
        num_chunks = sizes.size

        # Layer 2: one vectorised draw for every (replication, chunk).
        task_times = self.workload.chunk_times_batch(starts, sizes, reps, rng)

        # Layer 3: argmin-over-ready-times assignment, all replications
        # at once.  Matches the scalar heap exactly: the heap holds one
        # entry per worker, pops the (time, worker) minimum — ties break
        # toward the lowest worker index, as argmin does.
        ready = np.tile(self.start_times, (reps, 1))
        compute = np.zeros((reps, p))
        counts = np.zeros((reps, p), dtype=np.int64)
        makespan = np.zeros(reps)
        rows = np.arange(reps)
        if model is OverheadModel.SERIALIZED_MASTER:
            master_free = np.zeros(reps)

        perturb = self._perturb
        for c in range(num_chunks):
            w = np.argmin(ready, axis=1)
            t = ready[rows, w]
            # True division (not multiplication by a reciprocal) so the
            # ready times match the scalar simulator bit-for-bit; the
            # scalar loop multiplies the fluctuation factor into the
            # speed before dividing, so the perturbed branch does too.
            if perturb is None:
                elapsed = task_times[:, c] / self.speeds[w]
            else:
                mult = perturb.speed_multipliers(w, t, rng)
                speed = self.speeds[w] if mult is None else (
                    self.speeds[w] * mult
                )
                elapsed = task_times[:, c] / speed
            if model is OverheadModel.PER_WORKER:
                begin = t + h
            elif model is OverheadModel.SERIALIZED_MASTER:
                np.maximum(master_free, t, out=master_free)
                master_free += h
                begin = master_free
            else:  # POST_HOC — scheduling is free inside the simulation
                begin = t
            end = begin + elapsed
            ready[rows, w] = end
            compute[rows, w] += elapsed
            counts[rows, w] += 1
            np.maximum(makespan, end, out=makespan)

        total = task_times.sum(axis=1)
        # Each replication carries its share of the block's wall time;
        # ``events`` is the chunk-assignment count, as on the scalar path.
        wall_share = (time.perf_counter() - t_wall) / reps
        return [
            RunResult(
                technique=label,
                n=self.params.n,
                p=p,
                h=h,
                overhead_model=model,
                makespan=float(makespan[r]),
                compute_times=compute[r].tolist(),
                chunks_per_worker=counts[r].tolist(),
                num_chunks=num_chunks,
                total_task_time=float(total[r]),
                extras={"lost_chunks": 0, "lost_tasks": 0},
                stats=RunStats(
                    fast_path=True,
                    events=num_chunks,
                    heap_peak=p,
                    live_peak=p,
                    wall_time=wall_share,
                    extra={"block_reps": reps},
                ),
            )
            for r in range(reps)
        ]

    # -- the stepping kernel ---------------------------------------------
    def _run_stepping_block(
        self,
        prototype: Scheduler,
        reps: int,
        rng: np.random.Generator,
    ) -> list[RunResult]:
        """Advance ``reps`` replications in lock-step, one round at a time.

        One round replays one scalar heap pop for every live
        replication, in the scalar loop's exact order: pop the
        earliest-ready worker (argmin; ties break toward the lowest
        index, like the heap), report that worker's pending chunk
        completion to the scheduler state (deferred reporting), compute
        and clip the chunk sizes, then draw the chunk times and advance
        the clocks.  Replications whose tasks are exhausted drop out of
        the round set, exactly as the scalar loop stops popping once
        the scheduler is done (its final pending completions are never
        consulted again, so they are not reported).

        Under a fail-stop model the round additionally mirrors the
        scalar fault semantics: a popped worker that is already dead
        reports its pending completion (the chunk finished before the
        failure) and is masked out of future pops; a worker that dies
        mid-chunk loses the chunk — its task region is pushed onto a
        per-replication LIFO requeue stack that overrides the next
        chunk-size assignments, exactly like the scalar scheduler's
        ``requeue_chunk``/``next_chunk`` pair.  A replication whose
        live workers are all dead while tasks remain raises
        :class:`~repro.directsim.faults.AllWorkersFailedError`, like
        the scalar loop's empty-heap exit.
        """
        t_wall = time.perf_counter()
        p = self.params.p
        h = self.params.h
        model = self.overhead_model
        label = prototype.label or prototype.name
        state = stepping_state_for(prototype, reps)

        remaining = np.full(reps, self.params.n, dtype=np.int64)
        outstanding = np.zeros(reps, dtype=np.int64)
        next_task = np.zeros(reps, dtype=np.int64)
        num_chunks = np.zeros(reps, dtype=np.int64)
        ready = np.tile(self.start_times, (reps, 1))
        compute = np.zeros((reps, p))
        counts = np.zeros((reps, p), dtype=np.int64)
        makespan = np.zeros(reps)
        total = np.zeros(reps)
        pend_size = np.zeros((reps, p), dtype=np.int64)
        pend_elapsed = np.zeros((reps, p))
        if model is OverheadModel.SERIALIZED_MASTER:
            master_free = np.zeros(reps)
        logs: list[list[ChunkExecution]] | None = (
            [[] for _ in range(reps)] if self.record_chunks else None
        )

        perturb = self._perturb
        fail_times = perturb.fail_times if perturb is not None else None
        lost_chunks = np.zeros(reps, dtype=np.int64)
        lost_tasks = np.zeros(reps, dtype=np.int64)
        if fail_times is not None:
            # Scalar Scheduler._requeued: one LIFO (start, region) stack
            # per replication, consulted before advancing next_task.
            requeued: list[list[tuple[int, int]]] = [[] for _ in range(reps)]
            has_requeue = np.zeros(reps, dtype=bool)

        while True:
            rows = np.flatnonzero(remaining > 0)
            if rows.size == 0:
                break
            w = np.argmin(ready[rows], axis=1)
            t = ready[rows, w]
            if fail_times is not None and not np.all(np.isfinite(t)):
                # The argmin found only dead (inf-ready) workers for
                # some replication: the scalar loop's empty-heap exit.
                rep = int(rows[np.flatnonzero(~np.isfinite(t))[0]])
                raise AllWorkersFailedError(
                    f"{int(remaining[rep])} tasks remain but no live "
                    f"worker can execute them (replication {rep})"
                )

            # Deferred completion reporting happens before the dead-PE
            # check, like the scalar loop: a chunk that finished before
            # its worker's failure still feeds the adaptive state.
            fin_size = pend_size[rows, w]
            fin = fin_size > 0
            if fin.any():
                fr, fw = rows[fin], w[fin]
                outstanding[fr] -= fin_size[fin]
                state.record_finished(
                    fr, fw, fin_size[fin], pend_elapsed[fr, fw]
                )
                pend_size[fr, fw] = 0

            if fail_times is not None:
                pre_dead = t >= fail_times[w]
                if pre_dead.any():
                    # Dead PEs never request work again: mask them out
                    # of every future argmin pop.
                    ready[rows[pre_dead], w[pre_dead]] = np.inf
                    keep = ~pre_dead
                    rows, w, t = rows[keep], w[keep], t[keep]
                    if rows.size == 0:
                        continue

            sizes = state.chunk_sizes(
                rows, w, remaining[rows], outstanding[rows]
            )
            # The scalar next_chunk clip: never beyond the remaining
            # tasks, and always progress while work remains.
            sizes = np.maximum(
                np.minimum(sizes.astype(np.int64), remaining[rows]), 1
            )
            if fail_times is None or not has_requeue[rows].any():
                starts = next_task[rows]
                next_task[rows] += sizes
            else:
                # Scalar next_chunk: when the requeue stack is
                # non-empty, the clipped size is served from the
                # stack's top region (split or consumed whole) and
                # next_task does not advance.
                starts = next_task[rows].copy()
                advance = sizes.copy()
                for k in np.flatnonzero(has_requeue[rows]):
                    stack = requeued[rows[k]]
                    rstart, region = stack.pop()
                    size_k = int(sizes[k])
                    if size_k < region:
                        stack.append((rstart + size_k, region - size_k))
                    else:
                        sizes[k] = region
                    starts[k] = rstart
                    advance[k] = 0
                    has_requeue[rows[k]] = bool(stack)
                next_task[rows] += advance
            remaining[rows] -= sizes
            outstanding[rows] += sizes
            num_chunks[rows] += 1
            state.after_assignment(rows, w, sizes)

            task_time = self.workload.chunk_times_round(starts, sizes, rng)
            if perturb is None:
                elapsed = task_time / self.speeds[w]
            else:
                # The scalar loop multiplies the fluctuation factor
                # into the speed before the (bit-exact) true division.
                mult = perturb.speed_multipliers(w, t, rng)
                speed = self.speeds[w] if mult is None else (
                    self.speeds[w] * mult
                )
                elapsed = task_time / speed
            if model is OverheadModel.PER_WORKER:
                begin = t + h
            elif model is OverheadModel.SERIALIZED_MASTER:
                # The scalar loop advances master_free before the
                # mid-chunk failure check, so a lost chunk still
                # occupies the master.
                mf = np.maximum(master_free[rows], t) + h
                master_free[rows] = mf
                begin = mf
            else:  # POST_HOC — scheduling is free inside the simulation
                begin = t
            end = begin + elapsed

            if fail_times is not None:
                died = fail_times[w] < end
                if died.any():
                    # The PE dies mid-chunk: work is lost and the task
                    # region requeued; the PE never pops again.
                    dr, dw = rows[died], w[died]
                    dsizes = sizes[died]
                    remaining[dr] += dsizes
                    outstanding[dr] -= dsizes
                    lost_chunks[dr] += 1
                    lost_tasks[dr] += dsizes
                    ready[dr, dw] = np.inf
                    dstarts = starts[died]
                    for k in range(dr.size):
                        requeued[dr[k]].append(
                            (int(dstarts[k]), int(dsizes[k]))
                        )
                        has_requeue[dr[k]] = True
                    keep = ~died
                    rows, w, sizes, starts = (
                        rows[keep], w[keep], sizes[keep], starts[keep]
                    )
                    task_time, elapsed = task_time[keep], elapsed[keep]
                    begin, end = begin[keep], end[keep]
                    if rows.size == 0:
                        continue

            ready[rows, w] = end
            compute[rows, w] += elapsed
            counts[rows, w] += 1
            total[rows] += task_time
            # Per-worker end times only ever grow, so the running max
            # over all chunk ends equals the scalar max(finish).
            makespan[rows] = np.maximum(makespan[rows], end)
            pend_size[rows, w] = sizes
            pend_elapsed[rows, w] = elapsed
            if logs is not None:
                for k in range(rows.size):
                    rep = int(rows[k])
                    logs[rep].append(ChunkExecution(
                        ChunkRecord(
                            index=int(num_chunks[rep]) - 1,
                            worker=int(w[k]),
                            start=int(starts[k]),
                            size=int(sizes[k]),
                        ),
                        float(begin[k]),
                        float(elapsed[k]),
                    ))

        wall_share = (time.perf_counter() - t_wall) / reps
        return [
            RunResult(
                technique=label,
                n=self.params.n,
                p=p,
                h=h,
                overhead_model=model,
                makespan=float(makespan[r]),
                compute_times=compute[r].tolist(),
                chunks_per_worker=counts[r].tolist(),
                num_chunks=int(num_chunks[r]),
                total_task_time=float(total[r]),
                chunk_log=logs[r] if logs is not None else [],
                extras={
                    "lost_chunks": int(lost_chunks[r]),
                    "lost_tasks": int(lost_tasks[r]),
                },
                stats=RunStats(
                    fast_path=True,
                    events=int(num_chunks[r]),
                    heap_peak=p,
                    live_peak=p,
                    wall_time=wall_share,
                    extra={"block_reps": reps},
                ),
            )
            for r in range(reps)
        ]


def batch_replicate(
    simulator: BatchDirectSimulator,
    factory: Callable[[SchedulingParams], Scheduler],
    runs: int,
    seed: int | None = None,
) -> list[RunResult]:
    """Batched counterpart of :func:`repro.directsim.simulator.replicate`."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    return simulator.run_batch(factory, runs, np.random.SeedSequence(seed))
