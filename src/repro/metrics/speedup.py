"""Speedup and the Tzen-Ni performance metrics (TSS publication, Eq. 11-13).

Tzen & Ni instrument the parallel loop so every processor's time splits
into computing (X), scheduling (O) and waiting for synchronisation (W).
With ``L`` the serial workload time and ``P`` processors:

.. math::

   r      = \\frac{L \\cdot P}{X + O + W}   \\quad (speedup)

   \\theta = \\frac{O \\cdot P}{X + O + W}  \\quad (degree\\ of\\ scheduling\\ overhead)

   \\lambda = \\frac{W \\cdot P}{X + O + W} \\quad (degree\\ of\\ load\\ imbalancing)

Since ``X + O + W = P * T`` (every processor is always in one of the three
states until the makespan ``T``), these reduce to ``r = L / T``,
``theta = O_total / T`` and ``lambda = W_total / T``, where the totals sum
over processors.  In the ideal case ``r + theta + lambda = P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a results <-> metrics import cycle at runtime
    from ..results import RunResult


@dataclass(frozen=True)
class TzenNiMetrics:
    """The triple (r, theta, lambda) of one run."""

    speedup: float                 # r
    scheduling_overhead: float     # theta — avg processors wasted scheduling
    load_imbalance: float          # lambda — avg processors wasted waiting

    @property
    def total(self) -> float:
        """r + theta + lambda; at most P (equals P without contention)."""
        return self.speedup + self.scheduling_overhead + self.load_imbalance


def tzen_ni_metrics(result: RunResult,
                    comm_as_overhead: bool = True) -> TzenNiMetrics:
    """Compute (r, theta, lambda) from a run result.

    The scheduling time ``O`` counts ``h`` per scheduling operation plus —
    when ``comm_as_overhead`` and the run recorded request round-trip wait
    times — the time workers spent in the request/assign message exchange,
    which is scheduling overhead in the Tzen-Ni accounting (their O is the
    time spent obtaining loop indices).
    """
    t = result.makespan
    if t <= 0:
        raise ValueError("makespan must be positive to compute metrics")
    p = result.p
    x_total = sum(result.compute_times)
    o_total = result.h * result.num_chunks
    if comm_as_overhead and "wait_times" in result.extras:
        o_total += sum(result.extras["wait_times"])
    o_total = min(o_total, p * t - x_total)
    w_total = p * t - x_total - o_total
    return TzenNiMetrics(
        speedup=result.total_task_time / t,
        scheduling_overhead=o_total / t,
        load_imbalance=w_total / t,
    )


def ideal_speedup(p: int) -> float:
    """The ideal speedup: the number of processors."""
    return float(p)
