"""Discrepancy metrics (Figures 5c/5d .. 8c/8d of the paper).

The paper compares its SimGrid-MSG values against the values of the
original publication:

* *discrepancy* — the signed difference in seconds,
  ``simulated - published`` ("a positive difference indicates that the
  present simulation runs slower");
* *relative discrepancy* — the discrepancy as a percentage of the
  published value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence


def discrepancy(simulated: float, published: float) -> float:
    """Signed difference ``simulated - published`` in seconds."""
    return simulated - published


def relative_discrepancy(simulated: float, published: float) -> float:
    """Signed percentage difference relative to the published value."""
    if published == 0:
        raise ValueError("published value must be non-zero")
    return (simulated - published) / published * 100.0


@dataclass(frozen=True)
class DiscrepancyRow:
    """Discrepancies of one technique across a sweep (e.g. over PEs)."""

    technique: str
    keys: tuple            # sweep points, e.g. PE counts
    simulated: tuple[float, ...]
    published: tuple[float, ...]

    @property
    def discrepancies(self) -> tuple[float, ...]:
        return tuple(
            discrepancy(s, p) for s, p in zip(self.simulated, self.published)
        )

    @property
    def relative_discrepancies(self) -> tuple[float, ...]:
        return tuple(
            relative_discrepancy(s, p)
            for s, p in zip(self.simulated, self.published)
        )

    @property
    def max_abs_discrepancy(self) -> float:
        return max(abs(d) for d in self.discrepancies)

    @property
    def max_abs_relative_discrepancy(self) -> float:
        return max(abs(d) for d in self.relative_discrepancies)


def discrepancy_table(
    simulated: Mapping[str, Sequence[float]],
    published: Mapping[str, Sequence[float]],
    keys: Sequence,
) -> list[DiscrepancyRow]:
    """Build per-technique discrepancy rows for a sweep.

    Both mappings go technique -> one value per sweep key; techniques
    missing from either side are skipped.
    """
    rows = []
    for technique in simulated:
        if technique not in published:
            continue
        sim = tuple(float(v) for v in simulated[technique])
        pub = tuple(float(v) for v in published[technique])
        if len(sim) != len(keys) or len(pub) != len(keys):
            raise ValueError(
                f"{technique}: need {len(keys)} values, got "
                f"{len(sim)} simulated / {len(pub)} published"
            )
        rows.append(
            DiscrepancyRow(
                technique=technique,
                keys=tuple(keys),
                simulated=sim,
                published=pub,
            )
        )
    return rows


def max_abs_relative_discrepancy(
    rows: Sequence[DiscrepancyRow],
    exclude: Sequence[tuple[str, object]] = (),
) -> float:
    """The worst |relative discrepancy| over a set of rows.

    ``exclude`` lists ``(technique, key)`` pairs left out of the maximum —
    the paper excludes the FAC / 2 PEs outlier in the 524288-task
    experiment.
    """
    worst = 0.0
    excluded = set(exclude)
    for row in rows:
        for key, rel in zip(row.keys, row.relative_discrepancies):
            if (row.technique, key) in excluded:
                continue
            if math.isfinite(rel):
                worst = max(worst, abs(rel))
    return worst
