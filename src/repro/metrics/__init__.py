"""Evaluation metrics: wasted time, speedup triple, discrepancies, summaries."""

from .convergence import (
    ConvergenceInfo,
    analyze_convergence,
    convergence_report,
    half_width,
    required_runs,
    running_mean,
)
from .discrepancy import (
    DiscrepancyRow,
    discrepancy,
    discrepancy_table,
    max_abs_relative_discrepancy,
    relative_discrepancy,
)
from .speedup import TzenNiMetrics, ideal_speedup, tzen_ni_metrics
from .stats import (
    BootstrapCI,
    EquivalenceReport,
    KsResult,
    TTestResult,
    bootstrap_ci,
    equivalence_report,
    ks_two_sample,
    welch_t_test,
)
from .summary import Summary, mean_excluding_above, summarize
from .wasted_time import (
    OverheadModel,
    average_wasted_time,
    per_worker_wasted_times,
)

__all__ = [
    "BootstrapCI",
    "ConvergenceInfo",
    "analyze_convergence",
    "convergence_report",
    "half_width",
    "required_runs",
    "running_mean",
    "DiscrepancyRow",
    "EquivalenceReport",
    "KsResult",
    "OverheadModel",
    "Summary",
    "TTestResult",
    "TzenNiMetrics",
    "bootstrap_ci",
    "equivalence_report",
    "ks_two_sample",
    "welch_t_test",
    "average_wasted_time",
    "discrepancy",
    "discrepancy_table",
    "ideal_speedup",
    "max_abs_relative_discrepancy",
    "mean_excluding_above",
    "per_worker_wasted_times",
    "relative_discrepancy",
    "summarize",
    "tzen_ni_metrics",
]
