"""Wasted-time accounting (Section III-B of the paper).

Hagerup defines a worker's *wasted time* in one run as the sum of its idle
time and its scheduling overhead; the *average wasted time* of a run is
the sum over workers divided by the number of workers.  Three models of
where the per-scheduling-operation overhead ``h`` is charged are
implemented (the starred design decision of DESIGN.md §6):

``POST_HOC``
    What the paper's own reproduction does: the simulation runs with free
    scheduling, per-worker wasted time is the idle time
    ``makespan - compute_time``, and afterwards the scheduling overhead
    ``h`` times the number of chunks is added — *per worker on average*,
    i.e. ``h * num_chunks / p``.  (The paper defines a worker's wasted
    time as "the sum of the idle time and of the scheduling overhead of
    this worker" and averages over workers; the consistency check fixing
    the ``1/p`` is the SS experiment at n = 524288, p = 2, whose reported
    average wasted time of 1.3e5 s equals ``h * n / p``.)

``PER_WORKER``
    Hagerup's in-model variant: each worker pays ``h`` immediately before
    executing each of its chunks, so the overhead inflates the makespan
    and each worker's wasted time is its idle time plus ``h`` times its
    chunk count.

``SERIALIZED_MASTER``
    A pessimistic model where scheduling operations serialise through the
    master: a request is serviced no earlier than ``h`` after the
    previous one started being serviced.  Captures master-contention
    effects the other two models ignore.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class OverheadModel(Enum):
    """Where the per-scheduling-operation overhead ``h`` is charged."""

    POST_HOC = "post-hoc"
    PER_WORKER = "per-worker"
    SERIALIZED_MASTER = "serialized-master"

    @classmethod
    def from_name(cls, name: str) -> "OverheadModel":
        for model in cls:
            if model.value == name or model.name.lower() == name.lower():
                return model
        raise ValueError(
            f"unknown overhead model {name!r}; "
            f"known: {[m.value for m in cls]}"
        )


def average_wasted_time(
    makespan: float,
    compute_times: Sequence[float],
    num_chunks: int,
    h: float,
    model: OverheadModel,
) -> float:
    """The paper's average wasted time of one run under a given model.

    For ``POST_HOC`` the average per-worker overhead ``h * num_chunks / p``
    is added after averaging the idle times (Section III-B).  For the
    other two models the overhead is already inside the makespan, so the
    idle-time average *is* the wasted time (it contains the overhead, as
    in Hagerup's definition "idle time plus scheduling overhead").
    """
    p = len(compute_times)
    if p == 0:
        raise ValueError("need at least one worker")
    idle_avg = sum(makespan - c for c in compute_times) / p
    if model is OverheadModel.POST_HOC:
        return idle_avg + h * num_chunks / p
    return idle_avg


def per_worker_wasted_times(
    makespan: float, compute_times: Sequence[float]
) -> list[float]:
    """Per-worker idle times (the in-simulation part of wasted time)."""
    return [makespan - c for c in compute_times]
