"""Statistical machinery for verification via reproducibility.

The paper compares sample means visually (discrepancy plots).  This
module adds the formal counterpart used by the cross-validation tests
and the campaign reports:

* :func:`welch_t_test` — are two simulators' mean wasted times
  compatible?  (Welch's unequal-variance t-test.)
* :func:`bootstrap_ci` — a percentile bootstrap confidence interval for
  a sample statistic (robust for the heavy-tailed FAC cells of Fig. 9).
* :func:`ks_two_sample` — do the two simulators produce the same *per
  run* wasted-time distribution, not just the same mean?
* :func:`equivalence_report` — one-call summary combining the above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class TTestResult:
    """Welch's t-test outcome."""

    statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_difference: float

    def compatible(self, alpha: float = 0.01) -> bool:
        """True when the means are statistically indistinguishable."""
        return self.p_value >= alpha


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Welch's unequal-variance two-sample t-test on the means.

    The p-value uses the Student-t survival function (via SciPy when
    available, otherwise a normal approximation, which is accurate for
    the degrees of freedom the campaigns produce).
    """
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.size < 2 or xb.size < 2:
        raise ValueError("need at least two observations per sample")
    va = xa.var(ddof=1) / xa.size
    vb = xb.var(ddof=1) / xb.size
    diff = float(xa.mean() - xb.mean())
    denom = math.sqrt(va + vb)
    if denom == 0:
        # Identical constant samples: means equal iff diff == 0.
        p = 1.0 if diff == 0 else 0.0
        return TTestResult(0.0 if diff == 0 else math.inf, math.inf, p, diff)
    t = diff / denom
    dof_num = (va + vb) ** 2
    dof_den = va**2 / (xa.size - 1) + vb**2 / (xb.size - 1)
    dof = dof_num / dof_den if dof_den > 0 else math.inf
    p = 2.0 * _t_sf(abs(t), dof)
    return TTestResult(t, dof, p, diff)


def _t_sf(t: float, dof: float) -> float:
    """Student-t survival function, SciPy-backed with a normal fallback."""
    try:
        from scipy import stats

        return float(stats.t.sf(t, dof))
    except ImportError:  # pragma: no cover - scipy ships with the env
        return 0.5 * math.erfc(t / math.sqrt(2.0))


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile bootstrap confidence interval."""

    statistic: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | None = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic`` of ``sample``."""
    xs = np.asarray(sample, dtype=float)
    if xs.size == 0:
        raise ValueError("sample must be non-empty")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, xs.size, size=(resamples, xs.size))
    values = np.apply_along_axis(statistic, 1, xs[idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [alpha, 1.0 - alpha])
    return BootstrapCI(
        statistic=float(statistic(xs)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        resamples=resamples,
    )


@dataclass(frozen=True)
class KsResult:
    """Two-sample Kolmogorov-Smirnov outcome."""

    statistic: float
    p_value: float

    def compatible(self, alpha: float = 0.01) -> bool:
        return self.p_value >= alpha


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test on the per-run distributions."""
    xa = np.sort(np.asarray(a, dtype=float))
    xb = np.sort(np.asarray(b, dtype=float))
    if xa.size == 0 or xb.size == 0:
        raise ValueError("samples must be non-empty")
    pooled = np.concatenate([xa, xb])
    cdf_a = np.searchsorted(xa, pooled, side="right") / xa.size
    cdf_b = np.searchsorted(xb, pooled, side="right") / xb.size
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = xa.size * xb.size / (xa.size + xb.size)
    p = _ks_p_value(d, n_eff)
    return KsResult(statistic=d, p_value=p)


def _ks_p_value(d: float, n_eff: float) -> float:
    """Asymptotic Kolmogorov distribution tail (two-sided)."""
    lam = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * d
    if lam <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


@dataclass(frozen=True)
class EquivalenceReport:
    """Combined evidence that two implementations agree."""

    t_test: TTestResult
    ks: KsResult
    ci_a: BootstrapCI
    ci_b: BootstrapCI
    relative_mean_difference: float

    def agree(self, alpha: float = 0.01,
              max_relative_difference: float = 0.15) -> bool:
        """Mean and distribution compatible, means within a band."""
        return (
            self.t_test.compatible(alpha)
            and self.ks.compatible(alpha)
            and abs(self.relative_mean_difference) <= max_relative_difference
        )


def equivalence_report(a: Sequence[float],
                       b: Sequence[float]) -> EquivalenceReport:
    """Full statistical comparison of two campaigns' per-run metrics."""
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    mean_b = xb.mean()
    rel = float((xa.mean() - mean_b) / mean_b) if mean_b else math.inf
    return EquivalenceReport(
        t_test=welch_t_test(a, b),
        ks=ks_two_sample(a, b),
        ci_a=bootstrap_ci(a),
        ci_b=bootstrap_ci(b),
        relative_mean_difference=rel,
    )
