"""Replication-count analysis: how many runs does a cell need?

The paper reports sample means over 1,000 runs.  Whether 1,000 is enough
depends on the cell: SS's wasted time is overhead-dominated and nearly
deterministic, while FAC at p=2 is heavy-tailed (Figure 9).  These
helpers quantify that:

* :func:`running_mean` — the mean as a function of the number of runs;
* :func:`required_runs` — runs needed for a target CI half-width;
* :func:`convergence_report` — a table of both for a sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def running_mean(values: Sequence[float]) -> np.ndarray:
    """Mean of the first k values, for every k."""
    xs = np.asarray(values, dtype=float)
    if xs.size == 0:
        raise ValueError("values must be non-empty")
    return np.cumsum(xs) / np.arange(1, xs.size + 1)


def half_width(values: Sequence[float], z: float = 1.96) -> float:
    """Normal-approximation CI half-width of the mean."""
    xs = np.asarray(values, dtype=float)
    if xs.size < 2:
        return math.inf
    return z * xs.std(ddof=1) / math.sqrt(xs.size)


def required_runs(
    values: Sequence[float],
    relative_precision: float = 0.05,
    z: float = 1.96,
) -> int:
    """Estimated runs for a CI half-width of ``relative_precision * mean``.

    Uses the pilot sample's variance; a heavy-tailed cell (Figure 9's
    FAC) will request orders of magnitude more runs than SS.
    """
    xs = np.asarray(values, dtype=float)
    if xs.size < 2:
        raise ValueError("need a pilot sample of at least two runs")
    if not 0 < relative_precision:
        raise ValueError("relative_precision must be positive")
    mean = xs.mean()
    if mean == 0:
        raise ValueError("cannot target relative precision of a zero mean")
    sigma = xs.std(ddof=1)
    target = abs(relative_precision * mean)
    return max(2, math.ceil((z * sigma / target) ** 2))


@dataclass(frozen=True)
class ConvergenceInfo:
    """Summary of a sample's convergence behaviour."""

    runs: int
    mean: float
    half_width: float
    relative_half_width: float
    runs_for_5_percent: int
    runs_for_1_percent: int


def analyze_convergence(values: Sequence[float]) -> ConvergenceInfo:
    """One-call convergence summary of a per-run metric sample."""
    xs = np.asarray(values, dtype=float)
    hw = half_width(xs)
    mean = float(xs.mean())
    return ConvergenceInfo(
        runs=int(xs.size),
        mean=mean,
        half_width=hw,
        relative_half_width=hw / abs(mean) if mean else math.inf,
        runs_for_5_percent=required_runs(xs, 0.05),
        runs_for_1_percent=required_runs(xs, 0.01),
    )


def convergence_report(samples: dict[str, Sequence[float]]) -> str:
    """ASCII table of convergence info per labelled sample."""
    lines = [
        f"{'cell':>16} {'runs':>6} {'mean':>10} {'±CI':>9} "
        f"{'rel':>7} {'n(5%)':>8} {'n(1%)':>9}"
    ]
    for label, values in samples.items():
        info = analyze_convergence(values)
        lines.append(
            f"{label:>16} {info.runs:>6} {info.mean:>10.3f} "
            f"{info.half_width:>9.3f} {info.relative_half_width * 100:>6.1f}% "
            f"{info.runs_for_5_percent:>8} {info.runs_for_1_percent:>9}"
        )
    return "\n".join(lines)
