"""Summary statistics over replicated runs.

The paper reports sample means over 1,000 runs and, for the Figure 9
outlier analysis, a mean with values above a threshold excluded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Mean, spread and count of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI of the mean (default 95%)."""
        half = z * self.sem
        return (self.mean - half, self.mean + half)


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample (ddof=1 std)."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


def mean_excluding_above(values: Sequence[float],
                         threshold: float) -> tuple[float, int]:
    """Mean of values at or below ``threshold``; returns (mean, n_excluded).

    Figure 9's analysis: excluding the 15 runs above 400 s brings the
    FAC / 2 PEs / 524288 tasks average down to 25.82 s.
    """
    kept = [v for v in values if v <= threshold]
    excluded = len(values) - len(kept)
    if not kept:
        raise ValueError("threshold excludes every value")
    return sum(kept) / len(kept), excluded
