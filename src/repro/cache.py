"""Content-addressed, on-disk cache of simulation results.

PRs 1-3 made runs bit-identical functions of their :class:`~repro.
experiments.runner.RunTask` description — the same task always produces
the same :class:`~repro.results.RunResult`.  That makes results
*cacheable by construction*: this module stores them on disk keyed by a
stable content hash of the task identity, so re-running an identical
campaign is a set of disk lookups instead of a simulation, and
concurrent campaigns against the same directory share work.

Key derivation
--------------
The cache key is a SHA-256 over

* the task's ``derived_entropy()`` — itself a content hash of every
  field that seeds a run (technique, params, workload, the backend's
  *entropy namespace*, overhead model, platform XML, per-worker speeds,
  start times, technique kwargs).  Backends that are bit-identical to
  another share its namespace (``msg-fast`` uses ``msg``), so a cache
  populated by one serves the other;
* the explicit ``seed_entropy`` (distinct replications are distinct
  entries);
* ``collect_chunk_log`` — a traced run carries a populated
  ``chunk_log``, so it is a different *result* even though it is seeded
  identically;
* the namespace backend's per-task result version
  (:meth:`~repro.backends.SimulationBackend.result_version_for`) —
  bumping it invalidates the cached results whose observables an
  intentional simulator change altered, while tasks the change serves
  bit-identically keep their keys (and stay clean hits);
* the cache schema version, so stale formats miss cleanly; and,
* for replication sweeps, the replication count and campaign seed
  (sweep results do not depend on the base task's ``seed_entropy``,
  which the expansion overrides, so sweep keys exclude it).

Storage
-------
``<root>/objects/<k[:2]>/<key>.pkl`` holds one pickled entry: schema
version, a human-readable ``describe`` block, per-entry provenance
(environment snapshot, platform XML hash, backend that actually ran,
fallback events), the host seconds the fresh computation cost, and the
results themselves.  Writes land in a temporary file and move into
place with :func:`os.replace` (the same atomicity discipline as
``CampaignRecord.save``), so readers only ever see complete entries and
concurrent writers of the same key are harmless — both write identical
bytes.  ``<root>/sessions/`` accumulates one small JSON per process
session with hit/miss/store counters, which ``repro-dls cache stats``
aggregates.

Observability
-------------
While a run journal is active every lookup/store/verification writes a
``cache`` record; while a metrics registry is active the cache feeds
``cache_{hits,misses,stores,evictions}_total`` counters,
``cache_{read,written}_bytes_total``, and a ``cache_lookup_seconds``
histogram.  A cached result is as auditable as a fresh one.

Verification
------------
``verify_fraction`` re-simulates that fraction of cache hits and
compares the fresh results against the stored ones
(:class:`CacheVerificationError` on divergence) — the sampling guard
behind the CLI's ``--cache-verify``.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:
    from .experiments.runner import RunTask
    from .results import RunResult

__all__ = [
    "CacheEntry",
    "CacheStats",
    "CacheVerificationError",
    "ResultCache",
    "active_cache",
    "cache_to",
    "clear_cache",
    "deactivate_in_worker",
    "default_cache_dir",
    "set_cache",
    "suspended",
]

#: bump to invalidate every existing cache entry (stale schemas miss)
SCHEMA_VERSION = 1

#: environment variable naming the default cache directory
CACHE_ENV_VAR = "REPRO_CACHE"

#: exception types unpickling a corrupt, truncated, or foreign entry is
#: expected to raise.  Lookups and gc treat exactly these as "the entry
#: is unreadable" (a clean miss / a discard, with a journal record and a
#: ``cache_corrupt_entries_total`` tick); anything else — a MemoryError,
#: a KeyboardInterrupt, a bug in a result class's ``__setstate__`` —
#: propagates instead of being swallowed as corruption.
UNPICKLE_ERRORS: tuple[type[BaseException], ...] = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    ValueError,
)


class CacheVerificationError(RuntimeError):
    """A cached result diverged from a fresh re-simulation.

    Either the cache entry was corrupted/poisoned, or something that
    affects results is missing from the cache key — both are bugs that
    must fail loudly, never be served silently.
    """


@dataclass
class CacheStats:
    """Counters of one cache session (one activated process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    verified: int = 0
    stale: int = 0
    errors: int = 0
    #: unreadable (corrupt/truncated/foreign) entries encountered —
    #: served as clean misses by lookups, discarded by gc
    corrupt: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: estimated host-seconds of simulation avoided by hits (sum of the
    #: stored entries' fresh-computation cost)
    saved_wall_s: float = 0.0
    lookup_s_total: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, in [0, 1] (0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "verified": self.verified,
            "stale": self.stale,
            "errors": self.errors,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "saved_wall_s": round(self.saved_wall_s, 6),
            "lookup_s_total": round(self.lookup_s_total, 6),
            "hit_rate_percent": round(100.0 * self.hit_rate, 2),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CacheStats":
        return cls(**{
            f: data.get(f, 0)
            for f in (
                "hits", "misses", "stores", "verified", "stale", "errors",
                "corrupt", "evictions", "bytes_read", "bytes_written",
                "saved_wall_s", "lookup_s_total",
            )
        })

    def merge(self, other: "CacheStats") -> None:
        for name in (
            "hits", "misses", "stores", "verified", "stale", "errors",
            "corrupt", "evictions", "bytes_read", "bytes_written",
            "saved_wall_s", "lookup_s_total",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class CacheEntry:
    """One deserialized cache entry: results plus their provenance."""

    key: str
    kind: str
    describe: dict
    provenance: dict
    wall_time_s: float
    created: float
    results: list = field(default_factory=list)


def default_cache_dir() -> str | None:
    """The ``REPRO_CACHE`` environment override (None = caching off)."""
    value = os.environ.get(CACHE_ENV_VAR)
    return value or None


def _namespace_result_version(task: "RunTask") -> int:
    """The result version of the task's entropy-namespace backend.

    Backends that are bit-identical to another (msg-fast to msg) share
    its namespace *and* its result version, so a simulator change that
    bumps the version invalidates both sides of the equivalence.  The
    version is resolved *per task* (``result_version_for``), so a
    simulator change that alters only some cells' observables — e.g.
    the batch stepping kernel replacing the scalar fallback for
    stochastic adaptive cells — bumps exactly those cells' keys and
    leaves bit-identical entries as clean hits.
    """
    from .backends import get_backend

    backend = get_backend(task.simulator)
    try:
        namespace = get_backend(backend.entropy_namespace)
    except KeyError:  # namespace is not itself a registered backend
        namespace = backend
    return namespace.result_version_for(task)


class ResultCache:
    """A content-addressed on-disk store of :class:`RunResult` lists.

    Safe for concurrent use by independent processes: entries are
    written atomically (tempfile + ``os.replace``) and deterministic in
    their key, so the worst concurrent case is two processes computing
    the same cell once each — transient duplicate work, never a corrupt
    or wrong entry.
    """

    def __init__(
        self,
        root: str | Path,
        verify_fraction: float = 0.0,
        verify_rng: random.Random | None = None,
    ):
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError("verify_fraction must be in [0, 1]")
        self.root = Path(root)
        self.verify_fraction = verify_fraction
        self._verify_rng = verify_rng if verify_rng is not None else (
            random.Random()
        )
        self.stats = CacheStats()
        self._session_flushed = False

    # -- key derivation ---------------------------------------------------
    @staticmethod
    def _digest(parts: Sequence[str]) -> str:
        import hashlib

        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def _identity_parts(self, task: "RunTask", kind: str) -> list[str]:
        return [
            f"repro-cache-v{SCHEMA_VERSION}",
            kind,
            ",".join(str(v) for v in task.derived_entropy()),
            f"chunk_log={int(bool(task.collect_chunk_log))}",
            f"results-v{_namespace_result_version(task)}",
        ]

    def task_key(self, task: "RunTask") -> str:
        """The content key of one single-run task (seed entropy included)."""
        parts = self._identity_parts(task, "task")
        parts.append(",".join(str(v) for v in task.seed_entropy))
        return self._digest(parts)

    def sweep_key(
        self, task: "RunTask", runs: int, campaign_seed: int | None
    ) -> str:
        """The content key of a whole replication sweep of one cell.

        The base task's ``seed_entropy`` is excluded: replication
        expansion overrides it, so sweep results cannot depend on it.
        """
        parts = self._identity_parts(task, "sweep")
        parts.append(f"runs={runs}")
        parts.append(f"campaign_seed={campaign_seed!r}")
        return self._digest(parts)

    # -- storage ----------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _journal(self, record: dict) -> None:
        from .obs.journal import active_journal

        journal = active_journal()
        if journal is not None:
            journal.write({"kind": "cache", **record})

    def _metrics_counter(self, name: str, help: str, amount: float) -> None:
        from .obs import metrics as obs_metrics

        registry = obs_metrics.active_registry()
        if registry is not None and amount:
            registry.counter(name, help).incr(amount)

    def _observe_lookup(self, seconds: float) -> None:
        from .obs import metrics as obs_metrics

        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.histogram(
                "cache_lookup_seconds", "result-cache lookup latency"
            ).observe(seconds)

    def _note_corrupt(self, key: str, where: str, reason: str) -> None:
        """Count and journal one unreadable entry — never silently.

        A corrupt entry is still served as a clean miss (lookups) or
        discarded (gc), but every occurrence ticks the session stats,
        the ``cache_corrupt_entries_total`` counter, and writes a
        ``cache`` journal record, so real failures (a broken writer, a
        result class that no longer unpickles) are visible instead of
        masquerading as cache misses.
        """
        self.stats.errors += 1
        self.stats.corrupt += 1
        self._metrics_counter(
            "cache_corrupt_entries_total",
            "unreadable result-cache entries discarded",
            1,
        )
        self._journal({
            "op": "corrupt", "key": key[:16], "where": where,
            "reason": reason,
        })

    def get(self, key: str, describe: dict | None = None) -> CacheEntry | None:
        """Look up one entry; None on miss, stale schema, or corruption.

        Every outcome is counted (and journaled/metered while a journal
        or metrics registry is active); a stale or unreadable entry is a
        clean miss, never an error surfaced to the campaign.
        """
        t0 = time.perf_counter()
        path = self._object_path(key)
        entry: CacheEntry | None = None
        try:
            data = path.read_bytes()
        except OSError:
            data = None
        if data is not None:
            payload = None
            try:
                payload = pickle.loads(data)
            except UNPICKLE_ERRORS as exc:
                self._note_corrupt(
                    key, "get", f"{type(exc).__name__}: {exc}"
                )
            if isinstance(payload, dict):
                if (
                    payload.get("schema") == SCHEMA_VERSION
                    and payload.get("key") == key
                ):
                    entry = CacheEntry(
                        key=key,
                        kind=payload.get("kind", "task"),
                        describe=dict(payload.get("describe", {})),
                        provenance=dict(payload.get("provenance", {})),
                        wall_time_s=float(payload.get("wall_time_s", 0.0)),
                        created=float(payload.get("created", 0.0)),
                        results=list(payload.get("results", [])),
                    )
                else:
                    self.stats.stale += 1
            elif payload is not None:
                self._note_corrupt(
                    key, "get",
                    f"payload is {type(payload).__name__}, not a dict",
                )
        elapsed = time.perf_counter() - t0
        self.stats.lookup_s_total += elapsed
        self._observe_lookup(elapsed)
        record = {"key": key[:16], **(describe or {})}
        if entry is not None:
            self.stats.hits += 1
            self.stats.bytes_read += len(data)
            self.stats.saved_wall_s += entry.wall_time_s
            self._metrics_counter(
                "cache_hits_total", "result-cache hits", 1
            )
            self._metrics_counter(
                "cache_read_bytes_total", "result-cache bytes read",
                len(data),
            )
            self._journal({
                "op": "hit",
                "saved_wall_s": round(entry.wall_time_s, 6),
                "backend": entry.provenance.get("backend", ""),
                **record,
            })
        else:
            self.stats.misses += 1
            self._metrics_counter(
                "cache_misses_total", "result-cache misses", 1
            )
            self._journal({"op": "miss", **record})
        return entry

    def put(
        self,
        key: str,
        results: Sequence["RunResult"],
        *,
        kind: str = "task",
        describe: dict | None = None,
        wall_time_s: float = 0.0,
        backend: str = "",
        fallbacks: Sequence = (),
        platform=None,
    ) -> int:
        """Store one entry atomically; returns the bytes written.

        ``backend`` names the substrate that actually produced the
        results (after any capability fallback) and ``fallbacks`` the
        :class:`~repro.backends.FallbackEvent` objects recorded while
        producing them — both land in the entry's provenance alongside
        the environment snapshot (and the platform XML hash when a
        platform is in play), so a cached result is as auditable as a
        fresh one.
        """
        from .obs.provenance import capture_provenance

        provenance = capture_provenance(platform)
        provenance["backend"] = backend
        provenance["fallbacks"] = [e.to_json() for e in fallbacks]
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "describe": dict(describe or {}),
            "provenance": provenance,
            "wall_time_s": float(wall_time_s),
            "created": time.time(),
            "results": list(results),
        }
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.bytes_written += len(data)
        self._metrics_counter(
            "cache_stores_total", "result-cache entries stored", 1
        )
        self._metrics_counter(
            "cache_written_bytes_total", "result-cache bytes written",
            len(data),
        )
        self._journal({
            "op": "store",
            "key": key[:16],
            "bytes": len(data),
            "wall_time_s": round(wall_time_s, 6),
            "backend": backend,
            **(describe or {}),
        })
        return len(data)

    # -- verification -----------------------------------------------------
    def maybe_verify(
        self,
        key: str,
        entry: CacheEntry,
        recompute: Callable[[], Sequence["RunResult"]],
        describe: dict | None = None,
    ) -> bool:
        """Re-simulate a sampled fraction of hits; fail loudly on drift.

        Returns True when this hit was selected and verified.  Raises
        :class:`CacheVerificationError` when the fresh results differ
        from the stored ones in any compared field (``RunResult``
        equality, which excludes observability stats).
        """
        if self.verify_fraction <= 0.0:
            return False
        if (
            self.verify_fraction < 1.0
            and self._verify_rng.random() >= self.verify_fraction
        ):
            return False
        fresh = list(recompute())
        stored = list(entry.results)
        if fresh != stored:
            divergent = len(stored) if len(fresh) != len(stored) else next(
                i for i, (a, b) in enumerate(zip(fresh, stored)) if a != b
            )
            label = ", ".join(
                f"{k}={v}" for k, v in (describe or {}).items()
            )
            raise CacheVerificationError(
                f"cache entry {key[:16]} ({label}) diverged from a fresh "
                f"re-simulation at replication {divergent} of "
                f"{len(stored)} — the entry is corrupt or the cache key "
                "misses a result-affecting input; clear the cache "
                "(`repro-dls cache clear`) and report this"
            )
        self.stats.verified += 1
        self._journal({
            "op": "verify", "key": key[:16], "ok": True,
            **(describe or {}),
        })
        return True

    # -- maintenance ------------------------------------------------------
    def _object_files(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.pkl"))

    def entry_count(self) -> int:
        return len(self._object_files())

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._object_files())

    def clear(self) -> int:
        """Remove every entry and session record; returns entries removed."""
        import shutil

        removed = self.entry_count()
        for sub in ("objects", "sessions"):
            shutil.rmtree(self.root / sub, ignore_errors=True)
        return removed

    @staticmethod
    def _unlink_examined(path: Path, examined: os.stat_result) -> bool:
        """Remove ``path`` only if it is still the file version examined.

        Entry writes land via ``os.replace``, so a concurrent process
        may swap a *fresh* entry into ``path`` between gc's examination
        and its unlink — deleting then would throw away a complete,
        just-written entry.  Re-stat and skip when the inode, mtime, or
        size changed; a file that vanished was already collected by a
        concurrent gc and is not this session's removal.
        """
        try:
            current = path.stat()
            if (
                current.st_ino,
                current.st_mtime_ns,
                current.st_size,
            ) != (
                examined.st_ino,
                examined.st_mtime_ns,
                examined.st_size,
            ):
                return False
            path.unlink()
            return True
        except OSError:
            return False

    def gc(
        self,
        max_age_s: float | None = None,
        max_bytes: int | None = None,
    ) -> tuple[int, int]:
        """Collect garbage; returns ``(entries removed, bytes remaining)``.

        Always removes unreadable entries (journaled, with a
        ``cache_corrupt_entries_total`` tick each) and entries of a
        different schema version.  ``max_age_s`` additionally drops
        entries whose file is older; ``max_bytes`` then evicts
        oldest-first until the store fits the budget.  Evictions are
        counted in the session stats (and the ``cache_evictions_total``
        metric).

        Safe against concurrent writers and collectors sharing the
        directory: every removal re-checks that the file is still the
        examined version first (entries are replaced atomically, so an
        entry rewritten mid-gc survives), and entries that vanish
        underneath the scan are skipped, not miscounted as corrupt.
        """
        now = time.time()
        survivors: list[tuple[float, int, Path]] = []
        removed = 0
        for path in self._object_files():
            try:
                stat = path.stat()
            except OSError:
                continue  # collected by a concurrent gc — not ours
            corrupt_reason: str | None = None
            payload = None
            try:
                payload = pickle.loads(path.read_bytes())
            except FileNotFoundError:
                continue  # vanished mid-scan, same as above
            except OSError as exc:
                corrupt_reason = f"unreadable: {exc}"
            except UNPICKLE_ERRORS as exc:
                corrupt_reason = f"{type(exc).__name__}: {exc}"
            ok = corrupt_reason is None and (
                isinstance(payload, dict)
                and payload.get("schema") == SCHEMA_VERSION
            )
            if corrupt_reason is None and not ok:
                corrupt_reason = (
                    "stale schema"
                    if isinstance(payload, dict)
                    else f"payload is {type(payload).__name__}, not a dict"
                )
            if ok and max_age_s is not None:
                ok = (now - stat.st_mtime) <= max_age_s
            if not ok:
                if self._unlink_examined(path, stat):
                    removed += 1
                    if corrupt_reason is not None:
                        self._note_corrupt(path.stem, "gc", corrupt_reason)
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            for mtime, size, path in sorted(survivors):
                if total <= max_bytes:
                    break
                try:
                    examined = path.stat()
                except OSError:
                    continue
                # the budget pass reuses the scan's (mtime, size) order
                # but must not evict an entry refreshed since the scan
                if (examined.st_mtime, examined.st_size) != (mtime, size):
                    continue
                if self._unlink_examined(path, examined):
                    removed += 1
                    total -= size
        self.stats.evictions += removed
        self._metrics_counter(
            "cache_evictions_total", "result-cache entries evicted", removed
        )
        return removed, self.total_bytes()

    # -- session stats ----------------------------------------------------
    def _has_activity(self) -> bool:
        s = self.stats
        return bool(
            s.hits or s.misses or s.stores or s.evictions or s.corrupt
        )

    def flush_session(self) -> Path | None:
        """Persist this session's counters under ``<root>/sessions/``.

        Written once per activated session (deactivation flushes);
        sessions with no cache activity write nothing.  ``repro-dls
        cache stats`` reports the latest session and the lifetime
        aggregate over all of them.
        """
        if self._session_flushed or not self._has_activity():
            return None
        sessions = self.root / "sessions"
        sessions.mkdir(parents=True, exist_ok=True)
        record = {"t": time.time(), "pid": os.getpid(),
                  **self.stats.to_json()}
        stamp = time.strftime("%Y%m%dT%H%M%S")
        suffix = f"{os.getpid()}-{random.randrange(16 ** 6):06x}"
        path = sessions / f"{stamp}-{suffix}.json"
        fd, tmp = tempfile.mkstemp(dir=sessions, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._session_flushed = True
        return path

    def session_records(self) -> list[dict]:
        """All persisted session records, oldest first."""
        sessions = self.root / "sessions"
        if not sessions.is_dir():
            return []
        records = []
        for path in sessions.glob("*.json"):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                records.append(record)
        records.sort(key=lambda r: r.get("t", 0.0))
        return records

    def describe_store(self) -> dict:
        """Machine-readable store summary (the ``cache stats`` payload)."""
        records = self.session_records()
        lifetime = CacheStats()
        for record in records:
            lifetime.merge(CacheStats.from_json(record))
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "entries": self.entry_count(),
            "total_bytes": self.total_bytes(),
            "sessions": len(records),
            "last_session": records[-1] if records else None,
            "lifetime": lifetime.to_json(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {self.root} hits={self.stats.hits} "
            f"misses={self.stats.misses}>"
        )


# -- the active (process-global) cache ------------------------------------
_ACTIVE: ResultCache | None = None
_SUSPENDED: bool = False


def set_cache(cache: ResultCache | str | Path) -> ResultCache:
    """Make ``cache`` (or a new cache at a directory) the active store."""
    global _ACTIVE
    if not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    _ACTIVE = cache
    return cache


def active_cache() -> ResultCache | None:
    """The cache the runner consults (None = caching off or suspended)."""
    if _SUSPENDED:
        return None
    return _ACTIVE


def clear_cache() -> None:
    """Deactivate the active cache, flushing its session stats."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.flush_session()
        _ACTIVE = None


def deactivate_in_worker() -> None:
    """Drop an inherited active cache inside a pool worker process.

    The campaign runner handles all cache traffic in the parent
    process; a forked worker inheriting the parent's active cache must
    not repeat lookups, stores, or session flushes.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def suspended() -> Iterator[None]:
    """Hide the active cache inside the block (re-entrant execution).

    The runner executes cache misses — and verification re-simulations —
    under this guard so the inner execution path cannot consult or
    repopulate the cache it is filling.
    """
    global _SUSPENDED
    previous = _SUSPENDED
    _SUSPENDED = True
    try:
        yield
    finally:
        _SUSPENDED = previous


@contextmanager
def cache_to(
    root: str | Path,
    verify_fraction: float = 0.0,
) -> Iterator[ResultCache]:
    """Context manager: cache all runs inside the block under ``root``."""
    cache = set_cache(ResultCache(root, verify_fraction=verify_fraction))
    try:
        yield cache
    finally:
        clear_cache()
