"""Live campaign progress: periodic heartbeats through a pluggable sink.

Million-task campaigns run for hours; this module lets the campaign
runner report how far along it is without coupling it to any rendering.
A heartbeat is a :class:`ProgressEvent` — tasks done/total, elapsed
time, cumulative kernel events and their rate, an ETA extrapolated from
the observed rate, and the number of capability fallbacks so far.

Heartbeats flow to two sinks, both optional:

* the pluggable callback (:func:`set_progress` / :func:`progress_to`),
  rendered by the CLI ``--progress`` flag via :func:`stream_renderer`;
* the active run journal, as ``{"kind": "progress", ...}`` records.

When neither sink is active the runner skips tracking entirely (one
``None`` check per campaign call), so disabled progress is free.
Heartbeats are throttled to one per ``min_interval`` seconds; the final
completion event is always emitted.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, TextIO

if TYPE_CHECKING:
    from .journal import RunJournal

__all__ = [
    "ProgressEvent",
    "ProgressTracker",
    "active_progress",
    "campaign_tracker",
    "clear_progress",
    "progress_to",
    "set_progress",
    "stream_renderer",
]

#: default seconds between heartbeats
DEFAULT_MIN_INTERVAL = 0.5


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat of a running campaign."""

    label: str
    done: int
    total: int
    elapsed_s: float
    events: int
    events_per_second: float
    eta_s: float | None
    fallbacks: int

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def to_json(self) -> dict:
        return {
            "kind": "progress",
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(self.elapsed_s, 6),
            "events": self.events,
            "events_per_s": round(self.events_per_second, 1),
            "eta_s": (
                round(self.eta_s, 3) if self.eta_s is not None else None
            ),
            "fallbacks": self.fallbacks,
        }

    def describe(self) -> str:
        eta = f"{self.eta_s:.1f}s" if self.eta_s is not None else "?"
        line = (
            f"{self.label}: {self.done}/{self.total} "
            f"({self.fraction * 100:.0f}%) | "
            f"{self.events_per_second:,.0f} ev/s | ETA {eta}"
        )
        if self.fallbacks:
            line += f" | {self.fallbacks} fallback(s)"
        return line


ProgressCallback = Callable[[ProgressEvent], None]

_CALLBACK: ProgressCallback | None = None
_MIN_INTERVAL: float = DEFAULT_MIN_INTERVAL


def set_progress(
    callback: ProgressCallback,
    min_interval: float = DEFAULT_MIN_INTERVAL,
) -> None:
    """Install ``callback`` as the process-global heartbeat sink."""
    global _CALLBACK, _MIN_INTERVAL
    _CALLBACK = callback
    _MIN_INTERVAL = max(0.0, float(min_interval))


def clear_progress() -> None:
    """Remove the heartbeat callback (journal heartbeats are unaffected)."""
    global _CALLBACK, _MIN_INTERVAL
    _CALLBACK = None
    _MIN_INTERVAL = DEFAULT_MIN_INTERVAL


def active_progress() -> ProgressCallback | None:
    return _CALLBACK


@contextmanager
def progress_to(
    callback: ProgressCallback,
    min_interval: float = DEFAULT_MIN_INTERVAL,
) -> Iterator[None]:
    """Route heartbeats inside the block to ``callback``."""
    set_progress(callback, min_interval)
    try:
        yield
    finally:
        clear_progress()


class ProgressTracker:
    """Counts completed work and emits throttled heartbeats.

    The runner calls :meth:`advance` once per completed task (or pooled
    replication block) and :meth:`finish` at the end; heartbeats go to
    the callback and, when a journal is active, to the journal as
    ``progress`` records.  The ETA extrapolates the mean observed rate:
    ``elapsed / done * remaining``.
    """

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        callback: ProgressCallback | None = None,
        journal: "RunJournal | None" = None,
        min_interval: float | None = None,
        fallback_baseline: int = 0,
    ):
        self.total = total
        self.label = label
        self.callback = callback
        self.journal = journal
        self.min_interval = (
            _MIN_INTERVAL if min_interval is None else max(0.0, min_interval)
        )
        self.fallback_baseline = fallback_baseline
        self.done = 0
        self.events = 0
        self._t0 = time.monotonic()
        self._last_emit = self._t0

    def advance(self, count: int = 1, events: int = 0) -> None:
        """Record ``count`` completed units and emit if due."""
        self.done += count
        self.events += events
        now = time.monotonic()
        if now - self._last_emit >= self.min_interval:
            self._emit(now)

    def finish(self) -> None:
        """Emit the final (unthrottled) completion heartbeat."""
        self._emit(time.monotonic())

    def _new_fallbacks(self) -> int:
        from ..backends import peek_fallback_events

        return max(0, len(peek_fallback_events()) - self.fallback_baseline)

    def _emit(self, now: float) -> None:
        self._last_emit = now
        elapsed = now - self._t0
        remaining = self.total - self.done
        eta = None
        if self.done > 0 and remaining >= 0:
            eta = elapsed / self.done * remaining
        event = ProgressEvent(
            label=self.label,
            done=self.done,
            total=self.total,
            elapsed_s=elapsed,
            events=self.events,
            events_per_second=self.events / elapsed if elapsed > 0 else 0.0,
            eta_s=eta,
            fallbacks=self._new_fallbacks(),
        )
        if self.callback is not None:
            self.callback(event)
        if self.journal is not None:
            self.journal.write(event.to_json())


def campaign_tracker(
    total: int,
    label: str,
    journal: "RunJournal | None" = None,
    fallback_baseline: int = 0,
) -> ProgressTracker | None:
    """A tracker wired to the active sinks — or None when both are off.

    Returning None lets the runner skip all per-task bookkeeping when
    nobody is listening, keeping disabled progress free.
    """
    callback = active_progress()
    if callback is None and journal is None:
        return None
    return ProgressTracker(
        total=total,
        label=label,
        callback=callback,
        journal=journal,
        fallback_baseline=fallback_baseline,
    )


def stream_renderer(stream: TextIO | None = None) -> ProgressCallback:
    """A callback rendering heartbeats to a terminal (CLI ``--progress``).

    On a TTY the line rewrites in place (carriage return); on anything
    else — CI logs, redirected stderr — each heartbeat is its own line.
    """

    def render(event: ProgressEvent) -> None:
        out = stream if stream is not None else sys.stderr
        text = f"  {event.describe()}"
        if out.isatty():
            out.write("\r" + text.ljust(78))
            if event.done >= event.total:
                out.write("\n")
        else:
            out.write(text + "\n")
        out.flush()

    return render
