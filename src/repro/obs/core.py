"""Tracing spans and counters with near-zero overhead while disabled.

Tracing is a process-global switch (:func:`enable` / :func:`disable`),
off by default.  While it is off, :func:`span` returns one shared no-op
singleton — entering and leaving it does nothing and allocates nothing —
so instrumented hot paths pay a single function call and an attribute
read.  While it is on, every finished :class:`Span` is appended to an
in-memory sink drained with :func:`drain_spans`.

:class:`Counters` is an allocation-light named-counter bag; the
process-global instance (:func:`counters`) always counts (incrementing
an integer in a dict is cheap enough to leave on), and scoped instances
can be created freely — :class:`~repro.obs.stats.RunStats` carries one
per run as its ``extra`` mapping.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = [
    "Counters",
    "Span",
    "counters",
    "disable",
    "drain_spans",
    "enable",
    "is_enabled",
    "span",
]


class Counters:
    """A bag of named, monotonically increasing counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        values = self._values
        values[name] = values.get(name, 0) + amount

    def value(self, name: str) -> float:
        """The current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        """A snapshot copy of all counters."""
        return dict(self._values)

    def clear(self) -> None:
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self._values!r})"


class Span:
    """One timed section of work, used as a context manager.

    Records its start (``time.perf_counter``) on entry and its
    ``duration`` on exit, then reports itself to the module sink.
    Attributes are free-form key/value context (``span("run",
    technique="ss")``).
    """

    __slots__ = ("name", "attributes", "started_at", "duration")

    def __init__(self, name: str, attributes: dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.started_at: float | None = None
        self.duration: float | None = None

    def __enter__(self) -> "Span":
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self.started_at
        _SPANS.append(self)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration,
            **self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} duration={self.duration}>"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    attributes: dict[str, Any] = {}
    started_at = None
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_ENABLED = False
_SPANS: list[Span] = []
_COUNTERS = Counters()


def span(name: str, **attributes: Any) -> Span | _NullSpan:
    """A span named ``name`` — or the shared no-op while disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name, attributes)


def enable() -> None:
    """Turn span collection on (process-global)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn span collection off and discard pending spans."""
    global _ENABLED
    _ENABLED = False
    _SPANS.clear()


def is_enabled() -> bool:
    return _ENABLED


def drain_spans() -> list[Span]:
    """Return and clear the finished spans collected so far."""
    out = list(_SPANS)
    _SPANS.clear()
    return out


def counters() -> Counters:
    """The process-global counter bag (always counting)."""
    return _COUNTERS
