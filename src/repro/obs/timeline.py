"""Chunk-level execution timelines and their exporters.

The follow-up literature to the reproduced paper diagnoses scheduling
discrepancies by inspecting *per-chunk execution timelines* (Mohammed,
Eleliemy & Ciorba, arXiv:1805.07998), not per-run scalars.  This module
turns the chunk logs every backend can record (``RunResult.chunk_log``)
— plus any drained :mod:`repro.obs.core` spans — into one unified
:class:`TraceEvent` model, and serialises timelines to two formats:

* **Chrome Trace Event Format** (:func:`chrome_trace`,
  :func:`chrome_trace_from_results`, :func:`chrome_trace_from_journal`)
  — JSON loadable by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Each ``(technique, n, p)`` run is one process
  group; each worker is one named track inside it.
* **Paje** (:func:`paje_trace` / :func:`save_paje_trace`) — SimGrid's
  trace format, loadable by Paje/Vite.  (These migrated here from
  :mod:`repro.simgrid.visualization`, which re-exports them.)

Journals written by ``--trace`` convert to campaign-level Chrome traces
(one track-packed process per backend, instant events for fallbacks,
counter tracks for progress heartbeats) via ``repro-dls trace-export``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from ..results import RunResult
    from .core import Span

__all__ = [
    "TraceEvent",
    "chrome_trace",
    "chrome_trace_from_journal",
    "chrome_trace_from_results",
    "paje_trace",
    "require_chunk_log",
    "save_chrome_trace",
    "save_paje_trace",
    "span_events",
    "timeline_from_result",
    "worker_timelines",
]


def require_chunk_log(result: "RunResult", action: str = "build a timeline"):
    """Fail clearly when ``result`` carries no chunk log.

    Names every way to populate the log, so the error is actionable
    instead of an empty chart: the simulators' ``record_chunks=True``
    flag and the registry-level ``RunTask(collect_chunk_log=True)``
    option (supported by the ``msg``, ``msg-fast`` and ``direct``
    backends; ``direct-batch`` falls back to ``direct``).
    """
    if not result.chunk_log:
        raise ValueError(
            f"cannot {action}: the run has no chunk log; simulate with "
            "record_chunks=True (DirectSimulator / MasterWorkerConfig) "
            "or RunTask(collect_chunk_log=True) — the msg, msg-fast and "
            "direct backends record chunk logs; direct-batch falls back "
            "to direct when a log is requested"
        )


@dataclass(frozen=True)
class TraceEvent:
    """One timed interval on a timeline.

    ``group`` is the process-level grouping (one per run, or per
    backend for campaign traces); ``track`` is the thread-level lane
    inside it (one per worker).  ``duration == 0`` marks an instant
    event (rendered as a vertical marker, not a slice).
    """

    name: str
    start: float
    duration: float
    group: str
    track: int = 0
    track_name: str = ""
    category: str = "chunk"
    args: Mapping = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


def timeline_from_result(
    result: "RunResult", group: str | None = None
) -> list[TraceEvent]:
    """The per-worker chunk timeline of one recorded run.

    One :class:`TraceEvent` per executed chunk, on the track of the
    worker that ran it.  Requires a chunk log (see
    :func:`require_chunk_log`).  Runs simulated under a perturbation
    scenario additionally carry one instant event per declared
    perturbation (step slowdowns, fail-stop instants) on the affected
    worker's track, from ``extras["perturbations"]``.
    """
    require_chunk_log(result)
    if group is None:
        group = f"{result.technique} n={result.n} p={result.p}"
    events = [
        TraceEvent(
            name=f"chunk {ce.record.index} ({ce.record.size} tasks)",
            start=ce.start_time,
            duration=ce.elapsed,
            group=group,
            track=ce.record.worker,
            track_name=f"worker-{ce.record.worker}",
            category="chunk",
            args={
                "index": ce.record.index,
                "size": ce.record.size,
                "first_task": ce.record.start,
            },
        )
        for ce in result.chunk_log
    ]
    scenario = result.extras.get("scenario")
    for label, time, worker in result.extras.get("perturbations", ()):
        events.append(
            TraceEvent(
                name=label,
                start=float(time),
                duration=0.0,
                group=group,
                track=int(worker),
                track_name=f"worker-{worker}",
                category="perturbation",
                args={"scenario": scenario, "worker": int(worker)},
            )
        )
    return events


def span_events(
    spans: Sequence["Span"], group: str = "obs.spans"
) -> list[TraceEvent]:
    """Drained tracing spans as timeline events (one shared track).

    Span clocks are ``time.perf_counter`` readings; the earliest span's
    start becomes the timeline origin.
    """
    timed = [s for s in spans if s.started_at is not None]
    if not timed:
        return []
    t0 = min(s.started_at for s in timed)
    return [
        TraceEvent(
            name=s.name,
            start=s.started_at - t0,
            duration=s.duration or 0.0,
            group=group,
            track=0,
            track_name="spans",
            category="span",
            args=dict(s.attributes),
        )
        for s in timed
    ]


# -- Chrome Trace Event Format --------------------------------------------
def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Serialise events to the Chrome Trace Event Format (JSON object).

    Groups become numbered processes carrying ``process_name`` metadata;
    tracks become named threads.  Zero-duration events serialise as
    instant (``"ph": "i"``) events, everything else as complete
    (``"ph": "X"``) events with microsecond timestamps.
    """
    pids: dict[str, int] = {}
    threads: dict[tuple[int, int], str] = {}
    trace_events: list[dict] = []
    body: list[dict] = []
    for event in events:
        pid = pids.get(event.group)
        if pid is None:
            pid = pids[event.group] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": event.group},
                }
            )
        key = (pid, event.track)
        if key not in threads:
            threads[key] = event.track_name or f"track-{event.track}"
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": event.track,
                    "args": {"name": threads[key]},
                }
            )
        record = {
            "name": event.name,
            "cat": event.category,
            "ts": round(event.start * 1e6, 3),
            "pid": pid,
            "tid": event.track,
            "args": dict(event.args),
        }
        if event.duration > 0:
            record["ph"] = "X"
            record["dur"] = round(event.duration * 1e6, 3)
        else:
            record["ph"] = "i"
            record["s"] = "g"
        body.append(record)
    trace_events.extend(body)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_from_results(
    results: Sequence["RunResult"],
    groups: Sequence[str] | None = None,
    spans: Sequence["Span"] | None = None,
) -> dict:
    """One Chrome trace for several recorded runs (plus optional spans).

    Each run is its own process group (auto-labelled
    ``technique n=.. p=..``, de-duplicated by index when runs repeat a
    cell); workers are tracks within it.
    """
    if groups is not None and len(groups) != len(results):
        raise ValueError(
            f"need {len(results)} group labels, got {len(groups)}"
        )
    events: list[TraceEvent] = []
    seen: dict[str, int] = {}
    for i, result in enumerate(results):
        if groups is not None:
            label = groups[i]
        else:
            label = f"{result.technique} n={result.n} p={result.p}"
            count = seen.get(label, 0)
            seen[label] = count + 1
            if count:
                label = f"{label} #{count + 1}"
        events.extend(timeline_from_result(result, group=label))
    if spans:
        events.extend(span_events(spans))
    return chrome_trace(events)


def _pack_track(lanes: list[float], start: float, end: float) -> int:
    """Greedy interval packing: the first lane free at ``start``."""
    for lane, free_at in enumerate(lanes):
        if start >= free_at:
            lanes[lane] = end
            return lane
    lanes.append(end)
    return len(lanes) - 1


def chrome_trace_from_journal(records: Sequence[dict]) -> dict:
    """A campaign-level Chrome trace from a ``--trace`` run journal.

    Task records become slices grouped per backend (overlapping tasks
    pack into parallel lanes); fallback records become instant events;
    progress heartbeats become Perfetto counter tracks (tasks done,
    events/second).  Journal records carry ``t_s`` — seconds since the
    journal opened — which anchors every event; journals written before
    ``t_s`` existed lay tasks end-to-end per backend instead.
    """
    events: list[TraceEvent] = []
    lanes: dict[str, list[float]] = {}
    cursor: dict[str, float] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "task":
            backend = record.get("backend", "?")
            group = f"backend: {backend}"
            wall = float(record.get("wall_time_s", 0.0)) or 1e-6
            t_s = record.get("t_s")
            if t_s is not None:
                start = max(0.0, float(t_s) - wall)
            else:
                start = cursor.get(backend, 0.0)
                cursor[backend] = start + wall
            track = _pack_track(
                lanes.setdefault(backend, []), start, start + wall
            )
            label = (
                f"{record.get('technique', '?')}"
                f"(n={record.get('n', '?')}, p={record.get('p', '?')})"
            )
            events.append(
                TraceEvent(
                    name=label,
                    start=start,
                    duration=wall,
                    group=group,
                    track=track,
                    track_name=f"lane-{track}",
                    category="task",
                    args={
                        "runs": record.get("runs"),
                        "events": record.get("events"),
                        "requested": record.get("requested"),
                        "backend": backend,
                    },
                )
            )
        elif kind == "fallback":
            events.append(
                TraceEvent(
                    name=(
                        f"fallback {record.get('requested', '?')} -> "
                        f"{record.get('chosen', '?')}"
                    ),
                    start=float(record.get("t_s", 0.0)),
                    duration=0.0,
                    group="campaign",
                    track=0,
                    track_name="fallbacks",
                    category="fallback",
                    args={
                        "task": record.get("task"),
                        "reason": record.get("reason"),
                    },
                )
            )
    trace = chrome_trace(events)
    # Progress heartbeats render best as counter tracks, which have no
    # interval representation in the TraceEvent model — append directly.
    counter_pid = 0
    for record in records:
        if record.get("kind") != "progress":
            continue
        if not counter_pid:
            counter_pid = (
                max(
                    (e["pid"] for e in trace["traceEvents"]), default=0
                )
                + 1
            )
            trace["traceEvents"].append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": counter_pid,
                    "tid": 0,
                    "args": {"name": "campaign progress"},
                }
            )
        ts = round(float(record.get("t_s", record.get("elapsed_s", 0.0))) * 1e6, 3)
        trace["traceEvents"].append(
            {
                "name": "tasks done",
                "ph": "C",
                "ts": ts,
                "pid": counter_pid,
                "tid": 0,
                "args": {"done": record.get("done", 0)},
            }
        )
        trace["traceEvents"].append(
            {
                "name": "events/s",
                "ph": "C",
                "ts": ts,
                "pid": counter_pid,
                "tid": 0,
                "args": {"events_per_s": record.get("events_per_s", 0.0)},
            }
        )
    return trace


def save_chrome_trace(trace: dict, path: str | Path) -> None:
    """Write a Chrome trace object as JSON to ``path``."""
    Path(path).write_text(json.dumps(trace) + "\n")


# -- Paje export (migrated from repro.simgrid.visualization) ---------------

_PAJE_HEADER = """\
%EventDef PajeDefineContainerType 0
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeDefineStateType 1
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeCreateContainer 2
%       Time date
%       Alias string
%       Type string
%       Container string
%       Name string
%EndEventDef
%EventDef PajeSetState 3
%       Time date
%       Type string
%       Container string
%       Value string
%EndEventDef
%EventDef PajeDestroyContainer 4
%       Time date
%       Type string
%       Name string
%EndEventDef
"""


def paje_trace(result: "RunResult") -> str:
    """Serialise a recorded run to a Paje trace (SimGrid's format).

    Containers: one per worker.  States: ``compute`` during chunk
    execution, ``idle`` otherwise.  Loadable by Paje/Vite-compatible
    tools.
    """
    require_chunk_log(result, action="export a Paje trace")
    out = [_PAJE_HEADER]
    out.append('0 CT_Platform 0 "Platform"')
    out.append('0 CT_Worker CT_Platform "Worker"')
    out.append('1 ST_WorkerState CT_Worker "Worker State"')
    out.append('2 0.000000 C_platform CT_Platform 0 "platform"')
    for w in range(result.p):
        out.append(
            f'2 0.000000 C_w{w} CT_Worker C_platform "worker-{w}"'
        )
        out.append(f'3 0.000000 ST_WorkerState C_w{w} "idle"')
    events: list[tuple[float, int, str]] = []
    for ce in sorted(result.chunk_log, key=lambda c: c.start_time):
        w = ce.record.worker
        events.append((ce.start_time, 1, f'ST_WorkerState C_w{w} "compute"'))
        events.append((ce.end_time, 0, f'ST_WorkerState C_w{w} "idle"'))
    events.sort(key=lambda e: (e[0], e[1]))
    for time, _, body in events:
        out.append(f"3 {time:.6f} {body}")
    for w in range(result.p):
        out.append(f"4 {result.makespan:.6f} CT_Worker C_w{w}")
    out.append(f"4 {result.makespan:.6f} CT_Platform C_platform")
    return "\n".join(out) + "\n"


def save_paje_trace(result: "RunResult", path: str | Path) -> None:
    """Write :func:`paje_trace` output to ``path``."""
    Path(path).write_text(paje_trace(result))


def worker_timelines(
    result: "RunResult",
) -> dict[int, list[tuple[float, float]]]:
    """Per-worker (start, end) execution windows from the chunk log."""
    require_chunk_log(result, action="extract worker timelines")
    out: dict[int, list[tuple[float, float]]] = {
        w: [] for w in range(result.p)
    }
    for ce in result.chunk_log:
        out[ce.record.worker].append((ce.start_time, ce.end_time))
    for windows in out.values():
        windows.sort()
    return out
