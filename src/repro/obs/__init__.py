"""Structured observability: spans, counters, run stats, run journals.

The paper's whole argument rests on being able to *trust* what a
simulation run did — Section V publishes its raw data precisely so
others can audit it.  This package gives every execution path the
instrumentation that makes a run auditable:

* :class:`Span` / :class:`Counters` (:mod:`repro.obs.core`) —
  lightweight tracing with near-zero overhead while disabled; a
  disabled :func:`span` call returns a shared no-op singleton.
* :class:`RunStats` (:mod:`repro.obs.stats`) — the per-run kernel
  statistics block every simulator attaches to its
  :class:`~repro.results.RunResult` (events processed, heap peak,
  live-process high-water mark, host wall time).  Stats are
  observability metadata, not results: ``RunResult`` equality ignores
  them.
* :class:`RunJournal` (:mod:`repro.obs.journal`) — an append-only JSONL
  journal of campaign execution, one record per task (backend chosen,
  fallback events, seed entropy, wall time, stats), written by
  :mod:`repro.experiments.runner` whenever a journal is active.
* :func:`capture_provenance` (:mod:`repro.obs.provenance`) — the
  environment snapshot (package version, python, platform XML hash,
  ``REPRO_WORKERS``) merged into ``CampaignRecord.metadata`` and
  written as the first journal record.
* :func:`summarize_journal` (:mod:`repro.obs.report`) — the
  ``repro-dls stats`` summary (slowest tasks, fallback counts,
  events/sec per backend).
"""

from .core import (
    Counters,
    Span,
    counters,
    disable,
    drain_spans,
    enable,
    is_enabled,
    span,
)
from .journal import (
    RunJournal,
    active_journal,
    clear_journal,
    journal_to,
    set_journal,
)
from .provenance import capture_provenance, platform_xml_hash
from .report import load_journal, summarize_journal
from .stats import RunStats

__all__ = [
    "Counters",
    "RunJournal",
    "RunStats",
    "Span",
    "active_journal",
    "capture_provenance",
    "clear_journal",
    "counters",
    "disable",
    "drain_spans",
    "enable",
    "is_enabled",
    "journal_to",
    "load_journal",
    "platform_xml_hash",
    "set_journal",
    "span",
    "summarize_journal",
]
