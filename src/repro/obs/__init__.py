"""Structured observability: spans, counters, run stats, run journals.

The paper's whole argument rests on being able to *trust* what a
simulation run did — Section V publishes its raw data precisely so
others can audit it.  This package gives every execution path the
instrumentation that makes a run auditable:

* :class:`Span` / :class:`Counters` (:mod:`repro.obs.core`) —
  lightweight tracing with near-zero overhead while disabled; a
  disabled :func:`span` call returns a shared no-op singleton.
* :class:`RunStats` (:mod:`repro.obs.stats`) — the per-run kernel
  statistics block every simulator attaches to its
  :class:`~repro.results.RunResult` (events processed, heap peak,
  live-process high-water mark, host wall time).  Stats are
  observability metadata, not results: ``RunResult`` equality ignores
  them.
* :class:`RunJournal` (:mod:`repro.obs.journal`) — an append-only JSONL
  journal of campaign execution, one record per task (backend chosen,
  fallback events, seed entropy, wall time, stats), written by
  :mod:`repro.experiments.runner` whenever a journal is active.
* :func:`capture_provenance` (:mod:`repro.obs.provenance`) — the
  environment snapshot (package version, python, platform XML hash,
  ``REPRO_WORKERS``) merged into ``CampaignRecord.metadata`` and
  written as the first journal record.
* :func:`summarize_journal` (:mod:`repro.obs.report`) — the
  ``repro-dls stats`` summary (slowest tasks, fallback counts,
  events/sec per backend, wall-time histogram).
* :class:`TraceEvent` (:mod:`repro.obs.timeline`) — chunk-level
  execution timelines built from ``RunResult.chunk_log`` and drained
  spans, exported to the Chrome Trace Event Format (Perfetto) and to
  Paje (``repro-dls trace-export``).
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — campaign-level
  histograms/gauges/counters (chunk sizes, worker idle time, events/s),
  exported as JSON or Prometheus text via ``--metrics FILE``.
* :class:`ProgressEvent` (:mod:`repro.obs.progress`) — periodic
  heartbeats from the campaign runner through a pluggable callback
  (CLI ``--progress``) and into the journal as ``progress`` records.
"""

from .core import (
    Counters,
    Span,
    counters,
    disable,
    drain_spans,
    enable,
    is_enabled,
    span,
)
from .journal import (
    RunJournal,
    active_journal,
    clear_journal,
    journal_to,
    set_journal,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    active_registry,
    clear_registry,
    metrics_to,
    set_registry,
)
from .progress import (
    ProgressEvent,
    ProgressTracker,
    clear_progress,
    progress_to,
    set_progress,
    stream_renderer,
)
from .provenance import capture_provenance, platform_xml_hash
from .report import load_journal, summarize_journal
from .stats import RunStats
from .timeline import (
    TraceEvent,
    chrome_trace,
    chrome_trace_from_journal,
    chrome_trace_from_results,
    save_chrome_trace,
    span_events,
    timeline_from_result,
)

__all__ = [
    "Counters",
    "Histogram",
    "MetricsRegistry",
    "ProgressEvent",
    "ProgressTracker",
    "RunJournal",
    "RunStats",
    "Span",
    "TraceEvent",
    "active_journal",
    "active_registry",
    "capture_provenance",
    "chrome_trace",
    "chrome_trace_from_journal",
    "chrome_trace_from_results",
    "clear_journal",
    "clear_progress",
    "clear_registry",
    "counters",
    "disable",
    "drain_spans",
    "enable",
    "is_enabled",
    "journal_to",
    "load_journal",
    "metrics_to",
    "platform_xml_hash",
    "progress_to",
    "save_chrome_trace",
    "set_journal",
    "set_progress",
    "set_registry",
    "span",
    "span_events",
    "stream_renderer",
    "summarize_journal",
    "timeline_from_result",
]
