"""Per-run kernel statistics attached to every :class:`RunResult`.

Every execution substrate fills a :class:`RunStats` block as it runs:
the event-driven MSG stack reports the engine's counters (events
processed, event-heap peak, live-process high-water mark), the compiled
fast paths report their loop analogues (master receipts served, pending
heap bound), and the batch kernel reports per-replication shares of its
block timings.  The owning backend stamps its registry name on the
block afterwards, so a result always knows which substrate actually
produced it — including after a capability fallback.

Stats are observability metadata, **not** results: two runs with
identical simulated observables but different stats compare equal
(``RunResult`` declares the field with ``compare=False``), and the
msg / msg-fast bit-identity suite tolerates differing stats while
asserting identical results.

The dataclass is plain data, so it pickles through the campaign
process pool unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Kernel-level statistics of one simulated run.

    ``events`` counts the substrate's unit of progress: engine events on
    the event-driven path, master scheduling receipts on the MSG fast
    path, chunk assignments on the direct/batch kernels.  ``heap_peak``
    and ``live_peak`` are the event-heap and live-process high-water
    marks (the fast paths report their structural bounds).  ``wall_time``
    is host wall-clock seconds spent inside the simulator (the batch
    kernel reports each replication's share of its block).
    """

    #: registry name of the backend that produced the run ("" when the
    #: simulator was driven directly, outside the backend registry)
    backend: str = ""
    #: True when a compiled fast path (msg-fast flattening or the batch
    #: kernel) produced the run instead of a per-event/per-chunk loop
    fast_path: bool = False
    events: int = 0
    heap_peak: int = 0
    live_peak: int = 0
    wall_time: float = 0.0
    #: free-form additional counters (block sizes, lost chunks, ...)
    extra: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Simulation throughput in events per host second (0 if unknown)."""
        if self.wall_time <= 0:
            return 0.0
        return self.events / self.wall_time

    def to_json(self) -> dict:
        data = {
            "backend": self.backend,
            "fast_path": self.fast_path,
            "events": self.events,
            "heap_peak": self.heap_peak,
            "live_peak": self.live_peak,
            "wall_time_s": self.wall_time,
        }
        if self.extra:
            data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "RunStats":
        return cls(
            backend=data.get("backend", ""),
            fast_path=bool(data.get("fast_path", False)),
            events=int(data.get("events", 0)),
            heap_peak=int(data.get("heap_peak", 0)),
            live_peak=int(data.get("live_peak", 0)),
            wall_time=float(data.get("wall_time_s", 0.0)),
            extra=dict(data.get("extra", {})),
        )
