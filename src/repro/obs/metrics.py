"""Low-overhead metrics registry: histograms, gauges, counters.

The registry answers aggregate questions about a campaign that neither
the per-run :class:`~repro.obs.stats.RunStats` nor the journal's task
records answer directly: how are chunk sizes distributed, how much time
do workers spend idle, how fast is the simulation moving overall.  Like
the run journal, metrics collection is *opt-in*: the campaign runner
records into the process-global registry only while one is active
(:func:`set_registry` / :func:`metrics_to`), so disabled campaigns pay a
single ``None`` check per runner call.

All metric objects are plain data (dict-of-ints buckets, floats) so they
pickle through the campaign process pool unchanged and merge across
processes with :meth:`Histogram.merge` / :meth:`MetricsRegistry.merge`.

Exports: :meth:`MetricsRegistry.to_json` for machines,
:meth:`MetricsRegistry.render_prometheus` for the Prometheus
text-exposition format (``repro-dls campaign --metrics FILE`` picks the
format from the file extension: ``.prom``/``.txt`` is Prometheus,
anything else JSON).
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from ..results import RunResult

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "clear_registry",
    "metrics_to",
    "record_results",
    "set_registry",
]


def _bucket_exponent(value: float) -> int:
    """The power-of-two bucket index of ``value`` (le = 2**exponent).

    Values ``<= 0`` land in the dedicated zero bucket (exponent
    ``None`` is avoided by using a sentinel below the smallest
    representable exponent).
    """
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:  # exact powers of two fit the smaller bucket
        exponent -= 1
    return exponent


#: bucket index for values <= 0 (below every float exponent)
_ZERO_BUCKET = -5000


class Histogram:
    """A power-of-two-bucketed histogram of non-negative observations.

    Buckets are geometric with upper bounds ``2**k`` — wide enough to
    span chunk sizes (1 .. n) and wall times (microseconds .. hours)
    with a handful of integer dict entries, which keeps ``observe`` to
    one ``frexp`` and one dict increment.  The exact ``sum``, ``count``,
    ``min`` and ``max`` are tracked alongside, so means are exact even
    though quantiles are bucket-resolution.
    """

    __slots__ = ("name", "help", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        exponent = _ZERO_BUCKET if value <= 0 else _bucket_exponent(value)
        buckets = self.buckets
        buckets[exponent] = buckets.get(exponent, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for exponent, count in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """Sorted ``(upper bound, count)`` pairs (non-cumulative)."""
        out = []
        for exponent in sorted(self.buckets):
            le = 0.0 if exponent == _ZERO_BUCKET else float(2.0 ** exponent)
            out.append((le, self.buckets[exponent]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (the bound holding the q-point)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        bounds = self.bucket_bounds()
        for le, count in bounds:
            seen += count
            if seen >= target:
                return min(le, self.max) if le else 0.0
        return self.max

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": le, "count": count}
                for le, count in self.bucket_bounds()
            ],
        }

    def format_ascii(self, width: int = 40) -> str:
        """The bucket distribution as terminal-friendly bars."""
        bounds = self.bucket_bounds()
        if not bounds:
            return "(no observations)"
        peak = max(count for _, count in bounds)
        lines = []
        for le, count in bounds:
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"  <= {le:<12g} {bar} {count}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.name == other.name
            and self.buckets == other.buckets
            and self.count == other.count
            and self.sum == other.sum
        )

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} count={self.count}>"


class Gauge:
    """A last-value-wins metric (e.g. current events/second)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_json(self) -> dict:
        return {"name": self.name, "help": self.help, "value": self.value}

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


class Counter:
    """A monotonically increasing total (e.g. simulated events)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def incr(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_json(self) -> dict:
        return {"name": self.name, "help": self.help, "value": self.value}

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


def _prometheus_name(name: str) -> str:
    """Sanitise to the Prometheus metric-name charset, prefixed."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


class MetricsRegistry:
    """Named histograms, gauges and counters with get-or-create access.

    Plain data throughout: registries pickle through the process pool
    and merge with :meth:`merge` (metric names are the join keys).
    """

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, Gauge] = {}
        self.counters: dict[str, Counter] = {}

    def histogram(self, name: str, help: str = "") -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name, help)
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name, help)
        return metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one by name."""
        for name, hist in other.histograms.items():
            self.histogram(name, hist.help).merge(hist)
        for name, counter in other.counters.items():
            self.counter(name, counter.help).incr(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name, gauge.help).set(gauge.value)

    def to_json(self) -> dict:
        return {
            "histograms": {
                name: metric.to_json()
                for name, metric in sorted(self.histograms.items())
            },
            "gauges": {
                name: metric.to_json()
                for name, metric in sorted(self.gauges.items())
            },
            "counters": {
                name: metric.to_json()
                for name, metric in sorted(self.counters.items())
            },
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text-exposition format.

        Histograms emit cumulative ``_bucket{le=...}`` series ending in
        ``le="+Inf"`` plus ``_sum`` and ``_count``, exactly as a
        Prometheus client library would.
        """
        lines: list[str] = []
        for name in sorted(self.counters):
            counter = self.counters[name]
            metric = _prometheus_name(name)
            if counter.help:
                lines.append(f"# HELP {metric} {counter.help}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value:g}")
        for name in sorted(self.gauges):
            gauge = self.gauges[name]
            metric = _prometheus_name(name)
            if gauge.help:
                lines.append(f"# HELP {metric} {gauge.help}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value:g}")
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            metric = _prometheus_name(name)
            if hist.help:
                lines.append(f"# HELP {metric} {hist.help}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for le, count in hist.bucket_bounds():
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{le:g}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {hist.sum:g}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the registry to ``path``; the extension picks the format.

        ``.prom`` / ``.txt`` get the Prometheus text-exposition format,
        everything else JSON.
        """
        path = Path(path)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.render_prometheus())
        else:
            path.write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry {len(self.histograms)} histogram(s), "
            f"{len(self.gauges)} gauge(s), {len(self.counters)} counter(s)>"
        )


# -- the active (campaign-scoped) registry --------------------------------
_ACTIVE: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Make ``registry`` (or a fresh one) the active metrics sink."""
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    return registry


def active_registry() -> MetricsRegistry | None:
    """The registry the runner currently records into (None = off)."""
    return _ACTIVE


def clear_registry() -> None:
    """Deactivate the active registry (its metrics stay readable)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def metrics_to(path: str | Path | None = None) -> Iterator[MetricsRegistry]:
    """Collect campaign metrics inside the block; save to ``path`` on exit.

    With ``path=None`` the registry is activated but not written — read
    it from the yielded object instead.
    """
    registry = set_registry()
    try:
        yield registry
    finally:
        clear_registry()
        if path is not None:
            registry.save(path)


def record_results(
    registry: MetricsRegistry,
    results: Sequence["RunResult"],
    new_fallbacks: int = 0,
) -> None:
    """Fold a batch of run results into the campaign metrics.

    Called by the runner once per ``run_campaign`` / ``run_replicated``
    call (in the parent process, after pooled results return), so the
    per-result cost is paid only while a registry is active.
    """
    makespans = registry.histogram(
        "run_makespan_seconds", "simulated makespan per run"
    )
    idle = registry.histogram(
        "worker_idle_seconds", "per-worker idle (wasted) time per run"
    )
    task_time = registry.histogram(
        "run_task_seconds", "total simulated task time per run"
    )
    chunk_size = registry.histogram(
        "chunk_size_tasks",
        "chunk sizes (per chunk when a log exists, mean size otherwise)",
    )
    runs = registry.counter("runs_total", "simulated runs recorded")
    events = registry.counter("sim_events_total", "kernel events processed")
    wall = registry.counter(
        "sim_wall_seconds_total", "host seconds spent simulating"
    )
    for result in results:
        makespans.observe(result.makespan)
        task_time.observe(result.total_task_time)
        for compute in result.compute_times:
            idle.observe(result.makespan - compute)
        if result.chunk_log:
            for execution in result.chunk_log:
                chunk_size.observe(execution.record.size)
        elif result.num_chunks:
            chunk_size.observe(result.n / result.num_chunks)
        if result.stats is not None:
            events.incr(result.stats.events)
            wall.incr(result.stats.wall_time)
    runs.incr(len(results))
    perturbed = [r for r in results if "scenario" in r.extras]
    if perturbed:
        registry.counter(
            "perturbed_runs_total", "runs simulated under a scenario"
        ).incr(len(perturbed))
        registry.counter(
            "lost_chunks_total", "chunks lost to fail-stop faults"
        ).incr(sum(int(r.extras.get("lost_chunks", 0)) for r in perturbed))
        registry.counter(
            "lost_tasks_total", "tasks requeued after fail-stop faults"
        ).incr(sum(int(r.extras.get("lost_tasks", 0)) for r in perturbed))
    if new_fallbacks:
        registry.counter(
            "fallbacks_total", "capability fallbacks during resolution"
        ).incr(new_fallbacks)
    if wall.value > 0:
        registry.gauge(
            "sim_events_per_second", "cumulative simulation throughput"
        ).set(events.value / wall.value)
