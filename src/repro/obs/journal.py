"""The JSONL run journal: one line per campaign execution event.

A :class:`RunJournal` is an append-only JSON-lines file.  While one is
active (:func:`set_journal` / :func:`journal_to`), the campaign runner
(:mod:`repro.experiments.runner`) writes one ``task`` record per
executed task — backend requested and chosen, seed entropy, replication
count, aggregated :class:`~repro.obs.stats.RunStats` — plus a
``fallback`` record per capability degradation observed while resolving.
The journal's first line is always a ``provenance`` record
(:func:`~repro.obs.provenance.capture_provenance`).

Records are flushed line-by-line, so an interrupted campaign leaves a
journal that is truncated but valid up to its last complete line —
``repro-dls stats`` summarises partial journals fine.

Record schema (see ``docs/observability.md`` for the full table):

``{"kind": "provenance", ...}``
    environment snapshot, always the first line.
``{"kind": "task", "technique": ..., "n": ..., "p": ...,
"requested": ..., "backend": ..., "runs": ..., "wall_time_s": ...,
"events": ..., "fast_path_runs": ..., "seed_entropy": [...]}``
    one executed task (all its replications aggregated).
``{"kind": "fallback", "task": ..., "requested": ..., "chosen": ...,
"reason": ...}``
    one capability degradation recorded during backend resolution.
``{"kind": "progress", "done": ..., "total": ..., "elapsed_s": ...,
"events_per_s": ..., "eta_s": ..., "fallbacks": ...}``
    one live-progress heartbeat (:mod:`repro.obs.progress`).
``{"kind": "cache", "op": "hit"|"miss"|"store"|"verify", "key": ...,
"technique": ..., "n": ..., "p": ..., "runs": ...}``
    one result-cache event (:mod:`repro.cache`); hits carry
    ``saved_wall_s`` (the host-seconds the stored computation cost) and
    stores carry ``bytes`` and ``wall_time_s``.
``{"kind": "advise", "best": ..., "techniques": ..., "fallbacks": ...,
"cache_hits": ..., "cache_misses": ..., "elapsed_s": ...}``
    one advisor query (:mod:`repro.serve`), plus the request fields.
``{"kind": "artifact", "artifact": ..., "mode": ..., "files": [...],
"fallbacks": ..., "cache": {...}, "plot": ..., "elapsed_s": ...}``
    one artifact emitted by the figure pipeline (:mod:`repro.figures`).

Every record additionally carries ``t_s`` — seconds since the journal
opened — which lets ``repro-dls trace-export`` reconstruct a campaign
timeline (:func:`repro.obs.timeline.chrome_trace_from_journal`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from .provenance import capture_provenance

__all__ = [
    "RunJournal",
    "active_journal",
    "clear_journal",
    "journal_to",
    "set_journal",
]


class RunJournal:
    """An append-only JSONL file of run records.

    Opening writes the ``provenance`` record immediately; every
    :meth:`write` flushes, so readers (and crash forensics) always see
    complete lines.
    """

    def __init__(self, path: str | Path, mode: str = "w"):
        self.path = Path(path)
        self._fh = self.path.open(mode)
        self._t0 = time.monotonic()
        self.records_written = 0
        self.write({"kind": "provenance", **capture_provenance()})

    def write(self, record: dict) -> None:
        """Append one record as a single JSON line and flush.

        Records are stamped with ``t_s`` (seconds since the journal
        opened) unless the caller already set one.
        """
        if "t_s" not in record:
            record = {**record, "t_s": round(time.monotonic() - self._t0, 6)}
        self._fh.write(json.dumps(record, sort_keys=False) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunJournal {self.path} ({self.records_written} records)>"


_ACTIVE: RunJournal | None = None


def set_journal(journal: RunJournal | str | Path) -> RunJournal:
    """Make ``journal`` (or a new journal at a path) the active sink."""
    global _ACTIVE
    if not isinstance(journal, RunJournal):
        journal = RunJournal(journal)
    _ACTIVE = journal
    return journal


def active_journal() -> RunJournal | None:
    """The journal the runner currently writes to (None = no journal)."""
    return _ACTIVE


def clear_journal() -> None:
    """Deactivate (and close) the active journal, if any."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


@contextmanager
def journal_to(path: str | Path) -> Iterator[RunJournal]:
    """Context manager: journal all runs inside the block to ``path``."""
    journal = set_journal(path)
    try:
        yield journal
    finally:
        clear_journal()
