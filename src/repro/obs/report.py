"""Summarise a run journal: the ``repro-dls stats`` report.

Reads the JSONL journal written by :mod:`repro.obs.journal` and answers
the questions an auditor asks first: what environment produced the runs,
how fast was each backend (events per host second), which tasks
dominated the wall time (with a wall-time histogram), and which
requested backends silently — no longer silently — degraded to a
fallback.  Journals written by the figure pipeline (``artifact``
records) and the advisor service (``advise`` records: query counts,
p50/p95 latency, cache-hit share) get their own sections.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Sequence

from .metrics import Histogram

__all__ = ["load_journal", "summarize_journal"]


def load_journal(path: str | Path) -> list[dict]:
    """Parse a JSONL journal; every non-empty line must be a JSON object."""
    records: list[dict] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: invalid journal line ({exc})"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(
                f"{path}:{lineno}: journal line is not a JSON object"
            )
        records.append(record)
    return records


def _task_label(record: dict) -> str:
    return (
        f"{record.get('technique', '?')}"
        f"(n={record.get('n', '?')}, p={record.get('p', '?')})"
    )


def summarize_journal(
    records: Sequence[dict], top: int = 5
) -> str:
    """A human-readable summary of a journal's records."""
    provenance = next(
        (r for r in records if r.get("kind") == "provenance"), None
    )
    tasks = [r for r in records if r.get("kind") == "task"]
    fallbacks = [r for r in records if r.get("kind") == "fallback"]

    lines: list[str] = [f"{len(records)} journal record(s): "
                        f"{len(tasks)} task(s), {len(fallbacks)} fallback(s)"]
    if provenance is not None:
        workers = provenance.get("repro_workers")
        lines.append(
            "provenance: repro "
            f"{provenance.get('package_version', '?')}, "
            f"python {provenance.get('python', '?')} on "
            f"{provenance.get('system', '?')}/"
            f"{provenance.get('machine', '?')}, "
            f"REPRO_WORKERS={workers if workers else '-'}"
        )

    if not tasks:
        lines.append("")
        lines.append(
            "no task records — provenance-only journal; run a campaign "
            "or `repro-dls simulate`/`campaign` with --trace to record "
            "tasks"
        )

    if tasks:
        per_backend: dict[str, dict[str, float]] = {}
        for record in tasks:
            agg = per_backend.setdefault(
                record.get("backend", "?"),
                {"tasks": 0, "runs": 0, "wall": 0.0, "events": 0},
            )
            agg["tasks"] += 1
            agg["runs"] += record.get("runs", 0)
            agg["wall"] += record.get("wall_time_s", 0.0)
            agg["events"] += record.get("events", 0)
        lines.append("")
        lines.append(
            f"  {'backend':<14s} {'tasks':>6s} {'runs':>7s} "
            f"{'wall time':>10s} {'events':>12s} {'events/s':>10s}"
        )
        for backend in sorted(per_backend):
            agg = per_backend[backend]
            rate = agg["events"] / agg["wall"] if agg["wall"] > 0 else 0.0
            lines.append(
                f"  {backend:<14s} {int(agg['tasks']):>6d} "
                f"{int(agg['runs']):>7d} {agg['wall']:>9.2f}s "
                f"{int(agg['events']):>12d} {rate:>10.0f}"
            )

        slowest = sorted(
            tasks, key=lambda r: r.get("wall_time_s", 0.0), reverse=True
        )[:top]
        lines.append("")
        lines.append(f"slowest task(s) (top {len(slowest)}):")
        for rank, record in enumerate(slowest, start=1):
            lines.append(
                f"  {rank}. {_task_label(record):<28s} "
                f"{record.get('backend', '?'):<14s} "
                f"{record.get('wall_time_s', 0.0):>8.3f}s "
                f"({record.get('runs', 0)} run(s))"
            )

        wall = Histogram("task_wall_seconds")
        wall.observe_many(r.get("wall_time_s", 0.0) for r in tasks)
        lines.append("")
        lines.append(
            "task wall-time histogram "
            f"(mean {wall.mean:.3f}s, max {wall.max:.3f}s):"
        )
        lines.append(wall.format_ascii(width=32))

    cache_ops: dict[str, int] = {}
    saved_wall_s = 0.0
    for record in records:
        if record.get("kind") != "cache":
            continue
        op = record.get("op", "?")
        cache_ops[op] = cache_ops.get(op, 0) + 1
        if op == "hit":
            saved_wall_s += record.get("saved_wall_s", 0.0)
    if cache_ops:
        hits = cache_ops.get("hit", 0)
        misses = cache_ops.get("miss", 0)
        lookups = hits + misses
        rate = 100.0 * hits / lookups if lookups else 0.0
        lines.append("")
        lines.append(
            f"result cache: {hits} hit(s), {misses} miss(es), "
            f"{cache_ops.get('store', 0)} store(s), "
            f"{cache_ops.get('verify', 0)} verified — "
            f"hit-rate {rate:.1f}%, "
            f"est. {saved_wall_s:.2f}s of simulation saved"
        )

    perturbed = [r for r in tasks if r.get("scenario")]
    if perturbed:
        by_scenario: dict[str, dict[str, int]] = {}
        for record in perturbed:
            agg = by_scenario.setdefault(
                record["scenario"],
                {"tasks": 0, "runs": 0, "lost_chunks": 0, "lost_tasks": 0},
            )
            agg["tasks"] += 1
            agg["runs"] += record.get("runs", 0)
            agg["lost_chunks"] += record.get("lost_chunks", 0)
            agg["lost_tasks"] += record.get("lost_tasks", 0)
        lines.append("")
        lines.append("perturbation scenarios:")
        for name in sorted(by_scenario):
            agg = by_scenario[name]
            lines.append(
                f"  {name}: {agg['tasks']} task(s), {agg['runs']} run(s) "
                f"— {agg['lost_chunks']} chunk(s) lost to faults "
                f"({agg['lost_tasks']} task(s) requeued)"
            )

    artifacts = [r for r in records if r.get("kind") == "artifact"]
    if artifacts:
        total_files = sum(len(r.get("files", [])) for r in artifacts)
        total_fb = sum(r.get("fallbacks", 0) for r in artifacts)
        total_s = sum(r.get("elapsed_s", 0.0) for r in artifacts)
        lines.append("")
        lines.append(
            f"figure pipeline: {len(artifacts)} artifact(s), "
            f"{total_files} file(s) emitted in {total_s:.2f}s, "
            f"{total_fb} fallback(s)"
        )
        slowest_artifacts = sorted(
            artifacts, key=lambda r: r.get("elapsed_s", 0.0), reverse=True
        )[:top]
        for record in slowest_artifacts:
            lines.append(
                f"  {record.get('artifact', '?'):<14s} "
                f"{record.get('mode', '?'):<6s} "
                f"{record.get('elapsed_s', 0.0):>8.3f}s "
                f"(plot={record.get('plot', '?')})"
            )

    advises = [r for r in records if r.get("kind") == "advise"]
    if advises:
        latencies = sorted(r.get("elapsed_s", 0.0) for r in advises)

        def pct(fraction: float) -> float:
            # nearest-rank percentile: p95 of 3 samples is the max
            rank = math.ceil(fraction * len(latencies))
            return latencies[max(0, min(len(latencies), rank) - 1)]

        hits = sum(r.get("cache_hits", 0) for r in advises)
        misses = sum(r.get("cache_misses", 0) for r in advises)
        lookups = hits + misses
        hit_share = 100.0 * hits / lookups if lookups else 0.0
        best_counts: dict[str, int] = {}
        for record in advises:
            best = record.get("best", "?")
            best_counts[best] = best_counts.get(best, 0) + 1
        favorite = max(best_counts, key=best_counts.get)  # type: ignore[arg-type]
        lines.append("")
        lines.append(
            f"advisor: {len(advises)} quer(y/ies) — latency "
            f"p50 {pct(0.50):.3f}s, p95 {pct(0.95):.3f}s; "
            f"cache-hit share {hit_share:.1f}% "
            f"({hits}/{lookups} lookup(s))"
        )
        lines.append(
            "  most recommended: " + ", ".join(
                f"{name} x{count}" for name, count in sorted(
                    best_counts.items(), key=lambda kv: (-kv[1], kv[0])
                )[:top]
            )
            + (f" (favorite: {favorite})" if len(best_counts) > 1 else "")
        )

    progress = [r for r in records if r.get("kind") == "progress"]
    if progress:
        last = progress[-1]
        lines.append("")
        lines.append(
            f"progress: {len(progress)} heartbeat(s), last at "
            f"{last.get('elapsed_s', 0.0):.2f}s — "
            f"{last.get('done', '?')}/{last.get('total', '?')} done, "
            f"{last.get('events_per_s', 0.0):,.0f} ev/s"
        )

    if fallbacks:
        by_category: dict[str, dict[tuple[str, str, str], int]] = {}
        for record in fallbacks:
            category = record.get("category", "capability")
            counts = by_category.setdefault(category, {})
            key = (
                record.get("requested", "?"),
                record.get("chosen", "?"),
                record.get("reason", ""),
            )
            counts[key] = counts.get(key, 0) + 1
        for category in sorted(by_category, key=lambda c: (
            c != "capability", c
        )):
            lines.append("")
            if category == "capability":
                lines.append("capability fallbacks:")
            else:
                lines.append(f"other fallbacks ({category}):")
            counts = by_category[category]
            for (requested, chosen, reason), count in sorted(counts.items()):
                lines.append(f"  {requested} -> {chosen}  x{count}")
                if reason:
                    lines.append(f"    {reason}")
    elif tasks:
        lines.append("")
        lines.append(
            "fallbacks: none — every task ran on its requested backend"
        )

    return "\n".join(lines)
