"""Provenance capture: the environment snapshot a rerun needs.

Section V of the paper publishes raw data so others can audit it; a
series of numbers without the environment that produced them is not
auditable.  :func:`capture_provenance` snapshots what matters for a
rerun — package version, python/interpreter, machine, the
``REPRO_WORKERS`` override, and (when a platform is in play) a content
hash of its XML serialisation — and is merged into
``CampaignRecord.metadata`` on save and written as the first record of
every run journal.
"""

from __future__ import annotations

import hashlib
import os
import platform as _platform
import sys

__all__ = ["capture_provenance", "platform_xml_hash"]


def platform_xml_hash(sim_platform) -> str:
    """SHA-256 of the platform's XML serialisation (content identity).

    Two platforms with the same hosts, links and routes hash equally no
    matter how they were constructed, so the hash identifies the
    simulated platform across processes and machines.
    """
    from ..simgrid.xmlio import platform_to_xml

    xml = platform_to_xml(sim_platform)
    return hashlib.sha256(xml.encode()).hexdigest()


def capture_provenance(sim_platform=None) -> dict:
    """The environment snapshot of the current process.

    ``sim_platform`` (a :class:`repro.simgrid.platform.Platform`) adds
    a ``platform_xml_sha256`` entry; campaigns without an explicit
    platform omit it (the free-network default is implied by the
    package version).
    """
    from .. import __version__

    info: dict = {
        "package_version": __version__,
        "python": _platform.python_version(),
        "implementation": sys.implementation.name,
        "system": _platform.system(),
        "machine": _platform.machine(),
        "repro_workers": os.environ.get("REPRO_WORKERS"),
    }
    if sim_platform is not None:
        info["platform_xml_sha256"] = platform_xml_hash(sim_platform)
    return info
