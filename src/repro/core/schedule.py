"""Shared closed-form chunk-schedule precomputation.

Both fast paths — the vectorized batch kernel
(:mod:`repro.directsim.batch`) and the compiled MSG loop
(:mod:`repro.simgrid.fastpath`) — rest on the same precondition: the
technique's chunk sequence must be a pure function of ``(n, p, params)``
so it can be computed once via :meth:`~repro.core.base.Scheduler.
chunk_schedule` and replayed across replications.  This module holds the
single eligibility predicate and the precomputation helper they share,
so the two fast paths cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Scheduler
from .registry import get_technique


class ScheduleUnavailableError(ValueError):
    """The technique's chunk sequence cannot be precomputed."""


def _technique_class(
    technique: str | Scheduler | type[Scheduler],
) -> type[Scheduler]:
    if isinstance(technique, str):
        return get_technique(technique)
    if isinstance(technique, Scheduler):
        return type(technique)
    return technique


def schedule_ineligibility(
    technique: str | Scheduler | type[Scheduler],
) -> str | None:
    """Why ``technique``'s schedule cannot be precomputed (None = it can).

    The single predicate behind both fast paths: a technique qualifies
    when its chunk sequence is deterministic in ``(n, p, params)`` —
    independent of worker identity, request timing and measured
    execution times — and it is not adaptive.  The returned string is a
    short human-readable reason, used by fallback events and the docs'
    eligibility matrix.
    """
    cls = _technique_class(technique)
    if cls.adaptive:
        return "adaptive technique: chunk sizes depend on measured times"
    if not cls.deterministic_schedule:
        return "no precomputable chunk schedule for this technique"
    return None


def closed_form_supported(
    technique: str | Scheduler | type[Scheduler],
) -> bool:
    """True when ``technique``'s chunk schedule can be precomputed."""
    return schedule_ineligibility(technique) is None


@dataclass(frozen=True)
class PrecomputedSchedule:
    """One cell's chunk schedule, computed once and replayed per run."""

    label: str
    sizes: np.ndarray      # int64 chunk sizes, summing to n
    starts: np.ndarray     # int64 first-task index of each chunk

    @property
    def num_chunks(self) -> int:
        return int(self.sizes.size)


def precompute_schedule(scheduler: Scheduler) -> PrecomputedSchedule:
    """The ``(label, sizes, starts)`` triple both fast paths replay.

    ``scheduler`` must be fresh; raises :class:`ScheduleUnavailableError`
    when the technique has no closed-form schedule.
    """
    if scheduler.state.scheduled_chunks:
        raise ValueError(
            "scheduler has already been used; pass a fresh one"
        )
    label = scheduler.label or scheduler.name
    sizes = scheduler.chunk_schedule()
    if sizes is None:
        raise ScheduleUnavailableError(
            f"{label or type(scheduler).__name__} has no precomputable "
            f"chunk schedule; use a scalar simulator"
        )
    return PrecomputedSchedule(
        label=label, sizes=sizes, starts=np.cumsum(sizes) - sizes
    )
