"""Name-based registry of DLS techniques.

Techniques register themselves at import time via :func:`register`.  The
registry powers the CLI, the experiment descriptors, and the Table II
generator.
"""

from __future__ import annotations

from typing import Callable, Iterator, Type

from .base import Scheduler
from .params import SchedulingParams

_REGISTRY: dict[str, Type[Scheduler]] = {}


def register(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator adding a technique to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate technique name {key!r}")
    _REGISTRY[key] = cls
    return cls


def technique_names() -> list[str]:
    """All registered technique names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_technique(name: str) -> Type[Scheduler]:
    """Look up a technique class by (case-insensitive) name."""
    _ensure_loaded()
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown DLS technique {name!r}; known: {known}") from None


def create(name: str, params: SchedulingParams, **kwargs) -> Scheduler:
    """Instantiate a technique by name."""
    return get_technique(name)(params, **kwargs)


def iter_techniques() -> Iterator[Type[Scheduler]]:
    """Iterate over registered technique classes in name order."""
    _ensure_loaded()
    for key in sorted(_REGISTRY):
        yield _REGISTRY[key]


def make_factory(name: str, **kwargs) -> Callable[[SchedulingParams], Scheduler]:
    """Return a ``params -> Scheduler`` factory, useful for experiment specs."""
    cls = get_technique(name)
    return lambda params: cls(params, **kwargs)


def _ensure_loaded() -> None:
    """Import the technique modules so their @register decorators run."""
    from . import techniques  # noqa: F401  (import for side effects)
