"""Scheduling parameters shared by all DLS techniques.

The parameter names follow Table I of Hoffeins, Ciorba & Banicescu (2017):

====== =====================================================
symbol meaning
====== =====================================================
``p``  number of processing elements (PEs)
``n``  number of tasks
``r``  number of remaining tasks (run-time quantity)
``h``  scheduling overhead per scheduling operation [s]
``mu`` mean of the task execution times [s]
``sigma`` standard deviation of the task execution times [s]
``f``  first chunk size (TSS)
``l``  last chunk size (TSS)
``m``  number of remaining *and* under-execution tasks
====== =====================================================

``r`` and ``m`` are run-time quantities maintained by the scheduler itself;
everything else is static input collected in :class:`SchedulingParams`.

Note on ``sigma``: Table I of the paper labels it "variance", but the
experiments use ``sigma = 1 s`` alongside ``mu = 1 s`` for an exponential
distribution, i.e. the *standard deviation*.  All formulas in this package
interpret ``sigma`` as the standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence


@dataclass(frozen=True)
class SchedulingParams:
    """Static inputs for a scheduling run.

    Only ``n`` and ``p`` are mandatory; each technique validates that the
    optional parameters it requires are present (see
    :attr:`repro.core.base.Scheduler.requires`).

    Parameters
    ----------
    n:
        Total number of tasks (loop iterations) to schedule.
    p:
        Number of processing elements.
    h:
        Scheduling overhead per scheduling operation, in seconds.
    mu:
        Mean task execution time, in seconds.
    sigma:
        Standard deviation of the task execution times, in seconds.
    first_chunk, last_chunk:
        TSS ``f`` and ``l``.  When omitted, TSS uses the defaults of
        Tzen & Ni (1993): ``f = ceil(n / (2 p))`` and ``l = 1``.
    chunk_size:
        Fixed chunk size ``k`` for CSS(k).  When omitted, CSS uses
        ``ceil(n / p)`` as in the TSS publication's experiments.
    min_chunk:
        Minimum chunk size for GSS(k); 1 recovers plain GSS.
    weights:
        Relative PE speeds for weighted factoring (WF); normalised
        internally so only ratios matter.
    alpha:
        Confidence multiplier for the taper (TAP) technique; Lucco (1992)
        recommends values around 1.3.
    """

    n: int
    p: int
    h: float = 0.0
    mu: float | None = None
    sigma: float | None = None
    first_chunk: int | None = None
    last_chunk: int | None = None
    chunk_size: int | None = None
    min_chunk: int = 1
    weights: tuple[float, ...] | None = None
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be non-negative, got {self.n}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        if self.h < 0:
            raise ValueError(f"h must be non-negative, got {self.h}")
        if self.mu is not None and self.mu <= 0:
            raise ValueError(f"mu must be positive when given, got {self.mu}")
        if self.sigma is not None and self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        if self.min_chunk < 1:
            raise ValueError(f"min_chunk must be >= 1, got {self.min_chunk}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.first_chunk is not None and self.first_chunk < 1:
            raise ValueError("first_chunk must be >= 1 when given")
        if self.last_chunk is not None and self.last_chunk < 1:
            raise ValueError("last_chunk must be >= 1 when given")
        if self.weights is not None:
            if len(self.weights) != self.p:
                raise ValueError(
                    f"weights must have one entry per PE "
                    f"({self.p}), got {len(self.weights)}"
                )
            if any(w <= 0 for w in self.weights):
                raise ValueError("weights must all be positive")
            # Dataclass is frozen: normalise via object.__setattr__.
            total = float(sum(self.weights))
            object.__setattr__(
                self, "weights", tuple(w / total for w in self.weights)
            )
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    def with_updates(self, **changes) -> "SchedulingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @staticmethod
    def uniform_weights(p: int) -> tuple[float, ...]:
        """Equal weights for ``p`` PEs (a homogeneous system)."""
        return tuple(1.0 / p for _ in range(p))


def weights_from_speeds(speeds: Sequence[float]) -> tuple[float, ...]:
    """Convert absolute PE speeds into normalised WF weights.

    Faster PEs receive proportionally larger weights, as in
    Hummel et al. (1996).
    """
    if not speeds:
        raise ValueError("speeds must be non-empty")
    if any(s <= 0 for s in speeds):
        raise ValueError("speeds must all be positive")
    total = float(sum(speeds))
    return tuple(s / total for s in speeds)
