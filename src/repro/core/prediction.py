"""Pre-execution performance prediction — the paper's future-work goal.

The paper's conclusion: "The present work lays the foundation for
modeling the overhead of the DLS techniques, with the goal to identify
the technique with lowest overhead and overall best performance for a
given application and system, prior to execution."  This module
implements that model on top of the verified implementations:

* the *overhead* term is exact: the non-adaptive techniques' chunk
  sequences are deterministic functions of ``(n, p, h, mu, sigma)``, so
  the number of scheduling operations ``C`` — and hence the average
  per-PE overhead ``h * C / p`` — can be computed by draining the
  scheduler without simulating time;
* the *imbalance* term uses the classic order-statistics estimate for
  the terminal imbalance: the expected gap behind the last-finishing PE
  is roughly ``sigma * sqrt(2 * k_tail * ln p)``, with ``k_tail`` the
  average size of the final round of chunks (one per PE);
* for the fine-grained end (SS-like), the imbalance floor is half an
  average task.

Absolute values are estimates; the *ranking* is what matters, and it is
validated against simulation in ``tests/test_prediction.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .base import Scheduler, chunk_sizes
from .params import SchedulingParams
from .registry import get_technique


@dataclass(frozen=True)
class Prediction:
    """Predicted cost decomposition of one technique on one problem."""

    technique: str
    num_chunks: int
    overhead_time: float      # h * C / p — exact for the run's accounting
    imbalance_time: float     # order-statistics estimate
    largest_chunk: int
    tail_chunk: float         # average size of the final p chunks

    @property
    def predicted_wasted_time(self) -> float:
        """Overhead plus terminal imbalance — the paper's metric."""
        return self.overhead_time + self.imbalance_time


def predict(technique: str, params: SchedulingParams, **kwargs) -> Prediction:
    """Predict a technique's wasted time prior to execution.

    Adaptive techniques are predicted through their idealised chunk
    sequence (feedback equal to the mean), which is what
    :func:`repro.core.base.chunk_sizes` produces.
    """
    cls = get_technique(technique)
    scheduler: Scheduler = cls(params, **kwargs)
    sizes = chunk_sizes(scheduler)
    if not sizes:
        return Prediction(
            technique=cls.label or cls.name,
            num_chunks=0,
            overhead_time=0.0,
            imbalance_time=0.0,
            largest_chunk=0,
            tail_chunk=0.0,
        )
    p = params.p
    c = len(sizes)
    overhead = params.h * c / p
    sigma = params.sigma if params.sigma is not None else 0.0
    mu = params.mu if params.mu is not None else 0.0
    tail = sizes[-p:] if c >= p else sizes
    k_tail = sum(tail) / len(tail)
    if p > 1 and sigma > 0:
        imbalance = sigma * math.sqrt(2.0 * k_tail * math.log(p))
    else:
        imbalance = 0.0
    # Even with zero variance the final round quantises.  Two bounds
    # apply: the spread of the final round (equal chunks — STAT on a
    # divisible n — quantise to zero) and, for dynamically requested
    # chunks, the size of the very last chunk (self-scheduling staggers
    # earlier differences away, so only the final straggler remains).
    if p > 1 and mu > 0:
        spread = max(tail) - min(tail)
        quant = min(spread, sizes[-1])
        imbalance += 0.5 * quant * mu * (1.0 - 1.0 / p)
    # Staggered-start overshoot: when the *first* round hands out
    # unequal chunks (GSS-style decreasing sizes, as opposed to
    # factoring's uniform batches), the variance of the largest early
    # chunk cannot be fully rebalanced away — the PEs holding smaller
    # early chunks run out of counterweight.  Scale the order-statistics
    # overshoot of the largest chunk by the first round's inequality.
    if c > p and p > 1 and sigma > 0:
        head = sizes[:p]
        heterogeneity = (max(head) - min(head)) / max(head)
        if heterogeneity > 0:
            overshoot = 0.25 * sigma * math.sqrt(
                2.0 * max(head) * math.log(p)
            )
            imbalance += heterogeneity * overshoot
    return Prediction(
        technique=cls.label or cls.name,
        num_chunks=c,
        overhead_time=overhead,
        imbalance_time=imbalance,
        largest_chunk=max(sizes),
        tail_chunk=k_tail,
    )



def predict_all(
    params: SchedulingParams,
    techniques: Sequence[str] = (
        "stat", "ss", "fsc", "gss", "tss", "fac", "fac2", "bold",
    ),
) -> list[Prediction]:
    """Predictions for several techniques, best (lowest cost) first."""
    predictions = [predict(t, params) for t in techniques]
    predictions.sort(key=lambda pr: pr.predicted_wasted_time)
    return predictions


def recommend_technique(
    params: SchedulingParams,
    techniques: Sequence[str] = (
        "stat", "ss", "fsc", "gss", "tss", "fac", "fac2", "bold",
    ),
) -> Prediction:
    """The technique with the lowest predicted wasted time."""
    return predict_all(params, techniques)[0]


def prediction_report(params: SchedulingParams,
                      techniques: Sequence[str] | None = None) -> str:
    """ASCII table of the predictions, best first."""
    kwargs = {} if techniques is None else {"techniques": techniques}
    rows = predict_all(params, **kwargs)
    lines = [
        f"n={params.n}, p={params.p}, h={params.h}, "
        f"mu={params.mu}, sigma={params.sigma}",
        f"{'technique':>10} {'chunks':>7} {'overhead':>9} "
        f"{'imbalance':>10} {'predicted':>10}",
    ]
    for pr in rows:
        lines.append(
            f"{pr.technique:>10} {pr.num_chunks:>7} {pr.overhead_time:>9.2f} "
            f"{pr.imbalance_time:>10.2f} {pr.predicted_wasted_time:>10.2f}"
        )
    return "\n".join(lines)
