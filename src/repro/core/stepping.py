"""Batched stepping states for the feedback-loop techniques.

The closed-form fast paths (:mod:`repro.core.schedule`) cover techniques
whose chunk sequence is a pure function of ``(n, p, params)``.  The
adaptive and worker-dependent techniques — the AWF family, AF, BOLD,
WF, PLS, RND — are per-chunk *feedback* loops instead: each chunk size
depends on which worker asks, when it asks, or what execution times were
measured.  They cannot be precomputed, but they *can* be advanced in
lock-step across R replications: one scheduling round assigns exactly
one chunk per live replication, so the technique's scalar state
(per-worker weighted averages, Welford estimates, batch bookkeeping)
generalises to ``(R,)``- or ``(R, p)``-shaped arrays with one vectorized
update per round.

A :class:`SteppingState` is that array-shaped state.  Each technique
module registers its own state class (via :func:`register_stepping`)
next to the scalar implementation, reading the technique's constants off
a scalar *prototype* instance so the two paths share one set of
formulas and cannot drift.  The round-loop kernel that drives these
states lives in :mod:`repro.directsim.batch`; its fidelity contract is
the same as the closed-form kernel's: bit-identical per-replication
results for deterministic workloads, equal-in-distribution for
stochastic ones (``tests/test_stepping_kernel.py``).

Bitwise-fidelity helpers
------------------------
:func:`ordered_sum` exists because ``np.sum`` uses pairwise summation,
which is *not* bitwise equal to the scalar code's sequential Python
``sum``.  A cumulative sum is evaluated strictly left-to-right, so its
last element reproduces the scalar reductions bit-for-bit (adding the
``0.0`` of masked-out entries is an exact identity for finite values).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .base import Scheduler

__all__ = [
    "SteppingState",
    "ceil_div",
    "ordered_sum",
    "register_stepping",
    "stepping_state_for",
    "stepping_supported",
]


def ordered_sum(values: np.ndarray) -> np.ndarray:
    """Strict left-to-right sum along the last axis.

    Bitwise equal to the scalar code's sequential ``sum()`` over the
    same values, unlike ``np.sum`` (pairwise summation).
    """
    return np.cumsum(values, axis=-1)[..., -1]


def ceil_div(a: np.ndarray, b: int | np.ndarray) -> np.ndarray:
    """Vectorized ``Scheduler._ceil_div`` (exact for integer arrays)."""
    return -(-a // b)


class SteppingState(ABC):
    """Array-shaped adaptive state of one technique across R replications.

    Built from a fresh scalar *prototype* scheduler (never mutated; only
    its parameters and technique constants are read).  The kernel calls
    the three hooks with parallel ``(K,)`` arrays describing the K live
    replications of the current round — ``rows`` (replication indices,
    unique within a round), ``workers`` (the requesting PE per
    replication), and the per-replication counters.  Hook order per
    round mirrors one scalar ``next_chunk`` cycle: pending completions
    are reported first (:meth:`record_finished`), then chunk sizes are
    computed (:meth:`chunk_sizes`), then the *clipped* sizes are
    confirmed (:meth:`after_assignment`).
    """

    def __init__(self, prototype: "Scheduler", reps: int):
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.prototype = prototype
        self.params = prototype.params
        self.reps = int(reps)

    @abstractmethod
    def chunk_sizes(
        self,
        rows: np.ndarray,
        workers: np.ndarray,
        remaining: np.ndarray,
        outstanding: np.ndarray,
    ) -> np.ndarray:
        """The technique's unclipped chunk-size formula, one per row.

        ``remaining``/``outstanding`` are the pre-assignment task
        counters of the selected rows (Table I's r and m - r).  The
        kernel clips the returned sizes exactly as
        :meth:`repro.core.base.Scheduler.next_chunk` does.
        """

    def after_assignment(
        self, rows: np.ndarray, workers: np.ndarray, sizes: np.ndarray
    ) -> None:
        """Hook after assignment; ``sizes`` are the clipped chunk sizes."""

    def record_finished(
        self,
        rows: np.ndarray,
        workers: np.ndarray,
        sizes: np.ndarray,
        elapsed: np.ndarray,
    ) -> None:
        """Report finished chunks (adaptive feedback), one per row."""


_STEPPING: dict[str, type[SteppingState]] = {}


def register_stepping(*names: str):
    """Class decorator registering a stepping state for technique names."""

    def decorator(cls: type[SteppingState]) -> type[SteppingState]:
        for name in names:
            key = name.lower()
            if key in _STEPPING and _STEPPING[key] is not cls:
                raise ValueError(f"duplicate stepping state for {key!r}")
            _STEPPING[key] = cls
        return cls

    return decorator


def _technique_name(technique) -> str:
    if isinstance(technique, str):
        return technique.lower()
    name = getattr(technique, "name", "")
    return str(name).lower()


def stepping_supported(technique) -> bool:
    """True when ``technique`` has a registered batched stepping state."""
    from . import techniques  # noqa: F401  (populate the registry)

    return _technique_name(technique) in _STEPPING


def stepping_state_for(prototype: "Scheduler", reps: int) -> SteppingState:
    """Instantiate the registered stepping state for ``prototype``."""
    from . import techniques  # noqa: F401  (populate the registry)

    key = _technique_name(prototype)
    try:
        cls = _STEPPING[key]
    except KeyError:
        raise KeyError(
            f"no batched stepping state registered for technique {key!r}"
        ) from None
    return cls(prototype, reps)
