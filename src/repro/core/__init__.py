"""Core DLS scheduling: parameters, scheduler protocol, technique registry."""

from .params import SchedulingParams, weights_from_speeds
from .base import ChunkRecord, Scheduler, SchedulerState, chunk_sizes
from .schedule import (
    PrecomputedSchedule,
    ScheduleUnavailableError,
    closed_form_supported,
    precompute_schedule,
    schedule_ineligibility,
)
from .prediction import (
    Prediction,
    predict,
    predict_all,
    prediction_report,
    recommend_technique,
)
from .registry import (
    create,
    get_technique,
    iter_techniques,
    make_factory,
    technique_names,
)

__all__ = [
    "Prediction",
    "PrecomputedSchedule",
    "ScheduleUnavailableError",
    "SchedulingParams",
    "closed_form_supported",
    "precompute_schedule",
    "schedule_ineligibility",
    "predict",
    "predict_all",
    "prediction_report",
    "recommend_technique",
    "weights_from_speeds",
    "ChunkRecord",
    "Scheduler",
    "SchedulerState",
    "chunk_sizes",
    "create",
    "get_technique",
    "iter_techniques",
    "make_factory",
    "technique_names",
]
