"""AWF and its variants — adaptive weighted factoring (Banicescu,
Velusamy & Devaprasad 2003; Cariño & Banicescu 2008).

Weighted factoring with weights *measured at execution time* instead of
supplied a priori.  Each PE's weight derives from its weighted average
ratio (time per task), where later chunks count more:

.. math::

   \\pi_i = \\frac{\\sum_k k \\; (t_{ik} / s_{ik})}{\\sum_k k}

   w_i = p \\cdot \\frac{1 / \\pi_i}{\\sum_j 1 / \\pi_j}

and PE ``i``'s chunk is its weighted share of the FAC2 batch:
``chunk_i = ceil(w_i * R / (2 p))``.

The variants differ in *when* weights are recomputed and *what* the chunk
time includes (Cariño & Banicescu 2008; the D/E variants follow the
LB4OMP naming):

========= ============================ ==========================
variant   weight update point          chunk time includes ``h``?
========= ============================ ==========================
AWF       between time steps           no
AWF-B     after each batch             no
AWF-C     after each chunk             no
AWF-D     after each batch             yes
AWF-E     after each chunk             yes
========= ============================ ==========================

Time-stepping applications drive plain AWF through
:meth:`AdaptiveWeightedFactoring.start_timestep`, which re-arms the
scheduler with ``n`` fresh tasks while carrying the performance history
across steps.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from ..base import Scheduler, SchedulerState
from ..registry import register
from ..stepping import SteppingState, ceil_div, ordered_sum, register_stepping


class _PerWorkerStats:
    """Chunk-indexed performance history of one PE."""

    __slots__ = ("weighted_ratio_sum", "index_sum", "chunk_count")

    def __init__(self) -> None:
        self.weighted_ratio_sum = 0.0
        self.index_sum = 0
        self.chunk_count = 0

    def record(self, size: int, elapsed: float) -> None:
        if size <= 0:
            return
        self.chunk_count += 1
        k = self.chunk_count
        self.weighted_ratio_sum += k * (elapsed / size)
        self.index_sum += k

    @property
    def pi(self) -> float | None:
        """Weighted average time per task; None before any data."""
        if self.index_sum == 0:
            return None
        return self.weighted_ratio_sum / self.index_sum


class _AWFBase(Scheduler):
    """Shared machinery: FAC2 batches with measured, normalised weights."""

    adaptive: ClassVar[bool] = True
    #: whether ``record_finished`` times should have ``h`` added
    include_overhead_in_time: ClassVar[bool] = False
    #: "batch", "chunk", or "timestep"
    update_point: ClassVar[str] = "batch"

    def __init__(self, params):
        super().__init__(params)
        self._stats = [_PerWorkerStats() for _ in range(params.p)]
        if params.weights is not None:
            self._weights = [w * params.p for w in params.weights]
        else:
            self._weights = [1.0] * params.p
        self._batch_left = 0
        self._batch_total = 0

    # -- weights ---------------------------------------------------------
    def current_weights(self) -> list[float]:
        """The normalised weights in use (mean 1 across PEs)."""
        return list(self._weights)

    def _recompute_weights(self) -> None:
        pis = [s.pi for s in self._stats]
        known = [pi for pi in pis if pi is not None and pi > 0]
        if not known:
            return
        # PEs without history get the average ratio of the known ones.
        fallback = sum(known) / len(known)
        ratios = [pi if (pi is not None and pi > 0) else fallback for pi in pis]
        inv = [1.0 / r for r in ratios]
        total = sum(inv)
        p = self.params.p
        self._weights = [p * v / total for v in inv]

    # -- batching ---------------------------------------------------------
    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        share = self._batch_total * self._weights[worker] / self.params.p
        return min(max(1, math.ceil(share)), self._batch_left)

    def _start_batch(self) -> None:
        self._batch_total = max(1, self._ceil_div(self.state.remaining, 2))
        self._batch_total = min(self._batch_total, self.state.remaining)
        self._batch_left = self._batch_total
        if self.update_point == "batch":
            self._recompute_weights()

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size

    def _after_completion(self, worker: int, size: int, elapsed: float) -> None:
        t = elapsed + (self.params.h if self.include_overhead_in_time else 0.0)
        self._stats[worker].record(size, t)
        if self.update_point == "chunk":
            self._recompute_weights()


@register_stepping("awf", "awf-b", "awf-c", "awf-d", "awf-e")
class _AWFSteppingState(SteppingState):
    """Batched AWF-family state: the scalar per-worker chunk-indexed
    stats and normalised weights as ``(R, p)`` arrays.

    Reads ``update_point``/``include_overhead_in_time`` and the initial
    weights off the prototype, so the five variants share this one
    state.  Plain AWF updates its weights only *between* time steps
    (``start_timestep``), which the simulators never trigger within a
    run — its weights stay frozen at their initial values and its step
    accumulators never influence chunk sizes, so they are not tracked.
    """

    def __init__(self, prototype: _AWFBase, reps: int):
        super().__init__(prototype, reps)
        p = self.params.p
        self._p = p
        self._update_point = prototype.update_point
        # The scalar path always *adds* the pad (0.0 when the variant
        # excludes h) — an exact identity for finite elapsed times.
        self._time_pad = (
            float(self.params.h)
            if prototype.include_overhead_in_time
            else 0.0
        )
        self._weights = np.tile(
            np.asarray(prototype._weights, dtype=np.float64), (reps, 1)
        )
        self._wrs = np.zeros((reps, p))            # weighted_ratio_sum
        self._index_sum = np.zeros((reps, p), dtype=np.int64)
        self._chunk_count = np.zeros((reps, p), dtype=np.int64)
        self._batch_total = np.zeros(reps, dtype=np.int64)
        self._batch_left = np.zeros(reps, dtype=np.int64)

    def _recompute_weights(self, rows: np.ndarray) -> None:
        isum = self._index_sum[rows]
        has = isum > 0
        pis = self._wrs[rows] / np.where(has, isum, 1)
        known = has & (pis > 0)
        kcount = known.sum(axis=1)
        upd = kcount > 0          # rows with no history keep old weights
        if not upd.any():
            return
        rows = rows[upd]
        pis, known, kcount = pis[upd], known[upd], kcount[upd]
        fallback = ordered_sum(np.where(known, pis, 0.0)) / kcount
        ratios = np.where(known, pis, fallback[:, None])
        inv = 1.0 / ratios
        total = ordered_sum(inv)
        self._weights[rows] = self._p * inv / total[:, None]

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        need = self._batch_left[rows] <= 0
        if need.any():
            nrows = rows[need]
            rem = remaining[need]
            total = np.minimum(np.maximum(ceil_div(rem, 2), 1), rem)
            self._batch_total[nrows] = total
            self._batch_left[nrows] = total
            if self._update_point == "batch":
                self._recompute_weights(nrows)
        share = (
            self._batch_total[rows] * self._weights[rows, workers] / self._p
        )
        sizes = np.maximum(np.ceil(share), 1.0).astype(np.int64)
        return np.minimum(sizes, self._batch_left[rows])

    def after_assignment(self, rows, workers, sizes):
        self._batch_left[rows] -= sizes

    def record_finished(self, rows, workers, sizes, elapsed):
        if self._update_point == "timestep":
            return
        t = elapsed + self._time_pad
        self._chunk_count[rows, workers] += 1
        k = self._chunk_count[rows, workers]
        self._wrs[rows, workers] += k * (t / sizes)
        self._index_sum[rows, workers] += k
        if self._update_point == "chunk":
            self._recompute_weights(rows)


@register
class AdaptiveWeightedFactoring(_AWFBase):
    """AWF: weights frozen within a time step, updated between steps.

    Unlike the batch/chunk variants, the time-step variant aggregates each
    PE's performance *per step* and weights the steps linearly by their
    index — recent steps dominate, so the weights closely follow the rate
    of change in PE speed after each time step (the behaviour the original
    publication describes for time-stepping applications).
    """

    name = "awf"
    label = "AWF"
    requires = frozenset({"p", "r"})
    update_point = "timestep"

    def __init__(self, params):
        super().__init__(params)
        self.timestep = 0
        # Per-step accumulators: (time, tasks) of the step in progress.
        self._step_time = [0.0] * params.p
        self._step_tasks = [0] * params.p

    def _after_completion(self, worker: int, size: int, elapsed: float) -> None:
        # Do not feed the shared chunk-indexed stats; aggregate per step.
        self._step_time[worker] += elapsed
        self._step_tasks[worker] += size

    def start_timestep(self) -> None:
        """Begin a new time step with ``n`` fresh tasks.

        The finished step's per-PE aggregate ratios enter the step-indexed
        history, the weights are recomputed, and the scheduler is re-armed.
        """
        if self.state.outstanding:
            raise RuntimeError(
                "cannot start a time step with chunks still outstanding"
            )
        for worker in range(self.params.p):
            tasks = self._step_tasks[worker]
            if tasks > 0:
                self._stats[worker].record(tasks, self._step_time[worker])
            self._step_time[worker] = 0.0
            self._step_tasks[worker] = 0
        self._recompute_weights()
        self.state = SchedulerState(remaining=self.params.n)
        self._next_task = 0
        self._batch_left = 0
        self._batch_total = 0
        self.timestep += 1


@register
class AdaptiveWeightedFactoringB(_AWFBase):
    """AWF-B: weights updated after each batch, timing excludes ``h``."""

    name = "awf-b"
    label = "AWF-B"
    requires = frozenset({"p", "r"})
    update_point = "batch"


@register
class AdaptiveWeightedFactoringC(_AWFBase):
    """AWF-C: weights updated after each chunk, timing excludes ``h``."""

    name = "awf-c"
    label = "AWF-C"
    requires = frozenset({"p", "r"})
    update_point = "chunk"


@register
class AdaptiveWeightedFactoringD(_AWFBase):
    """AWF-D: weights updated after each batch, timing includes ``h``."""

    name = "awf-d"
    label = "AWF-D"
    requires = frozenset({"p", "r", "h"})
    update_point = "batch"
    include_overhead_in_time = True


@register
class AdaptiveWeightedFactoringE(_AWFBase):
    """AWF-E: weights updated after each chunk, timing includes ``h``."""

    name = "awf-e"
    label = "AWF-E"
    requires = frozenset({"p", "r", "h"})
    update_point = "chunk"
    include_overhead_in_time = True
