"""GSS(k) — guided self scheduling (Polychronopoulos & Kuck, 1987).

Each request receives ``ceil(r / p)`` tasks where ``r`` is the number of
remaining tasks, bounded below by the minimum chunk size ``k``
(``GSS(1)`` is plain GSS).  Designed for uneven PE starting times: early
requests take large chunks, the tail is fine-grained.  Per Table II the
technique requires ``p`` and ``r``.
"""

from __future__ import annotations

import numpy as np

from ..base import Scheduler
from ..registry import register


@register
class GuidedSelfScheduling(Scheduler):
    """Assign ``max(k_min, ceil(remaining / p))`` tasks per request."""

    name = "gss"
    label = "GSS"
    requires = frozenset({"p", "r"})
    deterministic_schedule = True

    def __init__(self, params, min_chunk: int | None = None):
        super().__init__(params)
        k = params.min_chunk if min_chunk is None else min_chunk
        if k < 1:
            raise ValueError(f"GSS minimum chunk must be >= 1, got {k}")
        self.min_chunk_size = int(k)

    @property
    def label_with_k(self) -> str:
        """Figure-style label, e.g. ``GSS(80)``."""
        return f"GSS({self.min_chunk_size})"

    def _chunk_size(self, worker: int) -> int:
        guided = self._ceil_div(self.state.remaining, self.params.p)
        return max(self.min_chunk_size, guided)

    def _chunk_schedule(self) -> np.ndarray:
        remaining, p = self.params.n, self.params.p
        sizes: list[int] = []
        while remaining > 0:
            size = max(self.min_chunk_size, self._ceil_div(remaining, p))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        return np.asarray(sizes, dtype=np.int64)
