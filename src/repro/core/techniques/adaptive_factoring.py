"""AF — adaptive factoring (Banicescu & Liu, 2000).

The most general factoring-family technique: it estimates, *per PE and at
execution time*, the mean ``mu_i`` and variance ``sigma_i^2`` of the task
execution times from the chunks that PE has completed, then sizes PE
``i``'s next chunk as

.. math::

   D = \\sum_j \\sigma_j^2 / \\mu_j \\qquad
   T = \\frac{R}{\\sum_j 1 / \\mu_j}

   chunk_i = \\frac{D + 2T - \\sqrt{D^2 + 4 D T}}{2 \\mu_i}

(Banicescu & Liu 2000, as restated in later AF publications.)  With exact
homogeneous estimates this reduces to factoring.

Estimator note: the scheduler receives chunk-level feedback
``(size, elapsed)``.  Each chunk contributes the observation
``elapsed / size`` (the chunk's mean task time).  Since the variance of a
mean of ``s`` tasks is ``sigma^2 / s``, the per-task variance is estimated
as the running variance of chunk means multiplied by the running average
chunk size.  Until a PE has at least two completed chunks it is
bootstrapped with FAC2-style chunks (``ceil(R / (2p))``), the standard
warm-up in AF implementations.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from ..base import Scheduler
from ..registry import register
from ..stepping import SteppingState, ceil_div, ordered_sum, register_stepping


class _RunningEstimates:
    """Welford-style running mean/variance of chunk-mean observations."""

    __slots__ = ("count", "mean", "m2", "task_total")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.task_total = 0

    def record(self, size: int, elapsed: float) -> None:
        if size <= 0:
            return
        x = elapsed / size
        self.count += 1
        self.task_total += size
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    @property
    def mu(self) -> float | None:
        return self.mean if self.count >= 1 and self.mean > 0 else None

    @property
    def sigma_sq(self) -> float | None:
        """Per-task variance estimate (see module docstring)."""
        if self.count < 2:
            return None
        chunk_mean_var = self.m2 / (self.count - 1)
        avg_chunk = self.task_total / self.count
        return chunk_mean_var * avg_chunk


def af_chunk(remaining: int, mu: list[float], sigma_sq: list[float],
             worker: int) -> int:
    """The AF chunk size for ``worker`` given per-PE estimates."""
    if remaining <= 0:
        return 0
    d = sum(s / m for s, m in zip(sigma_sq, mu))
    t = remaining / sum(1.0 / m for m in mu)
    disc = d * d + 4.0 * d * t
    size = (d + 2.0 * t - math.sqrt(disc)) / (2.0 * mu[worker])
    return max(1, math.ceil(size))


@register_stepping("af")
class _AFSteppingState(SteppingState):
    """Batched AF state: the per-PE Welford estimates as ``(R, p)`` arrays.

    A replication leaves warm-up only when every PE has
    ``WARMUP_CHUNKS`` completed chunks and a positive mean, exactly as
    the scalar ``_chunk_size`` gate; the AF formula itself vectorizes
    bit-exactly (sequential sums via :func:`ordered_sum`, IEEE sqrt).
    """

    def __init__(self, prototype: "AdaptiveFactoring", reps: int):
        super().__init__(prototype, reps)
        p = self.params.p
        self._p = p
        self._warmup = prototype.WARMUP_CHUNKS
        self._count = np.zeros((reps, p), dtype=np.int64)
        self._mean = np.zeros((reps, p))
        self._m2 = np.zeros((reps, p))
        self._task_total = np.zeros((reps, p), dtype=np.int64)

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        count = self._count[rows]
        warm = (count < self._warmup).any(axis=1) | (
            self._mean[rows] <= 0
        ).any(axis=1)
        sizes = np.empty(rows.size, dtype=np.int64)
        if warm.any():
            rem = remaining[warm]
            sizes[warm] = np.maximum(ceil_div(rem, 2 * self._p), 1)
        ready = ~warm
        if ready.any():
            idx = rows[ready]
            mu = self._mean[idx]
            sigma_sq = (self._m2[idx] / (self._count[idx] - 1)) * (
                self._task_total[idx] / self._count[idx]
            )
            d = ordered_sum(sigma_sq / mu)
            t = remaining[ready] / ordered_sum(1.0 / mu)
            disc = d * d + 4.0 * d * t
            size = (d + 2.0 * t - np.sqrt(disc)) / (
                2.0 * mu[np.arange(idx.size), workers[ready]]
            )
            sizes[ready] = np.maximum(np.ceil(size), 1.0).astype(np.int64)
        return sizes

    def record_finished(self, rows, workers, sizes, elapsed):
        x = elapsed / sizes
        self._count[rows, workers] += 1
        count = self._count[rows, workers]
        self._task_total[rows, workers] += sizes
        delta = x - self._mean[rows, workers]
        self._mean[rows, workers] += delta / count
        # Welford: the second factor uses the *updated* mean.
        self._m2[rows, workers] += delta * (x - self._mean[rows, workers])


@register
class AdaptiveFactoring(Scheduler):
    """Factoring with per-PE mean/variance estimated at execution time."""

    name = "af"
    label = "AF"
    requires = frozenset({"p", "r"})
    adaptive: ClassVar[bool] = True

    #: minimum completed chunks per PE before its estimates are trusted
    WARMUP_CHUNKS = 2

    def __init__(self, params):
        super().__init__(params)
        self._estimates = [_RunningEstimates() for _ in range(params.p)]

    def _chunk_size(self, worker: int) -> int:
        est = self._estimates
        if any(e.count < self.WARMUP_CHUNKS for e in est):
            return self._warmup_chunk()
        mu = [e.mu for e in est]
        sigma_sq = [e.sigma_sq for e in est]
        if any(m is None or m <= 0 for m in mu) or any(
            s is None for s in sigma_sq
        ):
            return self._warmup_chunk()
        return af_chunk(self.state.remaining, mu, sigma_sq, worker)

    def _warmup_chunk(self) -> int:
        return max(1, self._ceil_div(self.state.remaining, 2 * self.params.p))

    def _after_completion(self, worker: int, size: int, elapsed: float) -> None:
        self._estimates[worker].record(size, elapsed)

    def estimates_for(self, worker: int) -> tuple[float | None, float | None]:
        """Current (mu, sigma^2) estimates for ``worker`` (None = no data)."""
        e = self._estimates[worker]
        return e.mu, e.sigma_sq
