"""FSC — fixed size chunking (Kruskal & Weiss, 1985).

The first published DLS technique.  The optimal fixed chunk size balances
per-chunk scheduling overhead ``h`` against the load imbalance induced by
task-time variance ``sigma``:

.. math::

   k_{opt} = \\left( \\frac{\\sqrt{2}\\, n\\, h}
                          {\\sigma\\, p\\, \\sqrt{\\ln p}} \\right)^{2/3}

(Equation from Kruskal & Weiss 1985, as restated by Hagerup 1997.)  Per
Table II the technique requires ``p``, ``n``, ``h`` and ``sigma``.

Degenerate inputs fall back conservatively: with ``sigma == 0`` or
``p == 1`` the imbalance term vanishes and the chunk is the even share
``ceil(n/p)``; with ``h == 0`` the overhead term vanishes and the formula
would drive the chunk to 0, so the chunk floors at 1 (self scheduling).
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register


def optimal_fixed_chunk(n: int, p: int, h: float, sigma: float) -> int:
    """The Kruskal-Weiss optimal fixed chunk size, floored at 1."""
    if n <= 0:
        return 1
    if p <= 1 or sigma <= 0:
        return -(-n // max(p, 1))
    log_p = math.log(p)
    if log_p <= 0:
        return -(-n // p)
    k = (math.sqrt(2.0) * n * h / (sigma * p * math.sqrt(log_p))) ** (2.0 / 3.0)
    # Tiny sigma (or huge h) can push the formula past n — or past float
    # range entirely; a chunk larger than n is just "everything".
    if not math.isfinite(k) or k >= n:
        return max(1, n)
    return max(1, math.ceil(k))


@register
class FixedSizeChunking(Scheduler):
    """Assign the Kruskal-Weiss optimal fixed chunk per request."""

    name = "fsc"
    label = "FSC"
    requires = frozenset({"p", "n", "h", "sigma"})
    deterministic_schedule = True

    def __init__(self, params):
        super().__init__(params)
        sigma = params.sigma if params.sigma is not None else 0.0
        self.k = optimal_fixed_chunk(params.n, params.p, params.h, sigma)

    def _chunk_size(self, worker: int) -> int:
        return self.k

    def _chunk_schedule(self) -> np.ndarray:
        return self._constant_schedule(self.params.n, self.k)
