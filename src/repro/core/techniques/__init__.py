"""DLS technique implementations.

Importing this package registers every technique with
:mod:`repro.core.registry`.  Non-adaptive techniques (the eight verified in
the paper plus CSS, WF and TAP) and the adaptive future-work techniques
(AWF family, AF) each live in their own module.
"""

from .static_chunking import StaticChunking
from .self_scheduling import SelfScheduling
from .chunk_self import ChunkSelfScheduling
from .fixed_size import FixedSizeChunking
from .guided import GuidedSelfScheduling
from .trapezoid import TrapezoidSelfScheduling
from .factoring import Factoring, Factoring2
from .weighted_factoring import WeightedFactoring
from .taper import Taper
from .bold import Bold
from .awf import (
    AdaptiveWeightedFactoring,
    AdaptiveWeightedFactoringB,
    AdaptiveWeightedFactoringC,
    AdaptiveWeightedFactoringD,
    AdaptiveWeightedFactoringE,
)
from .adaptive_factoring import AdaptiveFactoring
from .extended import (
    FixedIncrease,
    PerformanceLoopScheduling,
    RandomChunk,
    TrapezoidFactoring,
    VariableIncrease,
)

__all__ = [
    "FixedIncrease",
    "PerformanceLoopScheduling",
    "RandomChunk",
    "TrapezoidFactoring",
    "VariableIncrease",
    "StaticChunking",
    "SelfScheduling",
    "ChunkSelfScheduling",
    "FixedSizeChunking",
    "GuidedSelfScheduling",
    "TrapezoidSelfScheduling",
    "Factoring",
    "Factoring2",
    "WeightedFactoring",
    "Taper",
    "Bold",
    "AdaptiveWeightedFactoring",
    "AdaptiveWeightedFactoringB",
    "AdaptiveWeightedFactoringC",
    "AdaptiveWeightedFactoringD",
    "AdaptiveWeightedFactoringE",
    "AdaptiveFactoring",
]
