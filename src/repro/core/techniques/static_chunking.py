"""STAT — static chunking.

The coarse-grained baseline: ``ceil(n / p)`` tasks are assigned to each PE
in a single scheduling operation before (conceptually) the computation
starts.  Scheduling overhead is negligible (exactly ``p`` scheduling
operations) but load imbalance is maximal among the techniques when task
times vary.
"""

from __future__ import annotations

import numpy as np

from ..base import Scheduler
from ..registry import register


@register
class StaticChunking(Scheduler):
    """Assign ``ceil(n/p)`` tasks per request; at most ``p`` requests."""

    name = "stat"
    label = "STAT"
    requires = frozenset({"p", "n"})
    deterministic_schedule = True

    def _chunk_size(self, worker: int) -> int:
        return self._ceil_div(self.params.n, self.params.p)

    def _chunk_schedule(self) -> np.ndarray:
        n, p = self.params.n, self.params.p
        return self._constant_schedule(n, self._ceil_div(n, p))
