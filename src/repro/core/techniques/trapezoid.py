"""TSS — trapezoid self scheduling (Tzen & Ni, 1993).

Chunk sizes decrease *linearly* from a first size ``f`` to a last size
``l``.  With defaults ``f = ceil(n / (2p))`` and ``l = 1``:

* number of chunks  ``N = ceil(2 n / (f + l))``
* decrement         ``delta = (f - l) / (N - 1)``

The i-th chunk has size ``f - i * delta`` (rounded); the linear decrease
makes the chunk computation cheap (one subtraction) compared to GSS's
division, which is why Tzen & Ni could implement it with a single atomic
fetch-and-add.  Per Table II the technique requires ``p``, ``n``, ``f``
and ``l``.
"""

from __future__ import annotations

import numpy as np

from ..base import Scheduler
from ..registry import register


@register
class TrapezoidSelfScheduling(Scheduler):
    """Assign linearly decreasing chunks from ``f`` down to ``l``."""

    name = "tss"
    label = "TSS"
    requires = frozenset({"p", "n", "f", "l"})
    deterministic_schedule = True

    def __init__(
        self,
        params,
        first_chunk: int | None = None,
        last_chunk: int | None = None,
    ):
        super().__init__(params)
        n, p = params.n, params.p
        f = first_chunk if first_chunk is not None else params.first_chunk
        l = last_chunk if last_chunk is not None else params.last_chunk
        if f is None:
            f = max(1, self._ceil_div(n, 2 * p))
        if l is None:
            l = 1
        if l > f:
            raise ValueError(f"TSS requires l <= f, got f={f}, l={l}")
        self.first = int(f)
        self.last = int(l)
        if n > 0:
            num_chunks = self._ceil_div(2 * n, self.first + self.last)
        else:
            num_chunks = 1
        self.num_planned_chunks = max(1, num_chunks)
        if self.num_planned_chunks > 1:
            self.delta = (self.first - self.last) / (self.num_planned_chunks - 1)
        else:
            self.delta = 0.0
        # The running (real-valued) size of the next chunk.
        self._current = float(self.first)

    def _chunk_size(self, worker: int) -> int:
        size = max(self.last, int(round(self._current)))
        return max(1, size)

    def _after_assignment(self, record) -> None:
        self._current -= self.delta
        if self._current < self.last:
            self._current = float(self.last)

    def _chunk_schedule(self) -> np.ndarray:
        # Replays _chunk_size/_after_assignment arithmetic exactly
        # (including the round() and the floor at ``l``) without
        # touching the instance's state.
        remaining = self.params.n
        current = float(self.first)
        sizes: list[int] = []
        while remaining > 0:
            size = max(1, max(self.last, int(round(current))))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
            current -= self.delta
            if current < self.last:
                current = float(self.last)
        return np.asarray(sizes, dtype=np.int64)
