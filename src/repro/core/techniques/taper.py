"""TAP — the taper strategy (Lucco, 1992).

A further development of factoring: each request receives a chunk close to
the guided share ``r / p`` minus a safety margin derived from the task-time
coefficient of variation, so that the chunk finishes within the remaining
balanced time with confidence level ``alpha``:

.. math::

   v = \\alpha \\; \\sigma / \\mu

   chunk = \\frac{r}{p} + \\frac{v^2}{2}
           - v \\sqrt{2 \\frac{r}{p} + \\frac{v^2}{4}}

(Lucco 1992, as restated in Banicescu & Cariño's 2005 DLS survey.)  With
``sigma = 0`` the margin vanishes and TAP reduces to GSS.
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register


def taper_chunk(remaining: int, p: int, mu: float, sigma: float,
                alpha: float) -> int:
    """Lucco's taper chunk size for ``remaining`` tasks, floored at 1."""
    if remaining <= 0:
        return 0
    x = remaining / p
    if sigma <= 0 or mu <= 0:
        return max(1, math.ceil(x))
    v = alpha * sigma / mu
    size = x + v * v / 2.0 - v * math.sqrt(2.0 * x + v * v / 4.0)
    return max(1, math.ceil(size))


@register
class Taper(Scheduler):
    """Guided chunks reduced by a variance-driven safety margin."""

    name = "tap"
    label = "TAP"
    requires = frozenset({"p", "r", "mu", "sigma"})
    deterministic_schedule = True

    def __init__(self, params, alpha: float | None = None):
        super().__init__(params)
        self.alpha = params.alpha if alpha is None else alpha
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    def _chunk_size(self, worker: int) -> int:
        mu = self.params.mu if self.params.mu is not None else 1.0
        sigma = self.params.sigma if self.params.sigma is not None else 0.0
        return taper_chunk(
            self.state.remaining, self.params.p, mu, sigma, self.alpha
        )

    def _chunk_schedule(self) -> np.ndarray:
        mu = self.params.mu if self.params.mu is not None else 1.0
        sigma = self.params.sigma if self.params.sigma is not None else 0.0
        remaining, p = self.params.n, self.params.p
        sizes: list[int] = []
        while remaining > 0:
            size = taper_chunk(remaining, p, mu, sigma, self.alpha)
            size = max(1, min(size, remaining))
            sizes.append(size)
            remaining -= size
        return np.asarray(sizes, dtype=np.int64)
