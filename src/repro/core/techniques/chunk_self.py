"""CSS(k) — chunk self scheduling.

A fixed, programmer-chosen chunk size ``k``.  The TSS publication
(Tzen & Ni, 1993) uses ``k = ceil(n / p)`` in its experiments, which found
that value near-optimal for uniformly distributed loops; that is the
default here when :attr:`SchedulingParams.chunk_size` is not set (making
CSS behave like STAT with round-robin ordering).
"""

from __future__ import annotations

import numpy as np

from ..base import Scheduler
from ..registry import register


@register
class ChunkSelfScheduling(Scheduler):
    """Assign a constant ``k`` tasks per request."""

    name = "css"
    label = "CSS"
    requires = frozenset({"p", "n"})
    deterministic_schedule = True

    def __init__(self, params, k: int | None = None):
        super().__init__(params)
        if k is None:
            k = params.chunk_size
        if k is None:
            k = max(1, self._ceil_div(params.n, params.p))
        if k < 1:
            raise ValueError(f"CSS chunk size must be >= 1, got {k}")
        self.k = int(k)

    def _chunk_size(self, worker: int) -> int:
        return self.k

    def _chunk_schedule(self) -> np.ndarray:
        return self._constant_schedule(self.params.n, self.k)
