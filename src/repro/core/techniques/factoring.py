"""FAC / FAC2 — factoring (Hummel, Schonberg & Flynn, 1992).

Tasks are scheduled in *batches*; within a batch, all ``p`` chunks have
equal size, computed so that the batch has a high probability of finishing
in balanced time.  With ``R_j`` tasks remaining at the start of batch
``j``, the batch allocates a fraction ``1 / x_j`` of them:

.. math::

   chunk_j = \\lceil R_j / (x_j \\; p) \\rceil

with (Hummel et al. 1992)

.. math::

   b_j = \\frac{p}{2 \\sqrt{R_j}} \\cdot \\frac{\\sigma}{\\mu}

   x_0 = 1 + b_0^2 + b_0 \\sqrt{b_0^2 + 2}  \\quad (first batch)

   x_j = 2 + b_j^2 + b_j \\sqrt{b_j^2 + 4}  \\quad (j \\ge 1)

As ``sigma -> 0`` this degenerates to a single STAT-like batch
(``x_0 -> 1``) followed by halving batches (``x_j -> 2``).

FAC2 is the practical variant for unknown ``mu``/``sigma`` suggested in the
same paper: fix ``x_j = 2`` so each batch allocates half of the remaining
tasks, i.e. ``chunk_j = ceil(R_j / (2 p))``.

Per Table II, FAC requires ``p``, ``r``, ``mu`` and ``sigma``; FAC2
requires only ``p`` and ``r``.
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register


def factoring_x(remaining: int, p: int, mu: float, sigma: float,
                first_batch: bool) -> float:
    """The factoring batch divisor ``x_j``."""
    if remaining <= 0:
        return 2.0
    if sigma <= 0 or mu <= 0:
        return 1.0 if first_batch else 2.0
    b = (p / (2.0 * math.sqrt(remaining))) * (sigma / mu)
    if first_batch:
        return 1.0 + b * b + b * math.sqrt(b * b + 2.0)
    return 2.0 + b * b + b * math.sqrt(b * b + 4.0)


class _BatchedScheduler(Scheduler):
    """Shared batch bookkeeping for the factoring family.

    A new batch begins whenever the previous batch's allocation is
    exhausted.  Subclasses provide :meth:`_batch_chunk` computing the
    per-PE chunk size for a fresh batch.
    """

    deterministic_schedule = True

    def __init__(self, params):
        super().__init__(params)
        self._batch_left = 0          # tasks still claimable in this batch
        self._batch_chunk_size = 0    # equal chunk size within the batch
        self._batch_index = 0

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        return min(self._batch_chunk_size, self._batch_left)

    def _start_batch(self) -> None:
        chunk = max(1, self._batch_chunk(self.state.remaining))
        self._batch_chunk_size = chunk
        self._batch_left = min(chunk * self.params.p, self.state.remaining)
        self._batch_index += 1

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size

    @property
    def batch_index(self) -> int:
        """1-based index of the current batch (0 before any assignment)."""
        return self._batch_index

    def _batch_chunk(self, remaining: int) -> int:
        raise NotImplementedError

    def _chunk_schedule(self) -> np.ndarray:
        # Closed form: per batch, p equal chunks (the last clipped to the
        # batch's allocation).  _batch_chunk may consult _batch_index
        # (FAC's first-batch x), so drive it the way _start_batch would.
        p = self.params.p
        remaining = self.params.n
        saved = self._batch_index
        sizes: list[int] = []
        try:
            self._batch_index = 0
            while remaining > 0:
                chunk = max(1, self._batch_chunk(remaining))
                batch_left = min(chunk * p, remaining)
                self._batch_index += 1
                full, rem = divmod(batch_left, chunk)
                sizes.extend([chunk] * full)
                if rem:
                    sizes.append(rem)
                remaining -= batch_left
        finally:
            self._batch_index = saved
        return np.asarray(sizes, dtype=np.int64)


@register
class Factoring(_BatchedScheduler):
    """FAC with the probabilistic ``x_j`` from known ``mu`` and ``sigma``."""

    name = "fac"
    label = "FAC"
    requires = frozenset({"p", "r", "mu", "sigma"})

    def _batch_chunk(self, remaining: int) -> int:
        p = self.params.p
        mu = self.params.mu if self.params.mu is not None else 1.0
        sigma = self.params.sigma if self.params.sigma is not None else 0.0
        x = factoring_x(remaining, p, mu, sigma, first_batch=self._batch_index == 0)
        return max(1, math.ceil(remaining / (x * p)))


@register
class Factoring2(_BatchedScheduler):
    """FAC2: each batch allocates half of the remaining tasks."""

    name = "fac2"
    label = "FAC2"
    requires = frozenset({"p", "r"})

    def _batch_chunk(self, remaining: int) -> int:
        return self._ceil_div(remaining, 2 * self.params.p)
