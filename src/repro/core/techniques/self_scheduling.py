"""SS — self scheduling.

The fine-grained baseline: every single task is dynamically assigned to an
available PE.  Perfect load balance (up to one task), maximal scheduling
overhead (``n`` scheduling operations).  Per Table II of the paper, SS
requires none of the Table I parameters.
"""

from __future__ import annotations

import numpy as np

from ..base import Scheduler
from ..registry import register


@register
class SelfScheduling(Scheduler):
    """Assign exactly one task per request."""

    name = "ss"
    label = "SS"
    requires = frozenset()
    deterministic_schedule = True

    def _chunk_size(self, worker: int) -> int:
        return 1

    def _chunk_schedule(self) -> np.ndarray:
        return np.ones(max(0, self.params.n), dtype=np.int64)
