"""SS — self scheduling.

The fine-grained baseline: every single task is dynamically assigned to an
available PE.  Perfect load balance (up to one task), maximal scheduling
overhead (``n`` scheduling operations).  Per Table II of the paper, SS
requires none of the Table I parameters.
"""

from __future__ import annotations

from ..base import Scheduler
from ..registry import register


@register
class SelfScheduling(Scheduler):
    """Assign exactly one task per request."""

    name = "ss"
    label = "SS"
    requires = frozenset()

    def _chunk_size(self, worker: int) -> int:
        return 1
