"""Extended DLS techniques from the follow-on literature.

The paper verifies the eight classic non-adaptive techniques; the DLS
line of work it belongs to (and the LB4OMP library of the same group)
carries several further published techniques.  They are provided here so
the library covers the canon:

* **TFSS** — trapezoid factoring self scheduling (Chronopoulos et al.,
  2001): TSS's linear decrease applied per *batch* of ``p`` equal
  chunks; the batch chunk is the mean of the next ``p`` trapezoid steps.
* **FISS** — fixed increase self scheduling (Philip & Das, 1997): chunk
  sizes *increase* linearly over a fixed number of batches, starting
  from a FAC2-style initial chunk.
* **VISS** — variable increase self scheduling (Philip & Das, 1997):
  chunk sizes increase with geometrically decreasing increments
  (a mirrored FAC2).
* **RND** — uniformly random chunk sizes within ``[min, max]``; the
  baseline used in LB4OMP's technique sweeps.
* **PLS** — performance-based loop scheduling (Srivastava et al., 2012):
  a static fraction (the *SWR*, static workload ratio) is chunked evenly
  up front, the dynamic remainder falls back to GSS.
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register
from ..stepping import SteppingState, ceil_div, register_stepping


@register
class TrapezoidFactoring(Scheduler):
    """TFSS: batched TSS — equal chunks per batch, trapezoid decrease."""

    name = "tfss"
    label = "TFSS"
    requires = frozenset({"p", "n", "f", "l"})
    deterministic_schedule = True

    def __init__(self, params, first_chunk: int | None = None,
                 last_chunk: int | None = None):
        super().__init__(params)
        n, p = params.n, params.p
        f = first_chunk if first_chunk is not None else params.first_chunk
        l = last_chunk if last_chunk is not None else params.last_chunk
        if f is None:
            f = max(1, self._ceil_div(n, 2 * p))
        if l is None:
            l = 1
        if l > f:
            raise ValueError(f"TFSS requires l <= f, got f={f}, l={l}")
        self.first = int(f)
        self.last = int(l)
        steps = max(1, self._ceil_div(2 * n, self.first + self.last))
        self.delta = (
            (self.first - self.last) / (steps - 1) if steps > 1 else 0.0
        )
        self._current = float(self.first)
        self._batch_left = 0
        self._batch_chunk = 0

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        return min(self._batch_chunk, self._batch_left)

    def _start_batch(self) -> None:
        p = self.params.p
        # Mean of the next p trapezoid steps = current - delta*(p-1)/2.
        mean = self._current - self.delta * (p - 1) / 2.0
        chunk = max(self.last, int(round(mean)))
        self._batch_chunk = max(1, chunk)
        self._batch_left = min(self._batch_chunk * p, self.state.remaining)
        self._current = max(float(self.last), self._current - self.delta * p)

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size


@register
class FixedIncrease(Scheduler):
    """FISS: linearly increasing chunks over a fixed batch budget."""

    name = "fiss"
    label = "FISS"
    requires = frozenset({"p", "n"})
    deterministic_schedule = True

    #: number of batches the schedule is spread over (Philip & Das use a
    #: small constant; 4 is LB4OMP's default)
    BATCHES = 4

    def __init__(self, params, batches: int | None = None):
        super().__init__(params)
        b = self.BATCHES if batches is None else batches
        if b < 1:
            raise ValueError(f"batches must be >= 1, got {b}")
        self.batches = b
        n, p = params.n, params.p
        # First chunk as in FAC2-style halving over the batch budget,
        # then a constant increment per batch such that all n tasks are
        # covered: sum over batches of p*(c0 + j*inc) = n.
        self.c0 = max(1, n // ((2 + self.batches) * p) or 1)
        if self.batches > 1:
            numer = n - self.batches * p * self.c0
            denom = p * (self.batches * (self.batches - 1) // 2)
            self.increment = max(0, math.ceil(numer / denom)) if denom else 0
        else:
            self.increment = 0
        self._batch_index = 0
        self._batch_left = 0
        self._batch_chunk = 0

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        return min(self._batch_chunk, self._batch_left)

    def _start_batch(self) -> None:
        chunk = self.c0 + self._batch_index * self.increment
        self._batch_chunk = max(1, chunk)
        self._batch_left = min(
            self._batch_chunk * self.params.p, self.state.remaining
        )
        self._batch_index += 1

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size


@register
class VariableIncrease(Scheduler):
    """VISS: chunk sizes increase with halving increments."""

    name = "viss"
    label = "VISS"
    requires = frozenset({"p", "n"})
    deterministic_schedule = True

    def __init__(self, params):
        super().__init__(params)
        n, p = params.n, params.p
        self.c0 = max(1, self._ceil_div(n, 4 * p))
        self._chunk = self.c0
        self._step = self.c0
        self._batch_left = 0

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        return min(self._chunk, self._batch_left)

    def _start_batch(self) -> None:
        if self._batch_left == 0 and self.state.scheduled_chunks:
            # chunk_{j+1} = chunk_j + step/2, step halves each batch
            self._step = max(1, self._step // 2)
            self._chunk = self._chunk + self._step
        self._batch_left = min(
            self._chunk * self.params.p, self.state.remaining
        )

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size


@register
class RandomChunk(Scheduler):
    """RND: uniformly random chunk sizes in ``[min_chunk, n/(2p)]``.

    A stochastic baseline (as used in the LB4OMP sweeps).  The generator
    is seeded from the ``seed`` argument so runs stay reproducible.
    """

    name = "rnd"
    label = "RND"
    requires = frozenset({"p", "n"})

    def __init__(self, params, seed: int = 0):
        super().__init__(params)
        self.low = max(1, params.min_chunk)
        self.high = max(self.low, params.n // (2 * params.p))
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def _chunk_size(self, worker: int) -> int:
        return int(self._rng.integers(self.low, self.high + 1))


@register_stepping("rnd")
class _RNDSteppingState(SteppingState):
    """Batched RND state: one shared draw per round.

    Every replication's scheduler is built with the *same* ``seed``
    kwarg, and RND's size sequence depends only on its own RNG — not on
    worker identity or timing — so all replications draw identical size
    sequences, hold identical ``remaining`` counters by induction, and
    finish on the same round.  One scalar draw per round, broadcast to
    all replications, therefore reproduces every scalar run's sizes
    draw-for-draw (the state's RNG restarts from the seed per block,
    exactly as each scalar run's does).
    """

    def __init__(self, prototype: RandomChunk, reps: int):
        super().__init__(prototype, reps)
        self._low = prototype.low
        self._high = prototype.high
        self._rng = np.random.default_rng(prototype._seed)

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        size = int(self._rng.integers(self._low, self._high + 1))
        return np.full(rows.size, size, dtype=np.int64)


@register
class PerformanceLoopScheduling(Scheduler):
    """PLS: a static prefix, then guided dynamic scheduling.

    The static workload ratio (SWR) fraction of the tasks is divided
    evenly over the PEs up front (one chunk each); the remainder is
    scheduled dynamically with GSS.  SWR defaults to 0.5.
    """

    name = "pls"
    label = "PLS"
    requires = frozenset({"p", "n", "r"})

    def __init__(self, params, swr: float = 0.5):
        super().__init__(params)
        if not 0.0 <= swr <= 1.0:
            raise ValueError(f"swr must be in [0, 1], got {swr}")
        self.swr = swr
        static_total = int(params.n * swr)
        self._static_chunk = static_total // params.p
        self._static_served: set[int] = set()

    def _chunk_size(self, worker: int) -> int:
        if (
            self._static_chunk > 0
            and worker not in self._static_served
        ):
            return self._static_chunk
        return max(1, self._ceil_div(self.state.remaining, self.params.p))

    def _after_assignment(self, record) -> None:
        if (
            self._static_chunk > 0
            and record.worker not in self._static_served
            and record.size <= self._static_chunk
        ):
            self._static_served.add(record.worker)


@register_stepping("pls")
class _PLSSteppingState(SteppingState):
    """Batched PLS state: the per-worker static-prefix served flags.

    Worker-dependent: the first request of each PE gets the static
    chunk, later requests fall back to GSS — so the kernel's argmin pop
    order decides *which* request is a PE's first, exactly as the
    scalar heap does.
    """

    def __init__(self, prototype: PerformanceLoopScheduling, reps: int):
        super().__init__(prototype, reps)
        self._p = self.params.p
        self._static = prototype._static_chunk
        self._served = np.zeros((reps, self.params.p), dtype=bool)

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        dynamic = np.maximum(ceil_div(remaining, self._p), 1)
        if self._static <= 0:
            return dynamic
        fresh = ~self._served[rows, workers]
        return np.where(fresh, self._static, dynamic)

    def after_assignment(self, rows, workers, sizes):
        if self._static <= 0:
            return
        mark = ~self._served[rows, workers] & (sizes <= self._static)
        self._served[rows[mark], workers[mark]] = True
