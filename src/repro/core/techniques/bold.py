"""BOLD — the bold strategy (Hagerup, 1997).

BOLD extends factoring with explicit knowledge of the scheduling overhead
``h``: it follows factoring's decreasing batches, but refuses to let
chunks shrink below the size at which per-chunk overhead would dominate
the imbalance it prevents, and it never allocates more than one PE's fair
share of the *outstanding* work (Table I's ``m``).  Per Table II the
technique requires six quantities: ``p``, ``r``, ``h``, ``mu``, ``sigma``
and ``m``.

Reconstruction note
-------------------
Hagerup's paper derives the chunk size through coupled approximations
whose exact closed forms are not recoverable from the reproduction paper
alone.  This implementation reconstructs the strategy from its published
derivation principle — minimise estimated total wasted time, where the
overhead term is ``h``·(chunks per PE) and the imbalance term follows the
factoring analysis — as:

.. math::

   chunk(r, m) = \\min\\Big( \\lceil m/p \\rceil,\\;
       \\max\\big( chunk_{FAC}(r),\\; k_{KW}(r) \\big) \\Big)

where ``chunk_FAC`` is the factoring batch rule and

.. math::

   k_{KW}(r) = \\left( \\frac{\\sqrt{2}\\, h\\, r}
                       {\\sigma\\, p\\, \\sqrt{\\ln p}} \\right)^{2/3}

is the Kruskal-Weiss overhead-optimal size evaluated on the *remaining*
work.  The floor is what makes the strategy bold: when ``h`` is large the
tail stays coarse, trading a little imbalance for far fewer scheduling
operations.  With ``h = 0`` the floor vanishes and BOLD degenerates to
FAC, matching Hagerup's description of BOLD as an overhead-aware
refinement of factoring.  See DESIGN.md §3 and the ablation benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register
from ..stepping import SteppingState, register_stepping
from .factoring import factoring_x
from .fixed_size import optimal_fixed_chunk


def kw_floor(remaining: int, p: int, h: float, sigma: float) -> int:
    """Kruskal-Weiss overhead-optimal chunk for the remaining work."""
    if remaining <= 0:
        return 0
    if p <= 1 or sigma <= 0 or h <= 0:
        return 1
    return optimal_fixed_chunk(remaining, p, h, sigma)


@register_stepping("bold")
class _BoldSteppingState(SteppingState):
    """Batched BOLD state: per-replication batch bookkeeping.

    Batch starts go through the *scalar* helpers (``factoring_x``,
    ``kw_floor``) in a small Python loop over just the replications
    starting a batch that round — both because batch starts are ~p times
    rarer than chunks and because ``optimal_fixed_chunk``'s ``** (2/3)``
    is not guaranteed bitwise-identical between ``np.power`` and
    Python's ``**``.  Sharing the helpers keeps the two paths on one
    set of constants.
    """

    def __init__(self, prototype: Bold, reps: int):
        super().__init__(prototype, reps)
        params = self.params
        self._p = params.p
        self._h = params.h
        self._mu = params.mu if params.mu is not None else 1.0
        self._sigma = params.sigma if params.sigma is not None else 0.0
        self._batch_left = np.zeros(reps, dtype=np.int64)
        self._batch_chunk = np.zeros(reps, dtype=np.int64)
        self._batch_index = np.zeros(reps, dtype=np.int64)

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        need = self._batch_left[rows] <= 0
        if need.any():
            p = self._p
            for i in np.flatnonzero(need):
                rep = int(rows[i])
                r = int(remaining[i])
                x = factoring_x(
                    r, p, self._mu, self._sigma,
                    first_batch=self._batch_index[rep] == 0,
                )
                fac_chunk = max(1, math.ceil(r / (x * p)))
                floor = kw_floor(r, p, self._h, self._sigma)
                fair_share = -(-max(1, r + int(outstanding[i])) // p)
                chunk = min(max(fac_chunk, floor), max(1, fair_share))
                self._batch_chunk[rep] = chunk
                self._batch_left[rep] = min(chunk * p, r)
                self._batch_index[rep] += 1
        return np.minimum(
            np.maximum(self._batch_chunk[rows], 1), self._batch_left[rows]
        )

    def after_assignment(self, rows, workers, sizes):
        self._batch_left[rows] -= sizes


@register
class Bold(Scheduler):
    """Overhead-aware factoring: factoring batches with a bold floor."""

    name = "bold"
    label = "BOLD"
    requires = frozenset({"p", "r", "h", "mu", "sigma", "m"})

    def __init__(self, params):
        super().__init__(params)
        self._batch_left = 0
        self._batch_chunk_size = 0
        self._batch_index = 0

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        return min(max(1, self._batch_chunk_size), self._batch_left)

    def _start_batch(self) -> None:
        p = self.params.p
        r = self.state.remaining
        mu = self.params.mu if self.params.mu is not None else 1.0
        sigma = self.params.sigma if self.params.sigma is not None else 0.0
        x = factoring_x(r, p, mu, sigma, first_batch=self._batch_index == 0)
        fac_chunk = max(1, math.ceil(r / (x * p)))
        floor = kw_floor(r, p, self.params.h, sigma)
        # The fair share of the outstanding work (Table I's m) caps the
        # boldness; it is evaluated at batch start so the batch stays
        # uniform.  Since the factoring chunk never exceeds ceil(r/p),
        # the cap only ever binds on the KW floor.
        fair_share = self._ceil_div(
            max(1, self.state.in_flight_plus_remaining), p
        )
        chunk = min(max(fac_chunk, floor), max(1, fair_share))
        self._batch_chunk_size = chunk
        self._batch_left = min(chunk * p, r)
        self._batch_index += 1

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size
