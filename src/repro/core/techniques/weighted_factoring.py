"""WF — weighted factoring (Hummel, Schmidt, Uma & Wein, 1996).

Factoring for *heterogeneous* systems: within each batch, PE ``i`` receives
a share of the batch proportional to its (fixed, a-priori known) relative
speed weight ``w_i``.  The batch total follows the factoring rule
(``R_j / x_j`` tasks), so WF degenerates to FAC on a homogeneous system.

Weights come from :attr:`SchedulingParams.weights` (normalised to sum to
one); :func:`repro.core.params.weights_from_speeds` converts absolute PE
speeds.
"""

from __future__ import annotations

import math

import numpy as np

from ..base import Scheduler
from ..registry import register
from ..stepping import SteppingState, register_stepping
from .factoring import factoring_x


@register_stepping("wf")
class _WFSteppingState(SteppingState):
    """Batched WF state: per-replication batch totals and claim sets.

    The chunk size depends on *which* worker asks (its weight, and
    whether it already claimed its share of the batch), so the kernel's
    argmin must present workers in the scalar heap's pop order — which
    it does by construction.  Batch starts reuse the scalar
    ``factoring_x`` in a small loop, as for BOLD.
    """

    def __init__(self, prototype: WeightedFactoring, reps: int):
        super().__init__(prototype, reps)
        params = self.params
        self._p = params.p
        self._mu = params.mu if params.mu is not None else 1.0
        self._sigma = params.sigma if params.sigma is not None else 0.0
        self._weights = np.asarray(prototype.weights, dtype=np.float64)
        self._batch_total = np.zeros(reps, dtype=np.int64)
        self._batch_left = np.zeros(reps, dtype=np.int64)
        self._batch_index = np.zeros(reps, dtype=np.int64)
        self._claimed = np.zeros((reps, params.p), dtype=bool)

    def chunk_sizes(self, rows, workers, remaining, outstanding):
        need = self._batch_left[rows] <= 0
        if need.any():
            p = self._p
            for i in np.flatnonzero(need):
                rep = int(rows[i])
                r = int(remaining[i])
                x = factoring_x(
                    r, p, self._mu, self._sigma,
                    first_batch=self._batch_index[rep] == 0,
                )
                total = min(max(1, math.ceil(r / x)), r)
                self._batch_total[rep] = total
                self._batch_left[rep] = total
                self._batch_index[rep] += 1
                self._claimed[rep, :] = False
        left = self._batch_left[rows]
        claimed = self._claimed[rows, workers]
        share_claimed = np.maximum(left // self._p, 1)
        share_fresh = np.maximum(
            np.ceil(self._batch_total[rows] * self._weights[workers]), 1.0
        ).astype(np.int64)
        share = np.where(claimed, share_claimed, share_fresh)
        return np.minimum(share, left)

    def after_assignment(self, rows, workers, sizes):
        self._batch_left[rows] -= sizes
        self._claimed[rows, workers] = True


@register
class WeightedFactoring(Scheduler):
    """Per-batch chunks proportional to fixed PE weights."""

    name = "wf"
    label = "WF"
    requires = frozenset({"p", "r", "mu", "sigma"})

    def __init__(self, params):
        super().__init__(params)
        if params.weights is not None:
            self.weights = params.weights
        else:
            self.weights = tuple(1.0 / params.p for _ in range(params.p))
        self._batch_left = 0
        self._batch_total = 0
        self._batch_index = 0
        # Workers that already claimed their share of the current batch.
        self._claimed: set[int] = set()

    def _chunk_size(self, worker: int) -> int:
        if self._batch_left <= 0:
            self._start_batch()
        if worker in self._claimed and self._batch_left > 0:
            # A worker outpacing the batch cycle takes the equal-share
            # fallback from what is left of the batch.
            share = max(1, self._batch_left // max(1, self.params.p))
        else:
            share = max(1, math.ceil(self._batch_total * self.weights[worker]))
        return min(share, self._batch_left)

    def _start_batch(self) -> None:
        p = self.params.p
        mu = self.params.mu if self.params.mu is not None else 1.0
        sigma = self.params.sigma if self.params.sigma is not None else 0.0
        x = factoring_x(self.state.remaining, p, mu, sigma,
                        first_batch=self._batch_index == 0)
        total = max(1, math.ceil(self.state.remaining / x))
        self._batch_total = min(total, self.state.remaining)
        self._batch_left = self._batch_total
        self._batch_index += 1
        self._claimed.clear()

    def _after_assignment(self, record) -> None:
        self._batch_left -= record.size
        self._claimed.add(record.worker)
