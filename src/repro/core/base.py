"""Scheduler base class and chunk bookkeeping.

Every DLS technique is a small mutable object created per run.  The master
(real or simulated) calls :meth:`Scheduler.next_chunk` whenever a worker
requests work, and — for adaptive techniques — feeds back measured execution
times through :meth:`Scheduler.record_finished`.

The split between the abstract :meth:`Scheduler._chunk_size` (the published
chunk-size formula) and the concrete :meth:`Scheduler.next_chunk` (clipping
against the remaining tasks, bookkeeping of ``r`` and ``m``) keeps each
technique module focused on its formula.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from .params import SchedulingParams

#: Parameter symbols of Table I, used by :attr:`Scheduler.requires`.
PARAM_SYMBOLS = ("p", "n", "r", "h", "mu", "sigma", "f", "l", "m")


@dataclass(frozen=True)
class ChunkRecord:
    """One scheduling operation: ``size`` tasks assigned to ``worker``.

    ``index`` counts scheduling operations from 0; ``start`` is the index of
    the first task in the chunk (tasks are assigned in order).
    """

    index: int
    worker: int
    start: int
    size: int


@dataclass
class SchedulerState:
    """Mutable run-time state shared by all techniques (Table I's r and m)."""

    remaining: int          # r — tasks not yet assigned
    outstanding: int = 0    # tasks assigned but not yet reported finished
    scheduled_chunks: int = 0

    @property
    def in_flight_plus_remaining(self) -> int:
        """Table I's ``m``: remaining and under-execution tasks."""
        return self.remaining + self.outstanding


class Scheduler(ABC):
    """Abstract base for all DLS techniques.

    Class attributes
    ----------------
    name:
        Canonical lowercase identifier, e.g. ``"gss"``.
    label:
        Display label as used in the paper's figures, e.g. ``"GSS"``.
    requires:
        Frozen set of Table I symbols the technique needs (Table II of the
        paper).  ``p`` and ``n`` are always available; listing them here
        documents that the chunk formula actually uses them.
    adaptive:
        True for techniques that change behaviour based on measured
        execution times (AWF family, AF).
    deterministic_schedule:
        True when the technique's ``(start, size)`` chunk sequence is a
        pure function of ``(n, p, params)`` — independent of which worker
        requests, of request timing, and of measured execution times.
        Such techniques support :meth:`chunk_schedule` and therefore the
        vectorized batch-replication kernel
        (:mod:`repro.directsim.batch`).
    """

    name: ClassVar[str] = ""
    label: ClassVar[str] = ""
    requires: ClassVar[frozenset[str]] = frozenset()
    adaptive: ClassVar[bool] = False
    deterministic_schedule: ClassVar[bool] = False

    def __init__(self, params: SchedulingParams):
        self.params = params
        self.state = SchedulerState(remaining=params.n)
        self._chunks: list[ChunkRecord] = []
        self._next_task = 0
        # Task regions returned by requeue_chunk (fault injection); they
        # are handed out again before any fresh tasks.
        self._requeued: list[tuple[int, int]] = []
        self.validate_params()

    # -- parameter validation -------------------------------------------
    def validate_params(self) -> None:
        """Check that every required optional parameter is present."""
        p = self.params
        missing = []
        if "h" in self.requires and p.h is None:
            missing.append("h")
        if "mu" in self.requires and p.mu is None:
            missing.append("mu")
        if "sigma" in self.requires and p.sigma is None:
            missing.append("sigma")
        if missing:
            raise ValueError(
                f"{self.label or type(self).__name__} requires parameters "
                f"{missing} (see Table II of the paper)"
            )

    # -- the public scheduling interface --------------------------------
    def next_chunk(self, worker: int) -> int:
        """Assign the next chunk to ``worker``; return its size (0 = done).

        The returned size is the technique's chunk-size formula clipped to
        the number of remaining tasks, and never negative.
        """
        if self.state.remaining <= 0:
            return 0
        size = self._chunk_size(worker)
        size = max(0, min(int(size), self.state.remaining))
        if size == 0 and self.state.remaining > 0:
            # A technique must make progress while work remains.
            size = 1
        if self._requeued:
            # Re-issue a lost region first (possibly splitting it).
            start, region = self._requeued.pop()
            if size < region:
                self._requeued.append((start + size, region - size))
            else:
                size = region
        else:
            start = self._next_task
            self._next_task += size
        record = ChunkRecord(
            index=self.state.scheduled_chunks,
            worker=worker,
            start=start,
            size=size,
        )
        self._chunks.append(record)
        self.state.remaining -= size
        self.state.outstanding += size
        self.state.scheduled_chunks += 1
        self._after_assignment(record)
        return size

    def record_finished(
        self,
        worker: int,
        size: int,
        elapsed: float,
    ) -> None:
        """Report that ``worker`` finished a chunk of ``size`` tasks.

        ``elapsed`` is the measured wall time of the chunk (excluding the
        scheduling overhead unless the technique's variant dictates
        otherwise — see the AWF-D/E modules).  Non-adaptive techniques only
        use this to maintain ``m``.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > self.state.outstanding:
            raise ValueError(
                f"reported {size} finished tasks but only "
                f"{self.state.outstanding} are outstanding"
            )
        self.state.outstanding -= size
        self._after_completion(worker, size, elapsed)

    def requeue_chunk(self, record: ChunkRecord) -> None:
        """Return a lost chunk's tasks to the pool (fault injection).

        Used when the PE executing a chunk fails: the chunk's task region
        re-enters the pool and will be re-issued before fresh tasks, so
        position-dependent workloads re-execute the same tasks.  The
        re-issued tasks appear in new :class:`ChunkRecord` entries, so the
        *sum* of all assigned chunk sizes exceeds ``n`` by the amount of
        lost work.
        """
        if record.size <= 0:
            return
        if record.size > self.state.outstanding:
            raise ValueError(
                f"cannot requeue {record.size} tasks; only "
                f"{self.state.outstanding} are outstanding"
            )
        self.state.outstanding -= record.size
        self.state.remaining += record.size
        self._requeued.append((record.start, record.size))

    @property
    def done(self) -> bool:
        """True once every task has been assigned."""
        return self.state.remaining == 0

    @property
    def chunks(self) -> list[ChunkRecord]:
        """All scheduling operations so far, in assignment order."""
        return list(self._chunks)

    @property
    def last_chunk(self) -> ChunkRecord | None:
        """The most recently assigned chunk (None before any assignment)."""
        return self._chunks[-1] if self._chunks else None

    @property
    def num_scheduling_operations(self) -> int:
        """Number of chunks assigned so far (the paper's overhead count)."""
        return self.state.scheduled_chunks

    # -- schedule precomputation ----------------------------------------
    def chunk_schedule(self) -> np.ndarray | None:
        """The full chunk-size sequence this scheduler will produce.

        Returns an int64 array of chunk sizes (summing to ``n``), or
        ``None`` when the sequence depends on run-time feedback (worker
        identity, request timing, or measured execution times) and
        therefore cannot be precomputed.

        Must be called on a *fresh* scheduler.  The generic
        implementation drains ``self`` through the real
        :meth:`next_chunk` machinery, so the instance is consumed; most
        techniques override it with a closed form that leaves the
        instance untouched.  Used by the batch-replication kernel
        (:mod:`repro.directsim.batch`) to compute the schedule once per
        cell and reuse it across all replications.
        """
        if not self.deterministic_schedule:
            return None
        if self.state.scheduled_chunks:
            raise ValueError("chunk_schedule requires a fresh scheduler")
        return self._chunk_schedule()

    def _chunk_schedule(self) -> np.ndarray:
        """Closed-form hook behind :meth:`chunk_schedule`.

        The generic fallback drains ``self`` through the real
        :meth:`next_chunk` machinery (consuming the instance); most
        techniques override it with a closed form that leaves the
        instance untouched.
        """
        mu = self.params.mu or 1.0
        sizes: list[int] = []
        while not self.done:
            size = self.next_chunk(0)
            if size == 0:
                break
            sizes.append(size)
            self.record_finished(0, size, elapsed=size * mu)
        return np.asarray(sizes, dtype=np.int64)

    @staticmethod
    def _constant_schedule(n: int, k: int) -> np.ndarray:
        """Closed form for constant-chunk techniques: ``k``-sized chunks
        until fewer than ``k`` tasks remain, then the remainder."""
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        k = max(1, min(int(k), n))
        full, rem = divmod(n, k)
        sizes = np.full(full + (1 if rem else 0), k, dtype=np.int64)
        if rem:
            sizes[-1] = rem
        return sizes

    # -- hooks for subclasses -------------------------------------------
    @abstractmethod
    def _chunk_size(self, worker: int) -> int:
        """The technique's chunk-size formula (before clipping)."""

    def _after_assignment(self, record: ChunkRecord) -> None:
        """Hook invoked after a chunk is assigned (batch bookkeeping)."""

    def _after_completion(self, worker: int, size: int, elapsed: float) -> None:
        """Hook invoked after a chunk completion report (adaptivity)."""

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _ceil_div(a: int, b: int) -> int:
        return -(-a // b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} n={self.params.n} p={self.params.p} "
            f"remaining={self.state.remaining}>"
        )


def chunk_sizes(scheduler: Scheduler, round_robin: bool = True) -> list[int]:
    """Drain ``scheduler`` with round-robin worker requests; return sizes.

    A convenience used by tests, docs and Table II generation: it assumes
    workers request work in cyclic order, which matches the behaviour of the
    techniques whose chunk size does not depend on *which* worker asks.
    """
    sizes: list[int] = []
    worker = 0
    p = scheduler.params.p
    mu = scheduler.params.mu or 1.0
    while not scheduler.done:
        size = scheduler.next_chunk(worker)
        if size == 0:
            break
        sizes.append(size)
        # Feed back an idealised elapsed time so adaptive techniques can
        # be drained too.
        scheduler.record_finished(worker, size, elapsed=size * mu)
        if round_robin:
            worker = (worker + 1) % p
    return sizes


def expected_chunks_upper_bound(n: int, p: int) -> int:
    """A safe upper bound on scheduling operations for sanity checks."""
    return max(n, p) + p


def positive_finite(x: float, name: str) -> float:
    """Validate that ``x`` is positive and finite; return it."""
    if not math.isfinite(x) or x <= 0:
        raise ValueError(f"{name} must be positive and finite, got {x}")
    return x
