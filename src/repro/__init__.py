"""repro — dynamic loop scheduling (DLS) techniques, verified via
reproducibility of the experiments in Hoffeins, Ciorba & Banicescu (2017).

The package provides:

* :mod:`repro.core` — the DLS technique library (STAT, SS, CSS, FSC, GSS,
  TSS, FAC, FAC2, WF, TAP, BOLD, AWF/-B/-C/-D/-E, AF);
* :mod:`repro.simgrid` — a from-scratch SimGrid-MSG-like discrete-event
  simulator with a master-worker DLS application;
* :mod:`repro.directsim` — a replica of Hagerup's (1997) chunk-level
  simulator;
* :mod:`repro.workloads` — task-time generators including an exact
  ``rand48`` reproduction;
* :mod:`repro.metrics` — wasted time, speedup, overhead/imbalance degrees,
  discrepancies;
* :mod:`repro.experiments` — descriptors and runners regenerating every
  table and figure of the paper.

Quickstart::

    from repro import SchedulingParams, create
    from repro.directsim import DirectSimulator
    from repro.workloads import ExponentialWorkload

    params = SchedulingParams(n=1024, p=8, h=0.5, mu=1.0, sigma=1.0)
    sim = DirectSimulator(params, ExponentialWorkload(mean=1.0))
    result = sim.run(create("fac2", params), seed=42)
    print(result.average_wasted_time)
"""

from .core import (
    ChunkRecord,
    Scheduler,
    SchedulingParams,
    chunk_sizes,
    create,
    get_technique,
    iter_techniques,
    technique_names,
    weights_from_speeds,
)

__version__ = "1.0.0"

__all__ = [
    "ChunkRecord",
    "Scheduler",
    "SchedulingParams",
    "chunk_sizes",
    "create",
    "get_technique",
    "iter_techniques",
    "technique_names",
    "weights_from_speeds",
    "__version__",
]
