"""Declarative perturbation scenarios for DLS campaigns.

The paper's companion studies measured DLS *flexibility* under
fluctuating PE speeds (Sukhija et al., IPDPS-W 2013) and *resilience*
to PE failures (Sukhija et al., ISPDC 2015).  A :class:`Scenario` is
the campaign-level description of such a perturbed system: which
fraction of PEs is affected, when faults strike, how strong the
background load is.  It is

* **frozen and hashable** — scenarios are value objects, usable as
  dict keys and safe to share across process-pool workers;
* **serializable** — :meth:`Scenario.to_json` / :meth:`Scenario.from_json`
  round-trip through plain JSON, and :func:`load_scenario_file` /
  :meth:`Scenario.save` move them through files;
* **seeded** — every stochastic component (today: :class:`LoadNoise`)
  draws from the run's seeded RNG stream, so a perturbed run is exactly
  as reproducible as a clean one;
* **compilable** — :meth:`Scenario.fluctuation_model` and
  :meth:`Scenario.failstop_model` lower the description to the
  mechanism layer in :mod:`repro.directsim.faults` for a concrete
  worker count ``p``.

Scenarios enter the cache key via ``RunTask.derived_entropy()`` only
when set, so every pre-scenario cache entry remains valid and a
perturbed task can never collide with its clean twin.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Any, Optional

from ..directsim.faults import (
    CompositeFluctuation,
    CyclicFluctuation,
    FailStop,
    Fluctuation,
    LognormalFluctuation,
    StepFluctuation,
)

__all__ = [
    "FailStopSpec",
    "LoadNoise",
    "PerturbationEvent",
    "Scenario",
    "SpeedWave",
    "StepSlowdown",
    "affected_workers",
    "load_scenario_file",
]


def _check_fraction(fraction: float) -> None:
    if not 0 < fraction <= 1:
        raise ValueError(
            f"fraction must be in (0, 1], got {fraction}"
        )


def affected_workers(fraction: float, p: int) -> tuple[int, ...]:
    """The worker indices a component with ``fraction`` touches at ``p`` PEs.

    The *last* ``round(fraction * p)`` workers (at least one) are
    affected, so worker 0 — the one the paper's figures anchor on —
    survives every partial perturbation and only a ``fraction`` of 1.0
    can take out the whole machine.
    """
    count = min(p, max(1, int(fraction * p + 0.5)))
    return tuple(range(p - count, p))


@dataclass(frozen=True)
class SpeedWave:
    """Deterministic periodic speed fluctuation (triangle wave).

    Affected PEs oscillate between ``1 - amplitude`` and
    ``1 + amplitude`` times their nominal speed with the given
    ``period`` (simulated seconds).  ``phase_step`` staggers the wave
    across affected workers (in cycles per worker) so they do not all
    slow down at once.
    """

    period: float
    amplitude: float
    fraction: float = 1.0
    phase_step: float = 0.0

    def __post_init__(self) -> None:
        _check_fraction(self.fraction)
        # CyclicFluctuation re-validates period/amplitude; fail early
        # here too so a bad descriptor never reaches a worker process.
        if not (self.period > 0 and math.isfinite(self.period)):
            raise ValueError(
                f"period must be positive and finite, got {self.period}"
            )
        if not 0 <= self.amplitude < 1:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def compile(self, p: int) -> CyclicFluctuation:
        workers = affected_workers(self.fraction, p)
        phases = {
            w: k * self.phase_step for k, w in enumerate(workers)
        }
        return CyclicFluctuation(
            period=self.period, amplitude=self.amplitude, phases=phases
        )


@dataclass(frozen=True)
class StepSlowdown:
    """A set of PEs slows down permanently at ``time``.

    From ``time`` on, the affected fraction of PEs runs at ``factor``
    times nominal speed (``factor < 1`` slows them down) — the
    "perturbed system" of the IPDPS-W 2013 flexibility study.
    """

    time: float
    factor: float
    fraction: float = 0.25

    def __post_init__(self) -> None:
        _check_fraction(self.fraction)
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.factor <= 0 or not math.isfinite(self.factor):
            raise ValueError(
                f"factor must be positive and finite, got {self.factor}"
            )

    def compile(self, p: int) -> StepFluctuation:
        workers = affected_workers(self.fraction, p)
        return StepFluctuation(
            factors={w: (self.time, self.factor) for w in workers}
        )


@dataclass(frozen=True)
class LoadNoise:
    """Stationary stochastic background load (unit-mean lognormal).

    The only stochastic scenario component: each chunk's speed is
    multiplied by an independent ``LogNormal(-sigma^2/2, sigma)`` draw
    from the run's seeded RNG stream.
    """

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def compile(self, p: int) -> LognormalFluctuation:
        return LognormalFluctuation(sigma=self.sigma)


@dataclass(frozen=True)
class FailStopSpec:
    """A fraction of PEs fail-stops at ``time`` (with work loss)."""

    time: float
    fraction: float = 0.25

    def __post_init__(self) -> None:
        _check_fraction(self.fraction)
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")

    def compile(self, p: int) -> FailStop:
        workers = affected_workers(self.fraction, p)
        return FailStop(fail_times={w: self.time for w in workers})


@dataclass(frozen=True)
class PerturbationEvent:
    """A discrete perturbation instant, for journals and trace exports."""

    label: str
    time: float
    worker: int


_COMPONENT_TYPES: dict[str, type] = {
    "wave": SpeedWave,
    "step": StepSlowdown,
    "noise": LoadNoise,
    "failstop": FailStopSpec,
}


@dataclass(frozen=True)
class Scenario:
    """A named, frozen perturbation descriptor for one campaign axis.

    Any subset of the four components may be present; ``Scenario()``
    with none of them is valid but pointless — prefer ``scenario=None``
    on :class:`~repro.experiments.runner.RunTask`, which keeps the
    hot path and the cache key untouched.

    The fluctuation components compose multiplicatively in the fixed
    order wave -> step -> noise; that order is part of the scenario's
    identity (it is what the batch kernel reproduces bit for bit).
    """

    name: str = "custom"
    wave: Optional[SpeedWave] = None
    step: Optional[StepSlowdown] = None
    noise: Optional[LoadNoise] = None
    failstop: Optional[FailStopSpec] = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(
                f"scenario name must be non-empty without whitespace, "
                f"got {self.name!r}"
            )

    # -- structure -----------------------------------------------------

    @property
    def has_fluctuations(self) -> bool:
        """Whether any speed-fluctuation component is present."""
        return (
            self.wave is not None
            or self.step is not None
            or self.noise is not None
        )

    @property
    def has_faults(self) -> bool:
        """Whether fail-stop faults are present."""
        return self.failstop is not None

    @property
    def is_stochastic(self) -> bool:
        """Whether any component consumes randomness (affects caching
        versions and bit-identity claims, not correctness)."""
        return self.noise is not None and self.noise.sigma > 0

    # -- compilation to the mechanism layer ----------------------------

    def fluctuation_model(self, p: int) -> Optional[Fluctuation]:
        """Lower the fluctuation components to a single model for ``p`` PEs.

        Returns ``None`` when no fluctuation component is present, a
        bare model for exactly one, and a
        :class:`~repro.directsim.faults.CompositeFluctuation` in the
        fixed wave -> step -> noise order otherwise.
        """
        components = tuple(
            spec.compile(p)
            for spec in (self.wave, self.step, self.noise)
            if spec is not None
        )
        if not components:
            return None
        if len(components) == 1:
            return components[0]
        return CompositeFluctuation(components=components)

    def failstop_model(self, p: int) -> Optional[FailStop]:
        """Lower the fail-stop component for ``p`` PEs (or ``None``)."""
        if self.failstop is None:
            return None
        return self.failstop.compile(p)

    def events(self, p: int) -> tuple[PerturbationEvent, ...]:
        """The discrete perturbation instants at ``p`` PEs.

        Continuous components (wave, noise) have no instant; step
        slowdowns and fail-stops yield one event per affected worker.
        These are stamped into ``RunResult.extras["perturbations"]``
        and rendered as instant events in Chrome traces.
        """
        events: list[PerturbationEvent] = []
        if self.step is not None:
            for w in affected_workers(self.step.fraction, p):
                events.append(
                    PerturbationEvent("step-slowdown", self.step.time, w)
                )
        if self.failstop is not None:
            for w in affected_workers(self.failstop.fraction, p):
                events.append(
                    PerturbationEvent("fail-stop", self.failstop.time, w)
                )
        events.sort(key=lambda e: (e.time, e.worker, e.label))
        return tuple(events)

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """A plain-JSON dict; round-trips through :meth:`from_json`."""
        data: dict[str, Any] = {"name": self.name}
        for key in _COMPONENT_TYPES:
            spec = getattr(self, key)
            if spec is not None:
                data[key] = asdict(spec)
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise ValueError(
                f"scenario JSON must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - set(_COMPONENT_TYPES) - {"name"}
        if unknown:
            raise ValueError(
                f"unknown scenario keys: {sorted(unknown)}; "
                f"expected 'name' plus {sorted(_COMPONENT_TYPES)}"
            )
        kwargs: dict[str, Any] = {"name": data.get("name", "custom")}
        for key, spec_type in _COMPONENT_TYPES.items():
            if key in data:
                try:
                    kwargs[key] = spec_type(**data[key])
                except TypeError as exc:
                    raise ValueError(
                        f"bad {key!r} component: {exc}"
                    ) from None
        return cls(**kwargs)

    def save(self, path: str | os.PathLike) -> None:
        """Write the scenario to ``path`` as JSON (atomically)."""
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_json(), handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- presentation --------------------------------------------------

    def describe(self) -> str:
        """A compact one-line summary, e.g. for ``scenarios list``."""
        parts: list[str] = []
        if self.wave is not None:
            parts.append(
                f"wave(period={self.wave.period:g}, "
                f"amp={self.wave.amplitude:g}, "
                f"frac={self.wave.fraction:g})"
            )
        if self.step is not None:
            parts.append(
                f"step(t={self.step.time:g}, "
                f"factor={self.step.factor:g}, "
                f"frac={self.step.fraction:g})"
            )
        if self.noise is not None:
            parts.append(f"noise(sigma={self.noise.sigma:g})")
        if self.failstop is not None:
            parts.append(
                f"failstop(t={self.failstop.time:g}, "
                f"frac={self.failstop.fraction:g})"
            )
        return " + ".join(parts) if parts else "clean (no perturbations)"


def load_scenario_file(path: str | os.PathLike) -> Scenario:
    """Load a scenario descriptor from a JSON file."""
    with open(os.fspath(path)) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return Scenario.from_json(data)
