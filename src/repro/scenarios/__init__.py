"""First-class perturbation scenarios (``repro.scenarios``).

A :class:`Scenario` declares how a simulated machine is perturbed —
speed waves, step slowdowns, background-load noise, fail-stop faults —
as a frozen, hashable, serializable campaign axis.  Set it on
:class:`~repro.experiments.runner.RunTask` (or pass ``--scenario`` on
the CLI) and the backend registry routes it to a simulator that
supports the requested models, recording honest fallback events where
one does not.  See ``docs/scenarios.md``.
"""

from .descriptor import (
    FailStopSpec,
    LoadNoise,
    PerturbationEvent,
    Scenario,
    SpeedWave,
    StepSlowdown,
    affected_workers,
    load_scenario_file,
)
from .presets import (
    PRESETS,
    get_scenario,
    load_scenario,
    preset_notes,
    preset_table_markdown,
    scenario_names,
)

__all__ = [
    "PRESETS",
    "FailStopSpec",
    "LoadNoise",
    "PerturbationEvent",
    "Scenario",
    "SpeedWave",
    "StepSlowdown",
    "affected_workers",
    "get_scenario",
    "load_scenario",
    "load_scenario_file",
    "preset_notes",
    "preset_table_markdown",
    "scenario_names",
]
