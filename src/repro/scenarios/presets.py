"""Registered scenario presets matching the companion-study setups.

The presets regenerate the spirit of the perturbed systems in the
paper's companion studies: constant/step slowdowns of a fraction of
PEs (IPDPS-W 2013 flexibility study), stochastic background load, and
fail-stop failures with work loss (ISPDC 2015 resilience study).

``repro-dls scenarios list`` prints this registry, and
:func:`preset_table_markdown` renders it for ``docs/scenarios.md``
(kept in sync by a test, like the backend capability matrix).
"""

from __future__ import annotations

import os

from .descriptor import (
    FailStopSpec,
    LoadNoise,
    Scenario,
    SpeedWave,
    StepSlowdown,
    load_scenario_file,
)

__all__ = [
    "PRESETS",
    "get_scenario",
    "load_scenario",
    "preset_notes",
    "preset_table_markdown",
    "scenario_names",
]


def _build_presets() -> dict[str, Scenario]:
    presets = [
        Scenario(
            name="slow-quarter",
            step=StepSlowdown(time=1.0, factor=0.5, fraction=0.25),
        ),
        Scenario(
            name="wave-mild",
            wave=SpeedWave(
                period=10.0, amplitude=0.3, fraction=0.5, phase_step=0.25
            ),
        ),
        Scenario(name="noise-mild", noise=LoadNoise(sigma=0.3)),
        Scenario(name="noise-severe", noise=LoadNoise(sigma=0.7)),
        Scenario(
            name="failstop-quarter",
            failstop=FailStopSpec(time=2.0, fraction=0.25),
        ),
        Scenario(
            name="perturbed",
            step=StepSlowdown(time=1.0, factor=0.5, fraction=0.25),
            noise=LoadNoise(sigma=0.3),
            failstop=FailStopSpec(time=2.0, fraction=0.25),
        ),
        Scenario(
            name="perturbed-deterministic",
            wave=SpeedWave(
                period=10.0, amplitude=0.3, fraction=0.5, phase_step=0.25
            ),
            step=StepSlowdown(time=1.0, factor=0.5, fraction=0.25),
            failstop=FailStopSpec(time=2.0, fraction=0.25),
        ),
    ]
    return {scenario.name: scenario for scenario in presets}


#: Registered presets, by name.  Frozen Scenario values — safe to share.
PRESETS: dict[str, Scenario] = _build_presets()

_PRESET_NOTES: dict[str, str] = {
    "slow-quarter": "a quarter of the PEs halves in speed at t=1 "
    "(IPDPS-W'13 perturbed system)",
    "wave-mild": "half the PEs oscillate ±30% on a staggered "
    "10s triangle wave (deterministic)",
    "noise-mild": "unit-mean lognormal load noise, sigma=0.3 "
    "(stochastic)",
    "noise-severe": "unit-mean lognormal load noise, sigma=0.7 "
    "(stochastic)",
    "failstop-quarter": "a quarter of the PEs fail-stops at t=2 with "
    "work loss (ISPDC'15 resilience setup)",
    "perturbed": "step slowdown + load noise + fail-stop faults "
    "combined (stochastic)",
    "perturbed-deterministic": "wave + step slowdown + fail-stop "
    "faults, no randomness (bit-identity checks)",
}


def preset_notes() -> dict[str, str]:
    """One-line provenance notes per preset (a copy — mutate freely)."""
    return dict(_PRESET_NOTES)


def scenario_names() -> tuple[str, ...]:
    """Registered preset names, in registry order."""
    return tuple(PRESETS)


def get_scenario(name: str) -> Scenario:
    """Look up a preset by name, with an actionable error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario preset {name!r}; "
            f"registered presets: {', '.join(PRESETS)}"
        ) from None


def load_scenario(spec: str) -> Scenario:
    """Resolve a CLI ``--scenario`` value: a preset name or a JSON file."""
    if spec in PRESETS:
        return PRESETS[spec]
    if os.path.exists(spec):
        return load_scenario_file(spec)
    raise ValueError(
        f"--scenario {spec!r} is neither a registered preset "
        f"({', '.join(PRESETS)}) nor an existing JSON file"
    )


def preset_table_markdown() -> str:
    """A markdown table of the preset registry, for docs/scenarios.md."""
    lines = [
        "| preset | components | notes |",
        "| --- | --- | --- |",
    ]
    for name, scenario in PRESETS.items():
        note = _PRESET_NOTES.get(name, "")
        lines.append(f"| `{name}` | {scenario.describe()} | {note} |")
    return "\n".join(lines)
