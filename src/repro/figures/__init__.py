"""The one-command artifact pipeline (``repro-dls figures``).

Regenerates every figure and table of the paper — plus the extension
studies — through the result cache, with a provenance manifest per
artifact and per run, and checks the output against committed
references for drift.  See :mod:`repro.figures.registry` for what is
registered, :mod:`repro.figures.pipeline` for how artifacts are
emitted, and :mod:`repro.figures.drift` for the check.
"""

from .drift import (
    DriftFinding,
    DriftReport,
    check_against_reference,
    default_reference_dir,
)
from .manifest import (
    MANIFEST_SCHEMA,
    ArtifactManifest,
    RunManifest,
    sha256_file,
    validate_manifest,
)
from .pipeline import generate_artifacts, select_artifacts
from .plotting import plot_artifact, plot_available
from .registry import (
    ARTIFACTS,
    ArtifactData,
    ArtifactSpec,
    artifact_ids,
    get_artifact,
)

__all__ = [
    "ARTIFACTS",
    "ArtifactData",
    "ArtifactManifest",
    "ArtifactSpec",
    "DriftFinding",
    "DriftReport",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "artifact_ids",
    "check_against_reference",
    "default_reference_dir",
    "generate_artifacts",
    "get_artifact",
    "plot_artifact",
    "plot_available",
    "select_artifacts",
    "sha256_file",
    "validate_manifest",
]
