"""Optional-matplotlib rendering of registry artifacts.

The pipeline emits CSV + text renderings unconditionally; this module
adds PNG plots *when matplotlib is importable* and degrades to the text
rendering otherwise — the container this repo grew in has no matplotlib,
so the degradation path is the one under test.  :func:`plot_available`
answers which path a run will take, and the per-artifact manifest
records the mode actually used (``plot: png|text|none``).

Colors follow a fixed categorical order (assigned by series position,
never cycled): the eight-slot palette validated for adjacent-pair
colorblind separation.  Tables are not charts and are never plotted.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .registry import ArtifactData, ArtifactSpec

__all__ = ["CATEGORICAL", "SURFACE", "plot_artifact", "plot_available"]

#: fixed-order categorical palette (light mode); slot order is the
#: CVD-safety mechanism — never reorder, never cycle
CATEGORICAL = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
SURFACE = "#fcfcfb"
_GRID = "#e1e0d9"
_INK = "#0b0b0b"
_MUTED = "#898781"
#: sequential blue ramp step for single-hue histograms
_SEQ_FILL = "#6da7ec"
_SEQ_EDGE = "#1c5cab"


def plot_available() -> bool:
    """True when matplotlib is importable (PNG rendering possible)."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _styled_axes(plt, title: str):
    fig, ax = plt.subplots(figsize=(7, 4.5), dpi=120)
    fig.patch.set_facecolor(SURFACE)
    ax.set_facecolor(SURFACE)
    ax.set_title(title, color=_INK, fontsize=11)
    ax.grid(True, color=_GRID, linewidth=0.6, zorder=0)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(_MUTED)
    ax.tick_params(colors=_MUTED, labelsize=8)
    return fig, ax


def _plot_lines(plt, spec: "ArtifactSpec", data: "ArtifactData", path):
    fig, ax = _styled_axes(plt, spec.title)
    x = list(range(len(data.keys)))
    for i, (name, values) in enumerate(data.series.items()):
        color = CATEGORICAL[i % len(CATEGORICAL)]
        ax.plot(x, values, color=color, linewidth=2, marker="o",
                markersize=5, label=name, zorder=3)
    ax.set_xticks(x)
    ax.set_xticklabels([str(k) for k in data.keys])
    ax.set_xlabel(data.key_header, color=_MUTED, fontsize=9)
    if len(data.series) >= 2:
        ax.legend(fontsize=8, frameon=False, labelcolor=_INK)
    fig.savefig(path, bbox_inches="tight", facecolor=SURFACE)
    plt.close(fig)


def _plot_hist(plt, spec: "ArtifactSpec", data: "ArtifactData", path):
    fig, ax = _styled_axes(plt, spec.title)
    per_run = data.extra.get("per_run", [])
    ax.hist(per_run, bins=24, color=_SEQ_FILL, edgecolor=_SEQ_EDGE,
            linewidth=0.8, zorder=3)
    threshold = data.extra.get("threshold")
    if threshold is not None:
        ax.axvline(threshold, color=_MUTED, linewidth=1,
                   linestyle="--", zorder=4)
    ax.set_yscale("log")
    ax.set_xlabel("average wasted time [s]", color=_MUTED, fontsize=9)
    fig.savefig(path, bbox_inches="tight", facecolor=SURFACE)
    plt.close(fig)


def _plot_bars(plt, spec: "ArtifactSpec", data: "ArtifactData", path):
    fig, ax = _styled_axes(plt, spec.title)
    names = list(data.series)
    groups = len(data.keys)
    width = 0.8 / max(1, len(names))
    for i, name in enumerate(names):
        color = CATEGORICAL[i % len(CATEGORICAL)]
        xs = [g + i * width for g in range(groups)]
        ax.bar(xs, data.series[name], width=width * 0.9, color=color,
               label=name, zorder=3)
    ax.set_xticks([g + 0.4 - width / 2 for g in range(groups)])
    ax.set_xticklabels([str(k) for k in data.keys], fontsize=8)
    ax.set_xlabel(data.key_header, color=_MUTED, fontsize=9)
    if len(names) >= 2:
        ax.legend(fontsize=8, frameon=False, labelcolor=_INK)
    fig.savefig(path, bbox_inches="tight", facecolor=SURFACE)
    plt.close(fig)


def plot_artifact(spec: "ArtifactSpec", data: "ArtifactData",
                  path: str | Path) -> str:
    """Render one artifact's plot; returns the mode actually used.

    ``"png"`` — wrote ``path``; ``"text"`` — matplotlib is absent, the
    pipeline's text rendering stands in; ``"none"`` — the artifact is a
    table and is deliberately not plotted.
    """
    if spec.kind == "table":
        return "none"
    if not plot_available():
        return "text"
    import matplotlib

    matplotlib.use("Agg")  # headless: never require a display
    import matplotlib.pyplot as plt

    if spec.kind == "hist":
        _plot_hist(plt, spec, data, path)
    elif spec.kind == "bars":
        _plot_bars(plt, spec, data, path)
    else:
        _plot_lines(plt, spec, data, path)
    return "png"
