"""The one-command artifact pipeline behind ``repro-dls figures``.

:func:`generate_artifacts` walks the registry
(:mod:`repro.figures.registry`), produces every artifact through the
active result cache, and writes per artifact:

* ``<id>.csv`` — the tidy series (``write_csv`` format, exact floats),
* ``<id>.txt`` — the human text rendering (also the plot stand-in when
  matplotlib is absent),
* ``<id>.png`` — when matplotlib is importable,
* ``<id>.manifest.json`` — the provenance manifest
  (:class:`repro.figures.manifest.ArtifactManifest`),

plus a run-level ``run.manifest.json`` aggregating cache traffic,
fallback totals, and the digests of every data file.  Each artifact is
also journalled (``kind: "artifact"``) and counted in the metrics
registry when those sinks are active.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Sequence

from ..backends import drain_fallback_events
from ..cache import active_cache
from ..obs import journal as obs_journal
from ..obs import metrics as obs_metrics
from ..obs.provenance import capture_provenance
from .manifest import ArtifactManifest, RunManifest, sha256_file
from .registry import ARTIFACTS, ArtifactSpec, get_artifact
from .plotting import plot_artifact

__all__ = ["generate_artifacts", "select_artifacts"]

#: cache counters surfaced in manifests (a delta per artifact)
_CACHE_KEYS = ("hits", "misses", "stores", "corrupt")


def select_artifacts(only: Sequence[str] | None) -> list[ArtifactSpec]:
    """Resolve a ``--only`` selection (None = the whole registry)."""
    if not only:
        return list(ARTIFACTS.values())
    return [get_artifact(artifact_id) for artifact_id in only]


def _cache_counters() -> dict[str, int] | None:
    cache = active_cache()
    if cache is None:
        return None
    stats = cache.stats
    return {key: getattr(stats, key) for key in _CACHE_KEYS}


def _cache_delta(before: dict | None, after: dict | None) -> dict:
    if before is None or after is None:
        return {}
    return {key: after[key] - before[key] for key in _CACHE_KEYS}


def _unique_fallbacks(collected, drained) -> list[dict]:
    """Producer-attached + globally-drained events, deduplicated."""
    out: list[dict] = []
    seen: set[tuple] = set()
    for event in list(collected) + list(drained):
        record = event.to_json()
        key = tuple(sorted(record.items()))
        if key not in seen:
            seen.add(key)
            out.append(record)
    return out


def generate_artifacts(
    out_dir: str | Path,
    mode: str = "quick",
    only: Sequence[str] | None = None,
    plot: bool = True,
    echo: Callable[[str], None] | None = None,
) -> RunManifest:
    """Produce every selected artifact into ``out_dir``.

    Returns the run manifest (also written as
    ``out_dir/run.manifest.json``).  ``echo`` receives one progress
    line per artifact when given.  Runs go through whatever result
    cache is active (:func:`repro.cache.active_cache`) — activate one
    first to make re-runs cache-dominated.
    """
    from ..experiments.report import write_csv

    if mode not in ("quick", "full"):
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    specs = select_artifacts(only)

    run = RunManifest(mode=mode, environment=capture_provenance())
    run_cache_before = _cache_counters()
    t_run = time.perf_counter()

    for spec in specs:
        cache_before = _cache_counters()
        drain_fallback_events()  # scope the global log to this artifact
        t0 = time.perf_counter()
        data = spec.produce(mode)
        elapsed = time.perf_counter() - t0
        fallbacks = _unique_fallbacks(data.fallbacks, drain_fallback_events())

        params = spec.params(mode)
        requested = params.get("simulator")
        backends = sorted(
            {requested, *(e["chosen"] for e in fallbacks)} - {None}
        ) if requested else []

        csv_path = out / f"{spec.id}.csv"
        write_csv(csv_path, data.series, data.keys,
                  key_header=data.key_header)
        txt_path = out / f"{spec.id}.txt"
        txt_path.write_text(data.text + "\n" if data.text else "")
        files = {csv_path.name: sha256_file(csv_path),
                 txt_path.name: sha256_file(txt_path)}

        plot_mode = "none"
        if plot:
            png_path = out / f"{spec.id}.png"
            plot_mode = plot_artifact(spec, data, png_path)
            if plot_mode == "png":
                files[png_path.name] = sha256_file(png_path)

        environment = capture_provenance()
        if data.platforms:
            environment["platform_xml_sha256"] = dict(data.platforms)
        manifest = ArtifactManifest(
            artifact=spec.id,
            title=spec.title,
            paper_artifact=spec.paper_artifact,
            mode=mode,
            params={k: list(v) if isinstance(v, tuple) else v
                    for k, v in params.items()},
            seeds={k: v for k, v in params.items() if "seed" in k},
            environment=environment,
            requested_simulator=requested,
            backends=backends,
            fallbacks=fallbacks,
            cache=_cache_delta(cache_before, _cache_counters()),
            scenario=params.get("scenario"),
            plot=plot_mode,
            files=files,
            elapsed_s=elapsed,
        )
        manifest_path = out / f"{spec.id}.manifest.json"
        manifest.save(manifest_path)

        run.artifacts.append(spec.id)
        run.manifests.append(manifest_path.name)
        run.fallbacks += len(fallbacks)
        run.files.update(files)

        journal = obs_journal.active_journal()
        if journal is not None:
            journal.write({
                "kind": "artifact",
                "artifact": spec.id,
                "mode": mode,
                "files": sorted(files),
                "fallbacks": len(fallbacks),
                "cache": manifest.cache,
                "plot": plot_mode,
                "elapsed_s": round(elapsed, 6),
            })
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                "artifacts_total", "artifacts emitted by the pipeline"
            ).incr(1)
            registry.histogram(
                "artifact_elapsed_seconds", "wall time per emitted artifact"
            ).observe(elapsed)

        if echo is not None:
            cache_note = ""
            if manifest.cache:
                cache_note = (
                    f", cache {manifest.cache['hits']}h/"
                    f"{manifest.cache['misses']}m"
                )
            fb_note = f", {len(fallbacks)} fallback(s)" if fallbacks else ""
            echo(
                f"[{spec.id}] {spec.paper_artifact}: "
                f"{len(files)} file(s) in {elapsed:.2f}s "
                f"(plot={plot_mode}{cache_note}{fb_note})"
            )

    run.cache = _cache_delta(run_cache_before, _cache_counters())
    run.elapsed_s = time.perf_counter() - t_run
    run.save(out / "run.manifest.json")
    return run
