"""Provenance manifests: the machine-checkable record of an artifact.

Boulmier et al. (arXiv:1805.07998) stress that a reproduction is only
credible when environment, seeds, and deviations are captured alongside
the results.  Every artifact the pipeline (:mod:`repro.figures.pipeline`)
emits therefore ships with an :class:`ArtifactManifest` — environment
fingerprint, seeds, the backend actually chosen, fallback events, result
cache traffic, scenario descriptors, and SHA-256 digests of every
emitted file — and every pipeline run ships a :class:`RunManifest`
aggregating them.  The drift layer (:mod:`repro.figures.drift`) diffs
manifests field by field, distinguishing environment/seed/fallback
drift from numeric drift.

Manifests are plain JSON documents with a ``schema`` version;
:func:`validate_manifest` rejects structurally broken ones with the
list of violations instead of a bare boolean.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = [
    "MANIFEST_SCHEMA",
    "ArtifactManifest",
    "RunManifest",
    "sha256_file",
    "validate_manifest",
]

#: manifest document schema version (bump on breaking shape changes)
MANIFEST_SCHEMA = 1


def sha256_file(path: str | Path) -> str:
    """Hex SHA-256 of a file's bytes (the manifest's digest format)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass
class ArtifactManifest:
    """The provenance record of one emitted artifact.

    ``files`` maps emitted file names (relative to the output
    directory) to their SHA-256 hex digests; ``cache`` carries the
    result-cache traffic delta of producing this artifact (hits /
    misses / stores / corrupt); ``fallbacks`` holds the JSON form of
    every :class:`repro.backends.FallbackEvent` recorded while
    producing it — an empty list is a *claim* that every run stayed on
    its requested backend, and the drift check treats a change here as
    provenance drift.
    """

    artifact: str
    title: str = ""
    paper_artifact: str = ""
    mode: str = "full"                      # "quick" | "full"
    params: dict = field(default_factory=dict)
    seeds: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    requested_simulator: str | None = None
    backends: list[str] = field(default_factory=list)
    fallbacks: list[dict] = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    scenario: str | None = None
    plot: str = "none"                      # "png" | "text" | "none"
    files: dict[str, str] = field(default_factory=dict)
    elapsed_s: float = 0.0
    schema: int = MANIFEST_SCHEMA

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "artifact": self.artifact,
            "title": self.title,
            "paper_artifact": self.paper_artifact,
            "mode": self.mode,
            "params": dict(self.params),
            "seeds": dict(self.seeds),
            "environment": dict(self.environment),
            "requested_simulator": self.requested_simulator,
            "backends": list(self.backends),
            "fallbacks": [dict(e) for e in self.fallbacks],
            "cache": dict(self.cache),
            "scenario": self.scenario,
            "plot": self.plot,
            "files": dict(self.files),
            "elapsed_s": round(self.elapsed_s, 6),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ArtifactManifest":
        problems = validate_manifest(data, kind="artifact")
        if problems:
            raise ValueError(
                "invalid artifact manifest: " + "; ".join(problems)
            )
        return cls(
            artifact=data["artifact"],
            title=data.get("title", ""),
            paper_artifact=data.get("paper_artifact", ""),
            mode=data.get("mode", "full"),
            params=dict(data.get("params", {})),
            seeds=dict(data.get("seeds", {})),
            environment=dict(data.get("environment", {})),
            requested_simulator=data.get("requested_simulator"),
            backends=list(data.get("backends", [])),
            fallbacks=[dict(e) for e in data.get("fallbacks", [])],
            cache=dict(data.get("cache", {})),
            scenario=data.get("scenario"),
            plot=data.get("plot", "none"),
            files=dict(data.get("files", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            schema=int(data["schema"]),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "ArtifactManifest":
        return cls.from_json(json.loads(Path(path).read_text()))


@dataclass
class RunManifest:
    """The provenance record of one whole pipeline run.

    ``files`` digests every *data* file the run emitted (CSV, text
    renderings, plots) — deliberately not the per-artifact manifests,
    which carry volatile wall-time fields; digest stability across two
    identical runs is asserted on the data files.
    """

    mode: str = "full"
    artifacts: list[str] = field(default_factory=list)
    manifests: list[str] = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    fallbacks: int = 0
    files: dict[str, str] = field(default_factory=dict)
    elapsed_s: float = 0.0
    schema: int = MANIFEST_SCHEMA

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "mode": self.mode,
            "artifacts": list(self.artifacts),
            "manifests": list(self.manifests),
            "environment": dict(self.environment),
            "cache": dict(self.cache),
            "fallbacks": self.fallbacks,
            "files": dict(self.files),
            "elapsed_s": round(self.elapsed_s, 6),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "RunManifest":
        problems = validate_manifest(data, kind="run")
        if problems:
            raise ValueError("invalid run manifest: " + "; ".join(problems))
        return cls(
            mode=data.get("mode", "full"),
            artifacts=list(data.get("artifacts", [])),
            manifests=list(data.get("manifests", [])),
            environment=dict(data.get("environment", {})),
            cache=dict(data.get("cache", {})),
            fallbacks=int(data.get("fallbacks", 0)),
            files=dict(data.get("files", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            schema=int(data["schema"]),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_json(json.loads(Path(path).read_text()))


def _digest_problems(files: object, prefix: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(files, Mapping):
        return [f"{prefix}: 'files' must be an object"]
    for name, digest in files.items():
        if not isinstance(digest, str) or len(digest) != 64 or any(
            c not in "0123456789abcdef" for c in digest
        ):
            problems.append(
                f"{prefix}: digest of {name!r} is not hex SHA-256"
            )
    return problems


def validate_manifest(data: Mapping, kind: str = "artifact") -> list[str]:
    """Structural violations of a manifest document (empty = valid).

    ``kind`` selects the document shape: ``"artifact"`` for a
    per-artifact manifest, ``"run"`` for the pipeline-level one.
    """
    if kind not in ("artifact", "run"):
        raise ValueError(f"kind must be 'artifact' or 'run', got {kind!r}")
    problems: list[str] = []
    if not isinstance(data, Mapping):
        return ["manifest is not a JSON object"]
    schema = data.get("schema")
    if not isinstance(schema, int):
        problems.append("missing integer 'schema'")
    elif schema > MANIFEST_SCHEMA:
        problems.append(
            f"schema {schema} is newer than supported {MANIFEST_SCHEMA}"
        )
    if data.get("mode") not in ("quick", "full"):
        problems.append("'mode' must be 'quick' or 'full'")
    if not isinstance(data.get("environment"), Mapping):
        problems.append("missing object 'environment'")
    problems.extend(_digest_problems(data.get("files", {}), "files"))
    if kind == "artifact":
        if not data.get("artifact") or not isinstance(
            data.get("artifact"), str
        ):
            problems.append("missing string 'artifact'")
        if not isinstance(data.get("seeds"), Mapping):
            problems.append("missing object 'seeds'")
        if not isinstance(data.get("fallbacks"), list):
            problems.append("'fallbacks' must be a list")
        if not isinstance(data.get("cache"), Mapping):
            problems.append("'cache' must be an object")
        plot = data.get("plot", "none")
        if plot not in ("png", "text", "none"):
            problems.append(f"'plot' must be png/text/none, got {plot!r}")
    else:
        if not isinstance(data.get("artifacts"), list) or not all(
            isinstance(a, str) for a in data.get("artifacts", [])
        ):
            problems.append("missing string list 'artifacts'")
        if not isinstance(data.get("fallbacks", 0), int):
            problems.append("'fallbacks' must be an integer")
    return problems
