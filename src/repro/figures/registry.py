"""The artifact registry: every figure and table as a descriptor.

Each :class:`ArtifactSpec` names one artifact of the paper (Fig 3–9,
Tables II/III) or of the extension studies (robustness, scalability,
ablations), carries a ``quick`` and a ``full`` parameter set, and knows
how to produce the artifact's tidy data (:class:`ArtifactData`) by
calling the underlying experiment.  The pipeline
(:mod:`repro.figures.pipeline`) iterates this registry; the drift layer
(:mod:`repro.figures.drift`) compares its quick output against the
committed references.

Quick parameter sets are sized so the whole registry regenerates in
seconds on the fast backends (``direct-batch`` for the BOLD
experiments, ``msg-fast`` for the platform-aware TSS ones — both
bit-identical to their slower siblings); full parameter sets match the
campaign defaults used for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

__all__ = [
    "ARTIFACTS",
    "ArtifactData",
    "ArtifactSpec",
    "artifact_ids",
    "get_artifact",
]


@dataclass
class ArtifactData:
    """One produced artifact: tidy series plus provenance raw material.

    ``series`` maps row labels (techniques) to value lists over
    ``keys`` (the sweep — PE counts, chunk sizes, ratios…); this is
    exactly what :func:`repro.experiments.report.write_csv` emits.
    ``text`` is the human rendering written next to the CSV.  ``extra``
    holds per-artifact payloads that do not fit the wide CSV (fig9's
    per-run distribution).  ``fallbacks`` are the events the producer
    collected itself (the pipeline additionally drains the global log).
    """

    series: dict[str, list[float]]
    keys: tuple
    key_header: str = "pes"
    text: str = ""
    extra: dict = field(default_factory=dict)
    fallbacks: list = field(default_factory=list)
    #: platform content identities in play, e.g. {"p=16": sha256hex}
    platforms: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ArtifactSpec:
    """One registered artifact and how to produce it in either mode."""

    id: str
    title: str
    paper_artifact: str                       # e.g. "Figure 5", "Table II"
    kind: str                                  # "table" | "lines" | "hist" | "bars"
    producer: Callable[..., ArtifactData]
    quick: Mapping = field(default_factory=dict)
    full: Mapping = field(default_factory=dict)
    #: simulator the params request (None for compute-free tables)
    simulator_param: str = "simulator"

    def params(self, mode: str) -> dict:
        if mode not in ("quick", "full"):
            raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
        return dict(self.quick if mode == "quick" else self.full)

    def produce(self, mode: str) -> ArtifactData:
        return self.producer(**self.params(mode))


def _seq(values: Sequence[float]) -> list[float]:
    return [float(v) for v in values]


# --- tables -----------------------------------------------------------------

def _produce_table2() -> ArtifactData:
    from ..core.base import PARAM_SYMBOLS
    from ..experiments.tables import (
        TABLE2_TECHNIQUES,
        format_table2,
        table2_matches_publication,
    )
    from ..core.registry import get_technique

    series = {}
    for label in TABLE2_TECHNIQUES:
        cls = get_technique(label.lower())
        series[label] = [
            1.0 if symbol in cls.requires else 0.0
            for symbol in PARAM_SYMBOLS
        ]
    matches = table2_matches_publication()
    text = format_table2() + "\nmatches publication: " + ", ".join(
        f"{k}={'yes' if v else 'NO'}" for k, v in matches.items()
    )
    return ArtifactData(
        series=series,
        keys=tuple(PARAM_SYMBOLS),
        key_header="param",
        text=text,
        extra={"matches_publication": {k: bool(v) for k, v in matches.items()}},
    )


def _produce_table3() -> ArtifactData:
    from ..experiments.bold_experiments import BOLD_TASK_COUNTS
    from ..experiments.tables import format_table3

    figure_by_n = {1024: 5.0, 8192: 6.0, 65536: 7.0, 524288: 8.0}
    return ArtifactData(
        series={"figure": [figure_by_n[n] for n in BOLD_TASK_COUNTS]},
        keys=tuple(BOLD_TASK_COUNTS),
        key_header="n",
        text=format_table3(),
    )


# --- TSS experiments (Figures 3-4) ------------------------------------------

def _tss_platform_hashes(pe_counts) -> dict[str, str]:
    from ..experiments.tss_experiments import bbn_gp1000_platform
    from ..obs.provenance import platform_xml_hash

    return {
        f"p={p}": platform_xml_hash(bbn_gp1000_platform(p))
        for p in pe_counts
    }


def _produce_tss(experiment: int, pe_counts: tuple, simulator: str,
                 seed: int) -> ArtifactData:
    from ..experiments.report import series_table
    from ..experiments.tss_experiments import run_tss_experiment

    result = run_tss_experiment(
        experiment, pe_counts=pe_counts, simulator=simulator, seed=seed
    )
    series = {k: _seq(v) for k, v in result.speedups.items()}
    text = (
        f"TSS experiment {experiment}: n={result.n:,}, "
        f"task_time={result.task_time:g}s, simulator={simulator}\n"
        + series_table(series, result.pe_counts, key_header="speedup\\PEs")
    )
    return ArtifactData(
        series=series,
        keys=result.pe_counts,
        key_header="pes",
        text=text,
        extra={
            "overheads": {k: _seq(v) for k, v in result.overheads.items()},
            "imbalances": {k: _seq(v) for k, v in result.imbalances.items()},
        },
        platforms=_tss_platform_hashes(result.pe_counts),
    )


# --- BOLD experiments (Figures 5-9) -----------------------------------------

def _produce_bold(n: int, pe_counts: tuple, runs: int, simulator: str,
                  seed: int) -> ArtifactData:
    from ..experiments.bold_experiments import run_bold_experiment
    from ..experiments.report import series_table

    result = run_bold_experiment(
        n, pe_counts=pe_counts, runs=runs, simulator=simulator, seed=seed
    )
    series = {k: _seq(v) for k, v in result.values.items()}
    text = (
        f"BOLD experiment: n={n:,}, {runs} run(s)/cell, "
        f"simulator={simulator}\n"
        + series_table(series, result.pe_counts, key_header="wasted\\PEs")
    )
    return ArtifactData(
        series=series,
        keys=result.pe_counts,
        key_header="pes",
        text=text,
        fallbacks=list(result.fallbacks),
    )


def _produce_fig9(runs: int, simulator: str, seed: int, n: int = 524288,
                  p: int = 2) -> ArtifactData:
    from ..experiments.bold_experiments import fac_outlier_study
    from ..experiments.report import ascii_histogram

    result = fac_outlier_study(
        n=n, p=p, runs=runs, simulator=simulator, seed=seed
    )
    series = {
        "FAC": [
            result.mean,
            result.mean_excluding,
            float(result.num_above),
            result.fraction_above,
        ]
    }
    text = (
        f"FAC outlier study: n={n:,}, p={p}, {runs} run(s), "
        f"threshold={result.threshold:g}s\n"
        f"mean={result.mean:.2f}s  "
        f"mean_excluding={result.mean_excluding:.2f}s  "
        f"{result.num_above}/{runs} above threshold\n"
        + ascii_histogram(result.per_run, log_counts=True)
    )
    return ArtifactData(
        series=series,
        keys=("mean", "mean_excluding", "num_above", "fraction_above"),
        key_header="stat",
        text=text,
        extra={"per_run": _seq(result.per_run),
               "threshold": result.threshold},
        fallbacks=list(result.fallbacks),
    )


# --- extension studies ------------------------------------------------------

def _produce_robustness(scenario: str, n: int, p: int, runs: int,
                        simulator: str, seed: int) -> ArtifactData:
    from ..experiments.robustness import (
        robustness_report,
        run_robustness_study,
    )
    from ..scenarios import get_scenario

    result = run_robustness_study(
        get_scenario(scenario), n=n, p=p, runs=runs, simulator=simulator,
        seed=seed,
    )
    series = {
        row.technique: [
            row.clean_makespan,
            row.perturbed_makespan,
            row.degradation_percent,
        ]
        for row in result.rows
    }
    return ArtifactData(
        series=series,
        keys=("clean_s", "perturbed_s", "degradation_pct"),
        key_header="metric",
        text=robustness_report(result),
        fallbacks=list(result.fallbacks),
    )


def _produce_scalability(mode: str, pe_counts: tuple, n_total: int,
                         runs: int, simulator: str,
                         seed: int) -> ArtifactData:
    from ..experiments.scalability import (
        efficiency_report,
        run_scaling_study,
    )

    result = run_scaling_study(
        mode=mode, pe_counts=pe_counts, n_total=n_total, runs=runs,
        simulator=simulator, seed=seed,
    )
    return ArtifactData(
        series={k: _seq(v) for k, v in result.efficiency.items()},
        keys=result.pe_counts,
        key_header="pes",
        text=efficiency_report(result),
        extra={"wasted": {k: _seq(v) for k, v in result.wasted.items()}},
    )


def _produce_css_sweep(k_values: tuple, p: int, simulator: str,
                       seed: int) -> ArtifactData:
    from ..experiments.report import series_table
    from ..experiments.tss_experiments import run_css_k_sweep

    sweep = run_css_k_sweep(
        k_values=k_values, p=p, simulator=simulator, seed=seed
    )
    series = {"CSS": _seq(sweep.values())}
    keys = tuple(sweep)
    text = (
        f"CSS(k) chunk-size ablation: p={p}, simulator={simulator}\n"
        + series_table(series, keys, key_header="speedup\\k")
    )
    return ArtifactData(
        series=series, keys=keys, key_header="k", text=text,
        platforms=_tss_platform_hashes((p,)),
    )


def _produce_remote_ratio(ratios: tuple, p: int, simulator: str,
                          seed: int) -> ArtifactData:
    from ..experiments.report import series_table
    from ..experiments.tss_experiments import run_remote_ratio_study

    sweep = run_remote_ratio_study(
        ratios=ratios, p=p, simulator=simulator, seed=seed
    )
    series = {"TSS": _seq(sweep.values())}
    keys = tuple(sweep)
    text = (
        f"remote-reference ratio ablation: p={p}, simulator={simulator}\n"
        + series_table(series, keys, key_header="speedup\\ratio")
    )
    return ArtifactData(
        series=series, keys=keys, key_header="ratio", text=text,
        platforms=_tss_platform_hashes((p,)),
    )


def _produce_tss_shapes(experiment: int, p: int, simulator: str,
                        seed: int) -> ArtifactData:
    from ..experiments.report import series_table
    from ..experiments.tss_experiments import (
        TSS_WORKLOAD_SHAPES,
        run_tss_workload_study,
    )

    study = run_tss_workload_study(
        experiment=experiment, p=p, simulator=simulator, seed=seed
    )
    shapes = tuple(s for s in TSS_WORKLOAD_SHAPES if s in study)
    techniques = list(study[shapes[0]])
    series = {
        t: [float(study[s][t]) for s in shapes] for t in techniques
    }
    text = (
        f"workload-shape ablation: experiment {experiment}, p={p}, "
        f"simulator={simulator}\n"
        + series_table(series, shapes, key_header="speedup\\shape")
    )
    return ArtifactData(
        series=series, keys=shapes, key_header="shape", text=text,
        platforms=_tss_platform_hashes((p,)),
    )


# --- the registry -----------------------------------------------------------

_SPECS = [
    ArtifactSpec(
        id="table2",
        title="Required parameters per DLS technique",
        paper_artifact="Table II",
        kind="table",
        producer=_produce_table2,
        simulator_param="",
    ),
    ArtifactSpec(
        id="table3",
        title="Overview of the BOLD reproducibility experiments",
        paper_artifact="Table III",
        kind="table",
        producer=_produce_table3,
        simulator_param="",
    ),
    ArtifactSpec(
        id="fig3",
        title="TSS experiment 1 speedups (n=100,000, 110us tasks)",
        paper_artifact="Figure 3",
        kind="lines",
        producer=_produce_tss,
        quick={"experiment": 1, "pe_counts": (2, 8, 16),
               "simulator": "msg-fast", "seed": 1993},
        full={"experiment": 1,
              "pe_counts": (2, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80),
              "simulator": "msg", "seed": 1993},
    ),
    ArtifactSpec(
        id="fig4",
        title="TSS experiment 2 speedups (n=10,000, 2ms tasks)",
        paper_artifact="Figure 4",
        kind="lines",
        producer=_produce_tss,
        quick={"experiment": 2, "pe_counts": (2, 8, 16),
               "simulator": "msg-fast", "seed": 1993},
        full={"experiment": 2,
              "pe_counts": (2, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80),
              "simulator": "msg", "seed": 1993},
    ),
    ArtifactSpec(
        id="fig5",
        title="BOLD wasted time, 1,024 tasks",
        paper_artifact="Figure 5",
        kind="lines",
        producer=_produce_bold,
        quick={"n": 1024, "pe_counts": (2, 8, 64), "runs": 5,
               "simulator": "direct-batch", "seed": 2017},
        full={"n": 1024, "pe_counts": (2, 8, 64, 256, 1024), "runs": 100,
              "simulator": "msg", "seed": 2017},
    ),
    ArtifactSpec(
        id="fig6",
        title="BOLD wasted time, 8,192 tasks",
        paper_artifact="Figure 6",
        kind="lines",
        producer=_produce_bold,
        quick={"n": 8192, "pe_counts": (2, 8, 64), "runs": 3,
               "simulator": "direct-batch", "seed": 2017},
        full={"n": 8192, "pe_counts": (2, 8, 64, 256, 1024), "runs": 30,
              "simulator": "msg", "seed": 2017},
    ),
    ArtifactSpec(
        id="fig7",
        title="BOLD wasted time, 65,536 tasks",
        paper_artifact="Figure 7",
        kind="lines",
        producer=_produce_bold,
        quick={"n": 65536, "pe_counts": (2, 8, 64), "runs": 2,
               "simulator": "direct-batch", "seed": 2017},
        full={"n": 65536, "pe_counts": (2, 8, 64, 256, 1024), "runs": 8,
              "simulator": "msg", "seed": 2017},
    ),
    ArtifactSpec(
        id="fig8",
        title="BOLD wasted time, 524,288 tasks",
        paper_artifact="Figure 8",
        kind="lines",
        producer=_produce_bold,
        quick={"n": 524288, "pe_counts": (2, 8), "runs": 1,
               "simulator": "direct-batch", "seed": 2017},
        full={"n": 524288, "pe_counts": (2, 8, 64, 256, 1024), "runs": 2,
              "simulator": "msg", "seed": 2017},
    ),
    ArtifactSpec(
        id="fig9",
        title="FAC per-run wasted-time distribution (outlier study)",
        paper_artifact="Figure 9",
        kind="hist",
        producer=_produce_fig9,
        quick={"runs": 60, "simulator": "direct-batch", "seed": 1997},
        full={"runs": 1000, "simulator": "direct", "seed": 1997},
    ),
    ArtifactSpec(
        id="robustness",
        title="Makespan degradation under a perturbation scenario",
        paper_artifact="extension (IPDPS-W'13 / ISPDC'15 spirit)",
        kind="bars",
        producer=_produce_robustness,
        quick={"scenario": "perturbed-deterministic", "n": 1024, "p": 8,
               "runs": 2, "simulator": "direct", "seed": 2013},
        full={"scenario": "perturbed-deterministic", "n": 8192, "p": 16,
              "runs": 10, "simulator": "direct", "seed": 2013},
    ),
    ArtifactSpec(
        id="scalability",
        title="Strong-scaling efficiency across PE counts",
        paper_artifact="extension (IPDPS-W'12 scalability study)",
        kind="lines",
        producer=_produce_scalability,
        quick={"mode": "strong", "pe_counts": (2, 8, 32),
               "n_total": 4096, "runs": 2, "simulator": "direct",
               "seed": 2012},
        full={"mode": "strong", "pe_counts": (2, 4, 8, 16, 32, 64, 128),
              "n_total": 16384, "runs": 5, "simulator": "direct",
              "seed": 2012},
    ),
    ArtifactSpec(
        id="css-sweep",
        title="CSS(k) speedup versus chunk size",
        paper_artifact="ablation (Tzen & Ni chunk-size tuning)",
        kind="lines",
        producer=_produce_css_sweep,
        quick={"k_values": (1, 100, 1389, 20000), "p": 72,
               "simulator": "msg-fast", "seed": 1993},
        full={"k_values": (1, 10, 100, 500, 1389, 5000, 20000), "p": 72,
              "simulator": "msg", "seed": 1993},
    ),
    ArtifactSpec(
        id="remote-ratio",
        title="TSS speedup versus remote memory reference ratio",
        paper_artifact="ablation (TSS publication, Sec. V)",
        kind="lines",
        producer=_produce_remote_ratio,
        quick={"ratios": (0.0, 0.1, 0.3, 0.5), "p": 64,
               "simulator": "msg-fast", "seed": 1993},
        full={"ratios": (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5), "p": 64,
              "simulator": "msg", "seed": 1993},
    ),
    ArtifactSpec(
        id="tss-shapes",
        title="Technique speedups across the four loop workload shapes",
        paper_artifact="ablation (Tzen & Ni loop suite)",
        kind="bars",
        producer=_produce_tss_shapes,
        quick={"experiment": 1, "p": 16, "simulator": "msg-fast",
               "seed": 1993},
        full={"experiment": 1, "p": 64, "simulator": "msg",
              "seed": 1993},
    ),
]

#: registry id -> spec, in emission order
ARTIFACTS: dict[str, ArtifactSpec] = {spec.id: spec for spec in _SPECS}


def artifact_ids() -> tuple[str, ...]:
    """Registered artifact ids, in emission order."""
    return tuple(ARTIFACTS)


def get_artifact(artifact_id: str) -> ArtifactSpec:
    """Look up a registered artifact, with an actionable error."""
    try:
        return ARTIFACTS[artifact_id]
    except KeyError:
        raise ValueError(
            f"unknown artifact {artifact_id!r}; registered: "
            f"{', '.join(ARTIFACTS)}"
        ) from None
