"""Drift detection: current artifacts versus committed references.

``repro-dls figures --check`` regenerates the quick artifacts and runs
them through :func:`check_against_reference`, which diffs each
artifact's CSV against the committed reference
(``src/repro/experiments/data/figures/``) via
:func:`repro.experiments.persistence.regression_check`, and each
manifest field by field.  Findings are classified so the caller can
tell *what* drifted:

* ``numeric`` — a cell moved beyond the tolerance (fatal),
* ``structure`` — series/keys/files appeared or vanished (fatal),
* ``seed`` / ``scenario`` / ``params`` — the inputs changed (fatal:
  matching numbers from different inputs are not a reproduction),
* ``fallback`` — the backend degradations differ (fatal: the results
  were produced by a different code path),
* ``environment`` — python/package/machine differ (warning only: the
  reference was generated on one interpreter, CI runs another; the
  numeric check is the arbiter of whether that matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..experiments.persistence import (
    CampaignRecord,
    ExperimentSeries,
    regression_check,
)
from .manifest import ArtifactManifest
from .registry import ARTIFACTS

__all__ = [
    "DriftFinding",
    "DriftReport",
    "check_against_reference",
    "default_reference_dir",
]

#: environment keys whose changes are reported but never fatal
_ENV_WARN_KEYS = (
    "package_version", "python", "implementation", "system", "machine",
    "repro_workers",
)


def default_reference_dir() -> Path:
    """The committed reference tree the quick artifacts are checked against."""
    from .. import experiments

    return Path(experiments.__file__).parent / "data" / "figures"


@dataclass(frozen=True)
class DriftFinding:
    """One detected deviation from the reference."""

    artifact: str
    category: str        # numeric|structure|seed|scenario|params|fallback|environment
    detail: str
    fatal: bool = True

    def describe(self) -> str:
        severity = "DRIFT" if self.fatal else "note"
        return f"[{severity}:{self.category}] {self.artifact}: {self.detail}"


@dataclass
class DriftReport:
    """All findings of one check run."""

    findings: list[DriftFinding] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)

    @property
    def fatal(self) -> list[DriftFinding]:
        return [f for f in self.findings if f.fatal]

    @property
    def warnings(self) -> list[DriftFinding]:
        return [f for f in self.findings if not f.fatal]

    @property
    def ok(self) -> bool:
        return not self.fatal

    def describe(self) -> str:
        lines = [
            f"checked {len(self.checked)} artifact(s): "
            f"{len(self.fatal)} drift(s), {len(self.warnings)} note(s)"
        ]
        lines.extend(f.describe() for f in self.findings)
        return "\n".join(lines)


def _csv_record(artifact: str, path: Path) -> CampaignRecord:
    from ..experiments.report import read_csv_series

    series, keys, _ = read_csv_series(path)
    record = CampaignRecord()
    record.add(ExperimentSeries(
        experiment=artifact, keys=list(keys), series=series,
    ))
    return record


def _mask_zero_reference_cells(artifact: str, current: CampaignRecord,
                               reference: CampaignRecord,
                               report: DriftReport) -> None:
    """Compare ref==0 cells exactly, then mask them out of the relative diff.

    ``regression_check`` diffs cells relatively, which is undefined
    against a zero reference (table2's X-matrix, zero fault counters).
    Such cells must match *exactly*; after the exact comparison both
    sides are set to 1.0 so the relative diff sees them as clean.
    """
    cur = current.experiments[artifact]
    ref = reference.experiments[artifact]
    for technique in set(cur.series) & set(ref.series):
        cur_vals, ref_vals = cur.series[technique], ref.series[technique]
        for i, (c, r) in enumerate(zip(cur_vals, ref_vals)):
            if r != 0.0:
                continue
            if c != 0.0:
                report.findings.append(DriftFinding(
                    artifact, "numeric",
                    f"{technique} @ {ref.keys[i]}: {c!r} vs reference 0.0",
                ))
            cur_vals[i] = ref_vals[i] = 1.0


def _check_numeric(artifact: str, current_csv: Path, reference_csv: Path,
                   tolerance_percent: float,
                   report: DriftReport) -> None:
    current = _csv_record(artifact, current_csv)
    reference = _csv_record(artifact, reference_csv)
    cur_keys = current.experiments[artifact].keys
    ref_keys = reference.experiments[artifact].keys
    if cur_keys != ref_keys:
        report.findings.append(DriftFinding(
            artifact, "structure",
            f"sweep keys differ: {cur_keys} vs reference {ref_keys}",
        ))
        return
    _mask_zero_reference_cells(artifact, current, reference, report)
    for problem in regression_check(current, reference, tolerance_percent):
        category = (
            "structure" if "only in the" in problem else "numeric"
        )
        report.findings.append(DriftFinding(artifact, category, problem))


def _check_manifest(artifact: str, current: ArtifactManifest,
                    reference: ArtifactManifest,
                    report: DriftReport) -> None:
    if current.seeds != reference.seeds:
        report.findings.append(DriftFinding(
            artifact, "seed",
            f"seeds {current.seeds} vs reference {reference.seeds}",
        ))
    if current.scenario != reference.scenario:
        report.findings.append(DriftFinding(
            artifact, "scenario",
            f"scenario {current.scenario!r} vs reference "
            f"{reference.scenario!r}",
        ))
    if current.params != reference.params:
        changed = sorted(
            k for k in set(current.params) | set(reference.params)
            if current.params.get(k) != reference.params.get(k)
        )
        report.findings.append(DriftFinding(
            artifact, "params",
            f"parameters differ: {', '.join(changed)}",
        ))
    cur_fb = [
        {k: v for k, v in e.items() if k != "task"}
        for e in current.fallbacks
    ]
    ref_fb = [
        {k: v for k, v in e.items() if k != "task"}
        for e in reference.fallbacks
    ]
    if cur_fb != ref_fb:
        report.findings.append(DriftFinding(
            artifact, "fallback",
            f"{len(current.fallbacks)} fallback event(s) vs reference "
            f"{len(reference.fallbacks)} (or different degradations)",
        ))
    if current.requested_simulator != reference.requested_simulator:
        report.findings.append(DriftFinding(
            artifact, "params",
            f"simulator {current.requested_simulator!r} vs reference "
            f"{reference.requested_simulator!r}",
        ))
    cur_platform = current.environment.get("platform_xml_sha256")
    ref_platform = reference.environment.get("platform_xml_sha256")
    if cur_platform != ref_platform:
        report.findings.append(DriftFinding(
            artifact, "params",
            "platform XML hashes differ from the reference",
        ))
    for key in _ENV_WARN_KEYS:
        cur = current.environment.get(key)
        ref = reference.environment.get(key)
        if cur != ref:
            report.findings.append(DriftFinding(
                artifact, "environment",
                f"{key}: {cur!r} vs reference {ref!r}", fatal=False,
            ))


def check_against_reference(
    out_dir: str | Path,
    reference_dir: str | Path | None = None,
    artifacts: Sequence[str] | None = None,
    tolerance_percent: float = 1e-6,
) -> DriftReport:
    """Diff generated artifacts in ``out_dir`` against the references.

    The default tolerance is effectively exact: quick-mode runs are
    seeded and the fast backends are bit-identical to their siblings,
    so any numeric movement means the implementation changed.  Loosen
    ``tolerance_percent`` when checking stochastic full-mode output.
    """
    out = Path(out_dir)
    reference = Path(reference_dir) if reference_dir is not None \
        else default_reference_dir()
    report = DriftReport()
    for artifact in (artifacts if artifacts is not None else ARTIFACTS):
        report.checked.append(artifact)
        ref_csv = reference / f"{artifact}.csv"
        ref_manifest = reference / f"{artifact}.manifest.json"
        cur_csv = out / f"{artifact}.csv"
        cur_manifest = out / f"{artifact}.manifest.json"
        missing = [
            str(p) for p in (ref_csv, ref_manifest) if not p.exists()
        ]
        if missing:
            report.findings.append(DriftFinding(
                artifact, "structure",
                f"reference file(s) missing: {', '.join(missing)} "
                "(regenerate with scripts/update_figure_references.py)",
            ))
            continue
        missing = [
            str(p) for p in (cur_csv, cur_manifest) if not p.exists()
        ]
        if missing:
            report.findings.append(DriftFinding(
                artifact, "structure",
                f"generated file(s) missing: {', '.join(missing)}",
            ))
            continue
        _check_numeric(
            artifact, cur_csv, ref_csv, tolerance_percent, report
        )
        _check_manifest(
            artifact,
            ArtifactManifest.load(cur_manifest),
            ArtifactManifest.load(ref_manifest),
            report,
        )
    return report
