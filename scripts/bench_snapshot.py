#!/usr/bin/env python
"""Snapshot the batch-kernel benchmarks into a committed JSON file.

Times the PR's headline cells (batch kernel vs scalar direct simulator,
one core) and writes ``{bench_name: seconds}`` to BENCH_PR1.json at the
repository root, so future PRs can diff wall-clock numbers without
re-running the scalar baseline.

Usage:  PYTHONPATH=src python scripts/bench_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core.registry import get_technique
from repro.directsim import BatchDirectSimulator, DirectSimulator
from repro.experiments.bold_experiments import scheduling_params
from repro.workloads import ExponentialWorkload

BATCH_RUNS = 100
#: (bench key, technique, scalar replications to time)
CELLS = (("ss", "ss", 2), ("fac", "fac", 3))


def snapshot() -> dict[str, float]:
    out: dict[str, float] = {}
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    for key, technique, scalar_runs in CELLS:
        factory = get_technique(technique)

        scalar = DirectSimulator(params, workload)
        t0 = time.perf_counter()
        for i in range(scalar_runs):
            scalar.run(factory, seed=i)
        scalar_per_rep = (time.perf_counter() - t0) / scalar_runs

        batch = BatchDirectSimulator(params, workload)
        t0 = time.perf_counter()
        results = batch.run_batch(factory, BATCH_RUNS, 0)
        batch_time = time.perf_counter() - t0
        assert len(results) == BATCH_RUNS

        out[f"batch_{key}_n65536_p64_100reps_s"] = round(batch_time, 4)
        out[f"scalar_{key}_n65536_p64_per_rep_s"] = round(scalar_per_rep, 4)
        out[f"speedup_{key}_per_100reps"] = round(
            scalar_per_rep * BATCH_RUNS / batch_time, 1
        )
    return out


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
    )
    data = snapshot()
    data["_meta_python"] = platform.python_version()
    data["_meta_machine"] = platform.machine()
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    for name, seconds in data.items():
        print(f"  {name}: {seconds}")


if __name__ == "__main__":
    main()
