#!/usr/bin/env python
"""Snapshot the fast-path benchmarks into committed JSON files.

Times the headline cells of the two perf PRs and writes
``{bench_name: seconds}`` snapshots at the repository root, so future
PRs can diff wall-clock numbers without re-running the baselines:

* ``--pr1`` — batch kernel vs scalar direct simulator (BENCH_PR1.json)
* ``--pr2`` — MSG fast path vs event-driven master-worker simulator
  (BENCH_PR2.json)
* ``--pr6`` — cold vs warm result-cached quick campaign
  (BENCH_PR6.json)
* ``--pr7`` — adaptive stepping kernel vs scalar direct simulator
  (BENCH_PR7.json)
* ``--pr8`` — scenario-axis no-op guard: the clean (scenario=None)
  stepping cells re-timed against the committed PR-7 numbers, plus the
  perturbed-cell overhead for context (BENCH_PR8.json)
* ``--pr10`` — cold vs warm ``figures --quick`` artifact pipeline plus
  the stepping cells re-timed against the committed PR-9 numbers
  (BENCH_PR10.json)

Usage:  PYTHONPATH=src python scripts/bench_snapshot.py
            [--pr1|--pr2|--pr6|--pr7|--pr8|--pr9|--pr10] [out.json]

With no selector both snapshots are written to their default files.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core.registry import get_technique
from repro.directsim import BatchDirectSimulator, DirectSimulator
from repro.experiments.bold_experiments import scheduling_params
from repro.simgrid.fastpath import FastMasterWorkerSimulation
from repro.simgrid.masterworker import MasterWorkerSimulation
from repro.workloads import ExponentialWorkload

BATCH_RUNS = 100
#: (bench key, technique, scalar replications to time)
DIRECT_CELLS = (("ss", "ss", 2), ("fac", "fac", 3))

MSG_FAST_RUNS = 20
#: (bench key, technique, event-driven replications to time)
MSG_CELLS = (("ss", "ss", 2), ("fac2", "fac2", 3))


def snapshot_pr1() -> dict[str, float]:
    """Batch-replication kernel vs the scalar direct simulator."""
    out: dict[str, float] = {}
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    for key, technique, scalar_runs in DIRECT_CELLS:
        factory = get_technique(technique)

        scalar = DirectSimulator(params, workload)
        t0 = time.perf_counter()
        for i in range(scalar_runs):
            scalar.run(factory, seed=i)
        scalar_per_rep = (time.perf_counter() - t0) / scalar_runs

        batch = BatchDirectSimulator(params, workload)
        t0 = time.perf_counter()
        results = batch.run_batch(factory, BATCH_RUNS, 0)
        batch_time = time.perf_counter() - t0
        assert len(results) == BATCH_RUNS

        out[f"batch_{key}_n65536_p64_100reps_s"] = round(batch_time, 4)
        out[f"scalar_{key}_n65536_p64_per_rep_s"] = round(scalar_per_rep, 4)
        out[f"speedup_{key}_per_100reps"] = round(
            scalar_per_rep * BATCH_RUNS / batch_time, 1
        )
    return out


def snapshot_pr2() -> dict[str, float]:
    """MSG fast path vs the event-driven master-worker simulator.

    Results are asserted bit-identical before the timings are recorded —
    a speedup over different outputs would be meaningless.
    """
    out: dict[str, float] = {}
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    for key, technique, event_runs in MSG_CELLS:
        factory = get_technique(technique)

        event = MasterWorkerSimulation(params, workload)
        t0 = time.perf_counter()
        event_results = [
            event.run(factory, seed=i) for i in range(event_runs)
        ]
        event_per_run = (time.perf_counter() - t0) / event_runs

        fast = FastMasterWorkerSimulation(params, workload)
        t0 = time.perf_counter()
        results = fast.run_many(factory, list(range(MSG_FAST_RUNS)))
        fast_time = time.perf_counter() - t0
        assert len(results) == MSG_FAST_RUNS
        for a, b in zip(event_results, results):
            assert a.makespan == b.makespan
            assert a.extras == b.extras

        fast_per_run = fast_time / MSG_FAST_RUNS
        out[f"msg_fast_{key}_n65536_p64_per_run_s"] = round(fast_per_run, 4)
        out[f"msg_event_{key}_n65536_p64_per_run_s"] = round(event_per_run, 4)
        out[f"msg_speedup_{key}_per_run"] = round(
            event_per_run / fast_per_run, 1
        )
    return out


def _stable_report(text: str) -> str:
    """A campaign report with the run-dependent timing lines removed."""
    return "\n".join(
        line for line in text.splitlines()
        if "took" not in line and "campaign time" not in line
    )


def snapshot_pr6() -> dict:
    """Cold vs warm result-cached quick campaign (the PR-6 headline).

    Runs the quick campaign twice against a throwaway cache directory;
    the second pass must be served entirely from the cache, report the
    same science (modulo wall-clock lines), and come in at least an
    order of magnitude faster — the committed snapshot records the
    measured speedup.
    """
    import io
    import tempfile

    from repro.experiments.campaign import run_full_campaign

    quick = dict(
        campaign_runs={1024: 5, 8192: 3}, fig9_runs=50,
        include_tss=False, simulator="msg-fast",
    )
    with tempfile.TemporaryDirectory() as root:
        cold_out = io.StringIO()
        t0 = time.perf_counter()
        run_full_campaign(out=cold_out, cache=root, **quick)
        cold = time.perf_counter() - t0

        warm_out = io.StringIO()
        t0 = time.perf_counter()
        run_full_campaign(out=warm_out, cache=root, **quick)
        warm = time.perf_counter() - t0
    assert _stable_report(cold_out.getvalue()) == _stable_report(
        warm_out.getvalue()
    ), "warm campaign diverged from cold campaign"
    return {
        "_meta_workload": (
            "quick campaign (fig5 x5, fig6 x3, fig9 x50 runs, msg-fast) "
            "cold vs fully cached re-run, one process pool"
        ),
        "cold_quick_campaign_s": round(cold, 3),
        "warm_quick_campaign_s": round(warm, 3),
        "warm_speedup": round(cold / warm, 1),
    }


STEPPING_RUNS = 256
#: (bench key, technique, scalar replications to time)
STEPPING_CELLS = (("awf_c", "awf-c", 3), ("bold", "bold", 3))


def snapshot_pr7() -> dict[str, float]:
    """Adaptive stepping kernel vs the scalar direct simulator.

    The headline adaptive cells of the stepping-kernel PR: AWF-C and
    BOLD at n=65,536, p=64 on the exponential workload.  The cells are
    first resolved through the backend registry with zero fallback
    events — the point of the PR is that direct-batch serves them
    natively.
    """
    from repro.backends import drain_fallback_events, resolve_backend
    from repro.experiments.runner import RunTask

    out: dict[str, float] = {}
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    drain_fallback_events()
    for _, technique, _ in STEPPING_CELLS:
        task = RunTask(
            technique=technique, params=params, workload=workload,
            simulator="direct-batch",
        )
        chosen = resolve_backend(task)
        assert chosen.name == "direct-batch", (
            f"{technique} did not stay on direct-batch: {chosen.name}"
        )
    events = drain_fallback_events()
    assert not events, f"unexpected fallbacks: {events}"

    for key, technique, scalar_runs in STEPPING_CELLS:
        factory = get_technique(technique)

        scalar = DirectSimulator(params, workload)
        t0 = time.perf_counter()
        for i in range(scalar_runs):
            scalar.run(factory, seed=i)
        scalar_per_rep = (time.perf_counter() - t0) / scalar_runs

        batch = BatchDirectSimulator(params, workload)
        t0 = time.perf_counter()
        results = batch.run_batch(factory, STEPPING_RUNS, 0)
        batch_time = time.perf_counter() - t0
        assert len(results) == STEPPING_RUNS

        reps = STEPPING_RUNS
        out[f"stepping_{key}_n65536_p64_{reps}reps_s"] = round(batch_time, 4)
        out[f"scalar_{key}_n65536_p64_per_rep_s"] = round(scalar_per_rep, 4)
        out[f"stepping_speedup_{key}_per_{reps}reps"] = round(
            scalar_per_rep * reps / batch_time, 1
        )
    return out


def snapshot_pr8() -> dict:
    """Scenario-axis no-op guard (the PR-8 acceptance benchmark).

    The perturbation plumbing must cost nothing when ``scenario=None``:
    the kernel takes a single ``is None`` branch per round.  This
    snapshot re-times the PR-7 stepping cells on the clean path (best
    of three batches, to keep timer noise out of the committed delta)
    and records the percentage drift against the committed
    ``BENCH_PR7.json``; the drift must stay within a few percent (2%
    modulo timer noise).  The same cells under the
    ``perturbed-deterministic`` scenario are timed for context — that
    overhead is real work (fault masking + requeues), not regression.
    """
    from repro.scenarios import get_scenario

    out: dict = {
        "_meta_workload": (
            f"stepping cells (n=65536, p=64, exp workload, "
            f"{STEPPING_RUNS} reps) clean vs committed PR-7 numbers; "
            "perturbed-deterministic overhead for context"
        ),
    }
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    baseline_path = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
    baseline: dict = {}
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())

    scenario = get_scenario("perturbed-deterministic")
    for key, technique, _ in STEPPING_CELLS:
        factory = get_technique(technique)

        clean = BatchDirectSimulator(params, workload)
        clean_time = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            results = clean.run_batch(factory, STEPPING_RUNS, 0)
            clean_time = min(clean_time, time.perf_counter() - t0)
            assert len(results) == STEPPING_RUNS
        cell = f"stepping_{key}_n65536_p64_{STEPPING_RUNS}reps_s"
        out[f"clean_{cell}"] = round(clean_time, 4)
        base = baseline.get(cell)
        if base:
            out[f"clean_vs_pr7_{key}_percent"] = round(
                100.0 * (clean_time / base - 1.0), 2
            )

        perturbed = BatchDirectSimulator(
            params, workload,
            failures=scenario.failstop_model(params.p),
            fluctuation=scenario.fluctuation_model(params.p),
        )
        t0 = time.perf_counter()
        results = perturbed.run_batch(factory, STEPPING_RUNS, 0)
        perturbed_time = time.perf_counter() - t0
        assert len(results) == STEPPING_RUNS
        assert all(r.extras["lost_chunks"] > 0 for r in results)
        out[f"perturbed_{cell}"] = round(perturbed_time, 4)
        out[f"perturbed_overhead_{key}_percent"] = round(
            100.0 * (perturbed_time / clean_time - 1.0), 1
        )
    return out


def snapshot_pr9() -> dict:
    """Advisor-service throughput + hot-path guard (see bench_serve.py)."""
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_serve import snapshot_pr9 as run

    return run()


def snapshot_pr10() -> dict:
    """Cold vs warm ``figures --quick`` plus the stepping hot-path guard.

    The artifact-pipeline PR's acceptance benchmark: the whole quick
    registry generated cold against a throwaway cache, then regenerated
    warm — the warm pass must be served almost entirely from the cache
    (hit rate above 95%, wall time an order of magnitude down).  The
    PR-7 stepping cells are re-timed (best of three) against the
    committed ``BENCH_PR9.json`` clean numbers to guard the simulator
    hot path against regressions from the pipeline plumbing.
    """
    import tempfile

    from repro.cache import cache_to
    from repro.figures import generate_artifacts

    out: dict = {
        "_meta_workload": (
            "figures --quick (14 artifacts) cold vs fully cached re-run; "
            f"stepping cells (n=65536, p=64, {STEPPING_RUNS} reps) "
            "vs committed PR-9 clean numbers"
        ),
    }
    with tempfile.TemporaryDirectory() as root:
        cache_dir = str(Path(root) / "cache")
        with cache_to(cache_dir) as cache:
            t0 = time.perf_counter()
            cold_run = generate_artifacts(Path(root) / "cold", mode="quick")
            cold = time.perf_counter() - t0
            cold_hits = cache.stats.hits

            t0 = time.perf_counter()
            warm_run = generate_artifacts(Path(root) / "warm", mode="quick")
            warm = time.perf_counter() - t0
        assert cold_run.files == warm_run.files, (
            "warm figures run emitted different data files than cold"
        )
        lookups = warm_run.cache["hits"] + warm_run.cache["misses"]
        warm_hit_rate = 100.0 * warm_run.cache["hits"] / lookups
        assert warm_hit_rate > 95.0, (
            f"warm figures run not cache-dominated: {warm_hit_rate:.1f}% "
            f"hit rate ({warm_run.cache})"
        )
        assert cold_hits <= warm_run.cache["hits"], "cold run odd hit count"
    out["cold_quick_figures_s"] = round(cold, 3)
    out["warm_quick_figures_s"] = round(warm, 3)
    out["warm_speedup"] = round(cold / warm, 1)
    out["warm_cache_hit_rate_percent"] = round(warm_hit_rate, 1)

    baseline_path = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
    baseline: dict = {}
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    for key, technique, _ in STEPPING_CELLS:
        factory = get_technique(technique)
        sim = BatchDirectSimulator(params, workload)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            results = sim.run_batch(factory, STEPPING_RUNS, 0)
            best = min(best, time.perf_counter() - t0)
            assert len(results) == STEPPING_RUNS
        cell = f"clean_stepping_{key}_n65536_p64_{STEPPING_RUNS}reps_s"
        out[cell] = round(best, 4)
        base = baseline.get(cell)
        if base:
            out[f"clean_vs_pr9_{key}_percent"] = round(
                100.0 * (best / base - 1.0), 2
            )
    return out


SNAPSHOTS = {
    "--pr1": (snapshot_pr1, "BENCH_PR1.json"),
    "--pr2": (snapshot_pr2, "BENCH_PR2.json"),
    "--pr6": (snapshot_pr6, "BENCH_PR6.json"),
    "--pr7": (snapshot_pr7, "BENCH_PR7.json"),
    "--pr8": (snapshot_pr8, "BENCH_PR8.json"),
    "--pr9": (snapshot_pr9, "BENCH_PR9.json"),
    "--pr10": (snapshot_pr10, "BENCH_PR10.json"),
}


def write_snapshot(fn, target: Path) -> None:
    data: dict = fn()
    data["_meta_python"] = platform.python_version()
    data["_meta_machine"] = platform.machine()
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    for name, seconds in data.items():
        print(f"  {name}: {seconds}")


def main() -> None:
    root = Path(__file__).resolve().parent.parent
    args = sys.argv[1:]
    selected = [a for a in args if a in SNAPSHOTS]
    paths = [a for a in args if a not in SNAPSHOTS]
    if not selected:
        selected = list(SNAPSHOTS)
    if paths and len(selected) != 1:
        raise SystemExit("an explicit output path needs exactly one of "
                         "--pr1/--pr2/--pr6/--pr7/--pr8/--pr9/--pr10")
    for flag in selected:
        fn, default_name = SNAPSHOTS[flag]
        target = Path(paths[0]) if paths else root / default_name
        write_snapshot(fn, target)


if __name__ == "__main__":
    main()
