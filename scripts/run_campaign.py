#!/usr/bin/env python
"""Run the full reproduction campaign and write a plain-text report.

Thin wrapper around :func:`repro.experiments.campaign.run_full_campaign`
(see that module for the run-count defaults).  The output of this script
is the source of the numbers in EXPERIMENTS.md.

Usage:  python scripts/run_campaign.py [output-file] [--workers N]
                                       [--simulator {msg,direct,direct-batch}]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.campaign import run_full_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default=None,
                        help="write the report to this file (default: stdout)")
    parser.add_argument("--workers", type=int, default=None,
                        help="replication process-pool size (default: "
                             "REPRO_WORKERS env var or CPU count)")
    parser.add_argument("--simulator",
                        choices=("msg", "direct", "direct-batch"),
                        default="msg",
                        help="simulator backend for the BOLD experiments")
    args = parser.parse_args()

    kwargs = dict(simulator=args.simulator, workers=args.workers)
    if args.output:
        out_path = Path(args.output)
        with out_path.open("w") as fh:
            run_full_campaign(out=fh, **kwargs)
        print(f"wrote {out_path}")
    else:
        run_full_campaign(**kwargs)


if __name__ == "__main__":
    main()
