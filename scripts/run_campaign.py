#!/usr/bin/env python
"""Run the full reproduction campaign and write a plain-text report.

Thin wrapper around :func:`repro.experiments.campaign.run_full_campaign`
(see that module for the run-count defaults).  The output of this script
is the source of the numbers in EXPERIMENTS.md.

Usage:  python scripts/run_campaign.py [output-file]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.campaign import run_full_campaign

if __name__ == "__main__":
    if len(sys.argv) > 1:
        out_path = Path(sys.argv[1])
        with out_path.open("w") as fh:
            run_full_campaign(out=fh)
        print(f"wrote {out_path}")
    else:
        run_full_campaign()
