#!/usr/bin/env python
"""Regenerate the committed figure references for ``figures --check``.

Runs the quick artifact pipeline and installs each artifact's CSV and
provenance manifest under ``src/repro/experiments/data/figures/`` — the
tree ``repro-dls figures --check`` (and the CI figures-smoke job) diffs
against.  Run this after an intentional change to the simulators, the
techniques, or the registry's quick parameters, and commit the result
together with the change that moved the numbers:

    PYTHONPATH=src python scripts/update_figure_references.py

Text renderings, plots and the run manifest are deliberately not
committed: the CSV pins the numbers and the manifest pins the
provenance; everything else is regenerable output.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.figures import generate_artifacts  # noqa: E402
from repro.figures.drift import default_reference_dir  # noqa: E402


def main() -> int:
    reference = default_reference_dir()
    reference.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-figrefs-") as tmp:
        run = generate_artifacts(tmp, mode="quick", plot=False, echo=print)
        installed = 0
        for artifact in run.artifacts:
            for name in (f"{artifact}.csv", f"{artifact}.manifest.json"):
                shutil.copyfile(Path(tmp) / name, reference / name)
                installed += 1
    print(f"\ninstalled {installed} reference file(s) -> {reference}")
    stray = sorted(
        p.name for p in reference.iterdir()
        if p.name not in {
            f"{a}.{ext}" for a in run.artifacts
            for ext in ("csv", "manifest.json")
        }
    )
    if stray:
        print(f"stray files not owned by the registry: {', '.join(stray)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
