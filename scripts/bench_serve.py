#!/usr/bin/env python
"""Load-generate the SimAS advisor service; snapshot BENCH_PR9.json.

Two measurements, both against a single in-process server on an
ephemeral port:

* **Warm-cache throughput** — a rotating set of advisor queries is
  issued once to fill the result cache, then hammered over HTTP from
  several client threads for a fixed window.  The committed number is
  sustained queries/minute with every ranking served from cache (the
  acceptance floor is 1000/min on one box).
* **Hot-path A/B guard** — the serve layer must not have slowed the
  simulate hot path it sits on: the PR-8 clean stepping cells (AWF-C
  and BOLD, n=65,536, p=64, 256 reps on direct-batch) are re-timed
  best-of-five and the percentage drift against the committed
  ``BENCH_PR8.json`` is recorded; the budget is 2% modulo timer noise.

Usage:  PYTHONPATH=src python scripts/bench_serve.py [out.json]
            [--seconds S] [--clients N]
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.cache import cache_to
from repro.core.registry import get_technique
from repro.directsim import BatchDirectSimulator
from repro.experiments.bold_experiments import scheduling_params
from repro.obs.metrics import clear_registry, set_registry
from repro.serve import Advisor, make_server, serve_forever_in_thread
from repro.workloads import ExponentialWorkload

#: distinct advisor queries the clients rotate over (all ~20 techniques
#: each — one query is a full what-if sweep, not a single simulation)
QUERY_CELLS = [
    {"n": 1024, "p": 8, "h": 0.5, "runs": 3, "seed": 11},
    {"n": 1024, "p": 16, "h": 0.5, "runs": 3, "seed": 11},
    {"n": 4096, "p": 8, "h": 0.5, "runs": 3, "seed": 11},
    {"n": 4096, "p": 16, "h": 0.25, "runs": 3, "seed": 7},
    {"n": 1024, "p": 8, "h": 0.5, "runs": 3, "seed": 11,
     "scenario": "perturbed-deterministic", "simulator": "direct"},
    {"n": 1024, "p": 8, "h": 0.5, "runs": 3, "seed": 11,
     "scenario": "slow-quarter", "simulator": "direct"},
]

STEPPING_RUNS = 256
STEPPING_CELLS = (("awf_c", "awf-c"), ("bold", "bold"))


def _post(base: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + "/advise",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def bench_serve_throughput(seconds: float, clients: int) -> dict:
    """Warm-cache advisor throughput over HTTP, multiple clients."""
    registry = set_registry()
    out: dict = {}
    with tempfile.TemporaryDirectory() as cache_dir, cache_to(cache_dir):
        advisor = Advisor()
        server = make_server("127.0.0.1", 0, advisor)
        serve_forever_in_thread(server)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            # cold pass fills the cache; sanity-check the answers
            t0 = time.perf_counter()
            for cell in QUERY_CELLS:
                answer = _post(base, cell)
                assert answer["ranking"], f"empty ranking for {cell}"
                if cell.get("scenario"):
                    assert answer["scenario"] == cell["scenario"]
            cold_s = time.perf_counter() - t0

            # one warm lap to confirm the cache actually absorbs repeats
            warm = _post(base, QUERY_CELLS[0])
            assert warm["cache"]["misses"] == 0, (
                f"repeat query missed the cache: {warm['cache']}"
            )

            totals: list[int] = []
            stop = time.monotonic() + seconds
            lock = threading.Lock()

            def client(offset: int) -> None:
                done = 0
                i = offset
                while time.monotonic() < stop:
                    _post(base, QUERY_CELLS[i % len(QUERY_CELLS)])
                    done += 1
                    i += 1
                with lock:
                    totals.append(done)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(clients)
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t0
            queries = sum(totals)
        finally:
            server.shutdown()
            server.server_close()

        latency = registry.histograms["serve_request_seconds"]
        out["serve_cold_pass_s"] = round(cold_s, 3)
        out["serve_warm_queries"] = queries
        out["serve_warm_window_s"] = round(elapsed, 3)
        out["serve_warm_queries_per_minute"] = round(
            queries * 60.0 / elapsed, 1
        )
        out["serve_warm_clients"] = clients
        out["serve_latency_p50_ms"] = round(
            latency.quantile(0.5) * 1000.0, 3
        )
        out["serve_latency_p95_ms"] = round(
            latency.quantile(0.95) * 1000.0, 3
        )
    clear_registry()
    return out


def bench_hot_path_ab() -> dict:
    """Clean stepping cells re-timed against the committed BENCH_PR8."""
    out: dict = {}
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    baseline_path = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
    baseline: dict = {}
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    for key, technique in STEPPING_CELLS:
        factory = get_technique(technique)
        simulator = BatchDirectSimulator(params, workload)
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            results = simulator.run_batch(factory, STEPPING_RUNS, 0)
            best = min(best, time.perf_counter() - t0)
            assert len(results) == STEPPING_RUNS
        cell = f"clean_stepping_{key}_n65536_p64_{STEPPING_RUNS}reps_s"
        out[cell] = round(best, 4)
        base = baseline.get(cell)
        if base:
            out[f"clean_vs_pr8_{key}_percent"] = round(
                100.0 * (best / base - 1.0), 2
            )
    return out


def snapshot_pr9(seconds: float = 10.0, clients: int = 4) -> dict:
    data: dict = {
        "_meta_workload": (
            f"{len(QUERY_CELLS)} advisor queries (full technique sweeps, "
            "2 with scenarios) over HTTP against a warm result cache, "
            f"{clients} client threads; plus the PR-8 clean stepping "
            "cells re-timed as the hot-path A/B guard"
        ),
    }
    data.update(bench_serve_throughput(seconds, clients))
    data.update(bench_hot_path_ab())
    return data


def main() -> None:
    args = sys.argv[1:]
    seconds, clients = 10.0, 4
    paths = []
    it = iter(args)
    for arg in it:
        if arg == "--seconds":
            seconds = float(next(it))
        elif arg == "--clients":
            clients = int(next(it))
        else:
            paths.append(arg)
    root = Path(__file__).resolve().parent.parent
    target = Path(paths[0]) if paths else root / "BENCH_PR9.json"
    data = snapshot_pr9(seconds=seconds, clients=clients)
    data["_meta_python"] = platform.python_version()
    data["_meta_machine"] = platform.machine()
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    for name, value in sorted(data.items()):
        print(f"  {name}: {value}")


if __name__ == "__main__":
    main()
