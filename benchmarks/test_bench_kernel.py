"""Microbenchmarks — simulation kernel and chunk-formula throughput.

Not paper artifacts, but the performance substrate everything above
rests on: events/second of the DES kernel, chunk computations/second of
each technique, and wall time per simulated run for both simulators.
"""

from __future__ import annotations

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create, make_factory
from repro.directsim import DirectSimulator
from repro.simgrid import MasterWorkerSimulation
from repro.simgrid.engine import Engine, Timeout
from repro.workloads import ExponentialWorkload


def test_bench_engine_event_throughput(benchmark):
    """Raw callback scheduling/dispatch rate."""

    def run_events():
        engine = Engine()
        count = 20_000
        for i in range(count):
            engine.schedule(float(i), lambda: None)
        engine.run()
        return count

    events = benchmark(run_events)
    benchmark.extra_info["events"] = events


def test_bench_engine_process_switching(benchmark):
    """Generator-process context switch rate."""

    def run_processes():
        engine = Engine()

        def proc():
            for _ in range(500):
                yield Timeout(1.0)

        for _ in range(20):
            engine.spawn(proc())
        engine.run()

    benchmark(run_processes)


def test_bench_technique_chunk_throughput(benchmark):
    """Chunk-size computations per second across the eight techniques."""
    params = SchedulingParams(n=50_000, p=64, h=0.5, mu=1.0, sigma=1.0)

    def drain_all():
        total = 0
        for name in ("stat", "fsc", "gss", "tss", "fac", "fac2", "bold"):
            total += len(chunk_sizes(create(name, params)))
        return total

    chunks = benchmark(drain_all)
    benchmark.extra_info["chunks"] = chunks


def test_bench_direct_simulator_run(benchmark):
    params = SchedulingParams(n=8192, p=64, h=0.5, mu=1.0, sigma=1.0)
    sim = DirectSimulator(params, ExponentialWorkload(1.0))
    benchmark(lambda: sim.run(make_factory("fac2"), seed=1))


def test_bench_msg_simulator_run(benchmark):
    params = SchedulingParams(n=8192, p=64, h=0.5, mu=1.0, sigma=1.0)
    sim = MasterWorkerSimulation(params, ExponentialWorkload(1.0))
    benchmark(lambda: sim.run(make_factory("fac2"), seed=1))


def test_bench_ss_worst_case_direct(benchmark):
    """SS is the chunk-count worst case: one event pair per task."""
    params = SchedulingParams(n=16384, p=64, h=0.5, mu=1.0, sigma=1.0)
    sim = DirectSimulator(params, ExponentialWorkload(1.0))
    benchmark.pedantic(
        lambda: sim.run(make_factory("ss"), seed=1),
        rounds=1, iterations=1, warmup_rounds=0,
    )
