"""Shared driver for the Figure 5-8 benchmarks.

Each figure's benchmark runs the n-task BOLD experiment on the
SimGrid-MSG-like simulator, prints the wasted-time series (sub-figure b),
the discrepancy and relative-discrepancy rows against the regenerated
reference (sub-figures c and d), and asserts the figure's shape
properties.  Run counts default to the laptop-scaled values of
``DEFAULT_RUNS``; the paper used 1,000 runs on an HPC cluster.
"""

from __future__ import annotations

from repro.experiments.bold_experiments import (
    compare_to_reference,
    run_bold_experiment,
)
from repro.experiments.published import bold_reference_available
from repro.experiments.report import series_table


def run_figure(benchmark, n: int, runs: int | None, once):
    result = once(
        benchmark, run_bold_experiment, n, runs=runs, simulator="msg"
    )
    print()
    print(
        f"Figure for n={n:,}: average wasted time [s] over "
        f"{result.runs} runs (paper: 1,000 runs)"
    )
    print(series_table(result.values, result.pe_counts, key_header="AWT\\PEs"))
    benchmark.extra_info["runs"] = result.runs

    if bold_reference_available():
        rows = compare_to_reference(result)
        print("\nDiscrepancy [s] (positive = MSG simulation slower):")
        print(series_table(
            {r.technique: list(r.discrepancies) for r in rows},
            result.pe_counts,
        ))
        print("\nRelative discrepancy [%]:")
        print(series_table(
            {r.technique: list(r.relative_discrepancies) for r in rows},
            result.pe_counts,
        ))
    else:  # pragma: no cover - reference ships with the repo
        rows = []
        print("(reference data not generated; discrepancies skipped)")
    return result, rows


def assert_common_shape(result):
    """Shape properties common to Figures 5-8 (see EXPERIMENTS.md)."""
    pe = result.pe_counts
    # SS is overhead-bound: its wasted time tracks h*n/p.
    for i, p in enumerate(pe):
        expected = 0.5 * result.n / p
        if expected > 20:  # overhead dominates idle noise
            assert result.values["SS"][i] > 0.8 * expected
    # SS is the worst technique at small PE counts.
    at_p2 = {t: v[0] for t, v in result.values.items()}
    assert at_p2["SS"] == max(at_p2.values())
    # The factoring family beats STAT at p=2 under exponential imbalance.
    assert at_p2["FAC2"] < at_p2["STAT"]
    # Every value is positive.
    for values in result.values.values():
        assert all(v > 0 for v in values)
