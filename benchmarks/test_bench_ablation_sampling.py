"""Ablation — chunk-time sampling strategy (DESIGN.md §6).

Executing a chunk of k exponential tasks can be simulated by summing k
per-task draws (faithful) or by one Gamma(k) draw (statistically exact).
This ablation measures the speed difference and checks that the two
paths give statistically indistinguishable wasted times.
"""

from __future__ import annotations

import statistics

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator
from repro.workloads import ExponentialWorkload, PerTaskSampling

PARAMS = SchedulingParams(n=16384, p=16, h=0.5, mu=1.0, sigma=1.0)


def run_campaign(workload, runs=10, seed0=100):
    sim = DirectSimulator(PARAMS, workload)
    return [
        sim.run(make_factory("fac2"), seed=seed0 + i).average_wasted_time
        for i in range(runs)
    ]


def test_bench_sampling_gamma(benchmark):
    values = benchmark(run_campaign, ExponentialWorkload(1.0))
    benchmark.extra_info["mean_awt"] = statistics.mean(values)


def test_bench_sampling_per_task(benchmark):
    values = benchmark(run_campaign, PerTaskSampling(ExponentialWorkload(1.0)))
    benchmark.extra_info["mean_awt"] = statistics.mean(values)


def test_sampling_paths_statistically_equivalent():
    gamma = run_campaign(ExponentialWorkload(1.0), runs=30)
    per_task = run_campaign(
        PerTaskSampling(ExponentialWorkload(1.0)), runs=30, seed0=500
    )
    g, t = statistics.mean(gamma), statistics.mean(per_task)
    print(f"\ngamma-mean={g:.3f}  per-task-mean={t:.3f}")
    assert abs(g - t) / t < 0.25
