"""Figure 7 — BOLD experiment with 65,536 tasks (a-d sub-figures)."""

from __future__ import annotations

from bold_bench_common import assert_common_shape, run_figure
from conftest import env_runs, once


def test_bench_fig7(benchmark):
    result, rows = run_figure(benchmark, 65536, env_runs(4), once)
    assert_common_shape(result)
    # FAC2 stays flat and low across the PE sweep (Figure 7's winner
    # together with FAC/BOLD), while STAT grows with imbalance.
    assert max(result.values["FAC2"]) < 40
    assert max(result.values["STAT"]) > 40
