"""Extension bench — scalability of the DLS techniques (ref [1]).

Strong and weak scaling sweeps on the direct simulator, mirroring the
study the paper cites as the first application of the verified
implementation (Balasubramaniam et al., IPDPS-W 2012).
"""

from __future__ import annotations

from repro.experiments.scalability import efficiency_report, run_scaling_study

from conftest import once


def test_bench_strong_scaling(benchmark):
    result = once(benchmark, run_scaling_study, "strong")
    print()
    print(efficiency_report(result))
    # Under strong scaling every technique's efficiency decays with p...
    for technique, effs in result.efficiency.items():
        assert effs[0] > effs[-1], technique
    # ...and SS decays catastrophically (overhead per task is fixed).
    assert result.efficiency["ss"][-1] < 0.2
    # The factoring family stays the most efficient at scale.
    top = max(result.efficiency, key=lambda t: result.efficiency[t][-1])
    assert top in ("fac2", "bold", "tss", "gss")


def test_bench_weak_scaling(benchmark):
    result = once(benchmark, run_scaling_study, "weak")
    print()
    print(efficiency_report(result))
    # Weak scaling holds efficiency for the batched techniques...
    assert result.efficiency["fac2"][-1] > 0.8
    assert result.efficiency["gss"][-1] > 0.8
    # ...while SS still collapses: its per-task master contention does
    # not amortise no matter how the problem grows.
    assert result.efficiency["ss"][-1] < 0.3
