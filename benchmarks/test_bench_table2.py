"""Table II — required parameters per DLS technique.

Regenerates the parameter-requirements matrix from the implementation and
checks it against the published table.
"""

from __future__ import annotations

from repro.experiments.tables import (
    format_table2,
    table2_matches_publication,
)

from conftest import once


def test_bench_table2(benchmark):
    def regenerate():
        text = format_table2()
        matches = table2_matches_publication()
        return text, matches

    text, matches = once(benchmark, regenerate)
    print()
    print(text)
    assert all(matches.values()), matches
    benchmark.extra_info["matches_publication"] = all(matches.values())
