"""Figure 8 — BOLD experiment with 524,288 tasks (a-d sub-figures).

The heaviest cell of the evaluation: SS alone performs 524,288
scheduling operations per run.  The default of 2 replications keeps the
benchmark tractable on a laptop; the reference side of the comparison
was generated once with documented run counts (see
``repro.experiments.published``).
"""

from __future__ import annotations

from bold_bench_common import assert_common_shape, run_figure
from conftest import env_runs, once


def test_bench_fig8(benchmark):
    result, rows = run_figure(benchmark, 524288, env_runs(2), once)
    assert_common_shape(result)
    # The paper's anchor: SS at p=2 has average wasted time 1.3e5 s.
    ss_p2 = result.value("SS", 2)
    assert abs(ss_p2 - 131072) / 131072 < 0.01
    # SS spans the log axis up to ~1e5-1e6 while the factoring family
    # stays below ~100 s — the four-decade spread of Figure 8a/8b.
    assert max(result.values["FAC2"]) < 200
