"""MSG fast path vs the event-driven master-worker simulator.

Measures this PR's headline cell — (SS, exponential, n=65,536, p=64,
h=0.5) on the MSG backend — event-driven against the compiled fast
path, plus a FAC2 cell.  The event-driven side is measured over a few
runs and normalised per run; the asserted speedup compares per-run wall
time and the two results are checked bit-identical before timing is
trusted.  Snapshot numbers live in BENCH_PR2.json
(``scripts/bench_snapshot.py``).
"""

from __future__ import annotations

import time

from repro.core.registry import get_technique
from repro.experiments.bold_experiments import scheduling_params
from repro.simgrid.fastpath import FastMasterWorkerSimulation
from repro.simgrid.masterworker import MasterWorkerSimulation
from repro.workloads import ExponentialWorkload

from conftest import env_runs, once

FAST_RUNS = 20


def _bench_cell(benchmark, technique: str, event_runs: int):
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    factory = get_technique(technique)

    event = MasterWorkerSimulation(params, workload)
    t0 = time.perf_counter()
    event_results = [event.run(factory, seed=i) for i in range(event_runs)]
    event_per_run = (time.perf_counter() - t0) / event_runs

    fast = FastMasterWorkerSimulation(params, workload)
    results = once(
        benchmark, fast.run_many, factory,
        list(range(FAST_RUNS)),
    )
    assert len(results) == FAST_RUNS
    assert fast.last_run_fast
    # Same seeds on both sides: the timing comparison is only meaningful
    # because the outputs are the same bits.
    for a, b in zip(event_results, results):
        assert a.makespan == b.makespan
        assert a.extras == b.extras

    fast_per_run = benchmark.stats["mean"] / FAST_RUNS
    speedup = event_per_run / fast_per_run
    benchmark.extra_info["event_s_per_run"] = event_per_run
    benchmark.extra_info["fast_s_per_run"] = fast_per_run
    benchmark.extra_info["speedup_vs_event"] = speedup
    print(
        f"\n{technique.upper()} n=65,536 p=64 (MSG): event "
        f"{event_per_run:.2f}s/run, fast {fast_per_run:.3f}s/run, "
        f"speedup ~{speedup:.0f}x"
    )
    return speedup


def test_bench_msg_fast_ss(benchmark):
    """SS: the event-count worst case (one chunk per task)."""
    speedup = _bench_cell(benchmark, "ss", event_runs=env_runs(2))
    assert speedup >= 5.0


def test_bench_msg_fast_fac2(benchmark):
    """FAC2: a realistic chunked technique (few hundred chunks)."""
    speedup = _bench_cell(benchmark, "fac2", event_runs=env_runs(3))
    assert speedup >= 2.0
