"""Extension bench — TSS experiment across workload shapes.

The TSS publication also measured random, decreasing and increasing
loops (its Section VI); Figures 3/4 of the reproduced paper only carry
the constant-workload experiments, so this sweep is an extension: it
regenerates the qualitative finding that TSS/CSS stay near-ideal across
shapes while GSS-style decreasing chunks suffer on decreasing loops.
"""

from __future__ import annotations

from repro.experiments.tss_experiments import run_tss_workload_study

from conftest import once


def test_bench_tss_workload_shapes(benchmark):
    table = once(benchmark, run_tss_workload_study, 2, p=32)
    print()
    techniques = list(next(iter(table.values())))
    print(f"{'shape':>12}" + "".join(f"{t:>10}" for t in techniques))
    for shape, row in table.items():
        print(f"{shape:>12}" + "".join(f"{row[t]:>10.2f}" for t in row))

    # TSS stays near-ideal on every shape.
    for shape in table:
        assert table[shape]["TSS"] > 0.85 * 32
    # The decreasing loop punishes the single big up-front chunk of CSS
    # (k = n/p puts the longest iterations in one chunk) more than TSS.
    assert table["decreasing"]["TSS"] >= table["decreasing"]["CSS"]
