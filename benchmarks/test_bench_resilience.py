"""Extension benches — resilience and flexibility of the DLS techniques.

Not artifacts of the reproduced paper itself, but of its companion
studies that the paper builds on: flexibility under fluctuating load
(ref [2], IPDPS-W 2013) and resilience to PE failures (ref [3], ISPDC
2015).  The paper's conclusion — "the scalability, flexibility, and
resilience of the DLS techniques were investigated to a certain extent
in earlier work" — motivates keeping these scenarios runnable here.
"""

from __future__ import annotations

import statistics

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.directsim import (
    DirectSimulator,
    FailStop,
    LognormalFluctuation,
)
from repro.workloads import ExponentialWorkload

TECHNIQUES = ("stat", "gss", "tss", "fac2", "bold")
PARAMS = SchedulingParams(n=4096, p=8, h=0.05, mu=1.0, sigma=1.0)


def resilience_table(runs=5):
    """Makespan degradation when one PE dies a quarter into the run."""
    workload = ExponentialWorkload(1.0)
    base_makespan = {}
    failed_makespan = {}
    lost = {}
    for name in TECHNIQUES:
        base = DirectSimulator(PARAMS, workload)
        # One PE dies at ~25% of the fault-free makespan.
        fail_at = 0.25 * PARAMS.n * PARAMS.mu / PARAMS.p
        faulty = DirectSimulator(
            PARAMS, workload, failures=FailStop({0: fail_at})
        )
        base_makespan[name] = statistics.mean(
            base.run(make_factory(name), seed=i).makespan
            for i in range(runs)
        )
        results = [faulty.run(make_factory(name), seed=i) for i in range(runs)]
        failed_makespan[name] = statistics.mean(r.makespan for r in results)
        lost[name] = statistics.mean(
            r.extras["lost_tasks"] for r in results
        )
    return base_makespan, failed_makespan, lost


def test_bench_resilience_failstop(benchmark):
    base, failed, lost = benchmark.pedantic(
        resilience_table, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(f"{'technique':>10} {'healthy':>9} {'1 PE dies':>10} "
          f"{'slowdown':>9} {'lost tasks':>11}")
    for name in TECHNIQUES:
        slowdown = failed[name] / base[name]
        print(
            f"{name.upper():>10} {base[name]:>9.1f} {failed[name]:>10.1f} "
            f"{slowdown:>9.2f} {lost[name]:>11.1f}"
        )
    # Coarse static chunks lose the most work to a failure.
    assert lost["stat"] >= max(lost["fac2"], lost["bold"])
    # Every technique still completes all work.
    for name in TECHNIQUES:
        assert failed[name] > base[name]


def flexibility_table(runs=5):
    """Wasted time versus load-fluctuation intensity (sigma of the
    per-chunk lognormal speed noise)."""
    workload = ExponentialWorkload(1.0)
    table: dict[str, list[float]] = {name: [] for name in TECHNIQUES}
    sigmas = (0.0, 0.25, 0.5, 1.0)
    for sigma in sigmas:
        fluct = LognormalFluctuation(sigma) if sigma else None
        for name in TECHNIQUES:
            sim = DirectSimulator(PARAMS, workload, fluctuation=fluct)
            awt = statistics.mean(
                sim.run(make_factory(name), seed=i).average_wasted_time
                for i in range(runs)
            )
            table[name].append(awt)
    return sigmas, table


def test_bench_flexibility_fluctuating_load(benchmark):
    sigmas, table = benchmark.pedantic(
        flexibility_table, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    header = f"{'technique':>10}" + "".join(f"  s={s:<5}" for s in sigmas)
    print(header)
    for name, values in table.items():
        print(f"{name.upper():>10}" + "".join(f" {v:>7.2f}" for v in values))
    # Fluctuation hurts everyone...
    for name in TECHNIQUES:
        assert table[name][-1] > table[name][0]
    # ...and the coarse static chunks waste the most time at every
    # intensity (FAC2's frequent rebalancing absorbs the noise).
    for i in range(len(sigmas)):
        assert table["stat"][i] > table["fac2"][i]
