"""Table III — overview of the reproducibility experiments."""

from __future__ import annotations

from repro.experiments.tables import format_table3

from conftest import once


def test_bench_table3(benchmark):
    text = once(benchmark, format_table3)
    print()
    print(text)
    for fragment in ("1,024", "8,192", "65,536", "524,288", "Figure 8"):
        assert fragment in text
