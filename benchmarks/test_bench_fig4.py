"""Figure 4 — TSS experiment 2 (10,000 tasks, constant 2 ms).

Regenerates the speedup series of Figure 4b.  The coarser tasks make SS
near-linear in the simulation, while the 1993 measurements still
saturated — the paper's second negative result for SS / GSS(1).
"""

from __future__ import annotations

from repro.experiments.tss_experiments import (
    run_tss_experiment,
    tss_reproduction_verdicts,
)

from conftest import once


def test_bench_fig4(benchmark, print_series):
    result = once(benchmark, run_tss_experiment, 2)
    print_series(
        "Figure 4b — speedups (SimGrid-MSG-like simulation)",
        result.speedups,
        result.pe_counts,
    )
    verdicts = {v.technique: v for v in tss_reproduction_verdicts(result)}
    print("verdicts:", {
        t: ("ok" if v.reproduced else "DIVERGES") for t, v in verdicts.items()
    })

    top = result.pe_counts.index(72)
    assert result.speedups["CSS"][top] > 60
    assert result.speedups["GSS(5)"][top] > 55
    assert verdicts["CSS"].reproduced
    assert verdicts["TSS"].reproduced
    # SS reaches near-linear speedup in the simulation, far above the
    # published ~33: the divergence the paper reports.
    assert not verdicts["SS"].reproduced
    assert result.speedups["SS"][top] > 50
