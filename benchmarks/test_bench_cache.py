"""Result-cache benchmark: warm quick campaign vs cold (PR 6).

The tentpole claim of the result cache is that re-running an identical
campaign costs disk lookups, not simulation.  This benchmark runs the
quick campaign cold (simulate + store) and then warm (serve every cell
from the cache), asserts the warm report matches the cold one modulo
wall-clock lines, and requires the warm pass to be at least 20x
faster.  ``BENCH_PR6.json`` commits a snapshot of the measured numbers
(regenerate with ``scripts/bench_snapshot.py --pr6``).
"""

from __future__ import annotations

import io
import time

QUICK = dict(
    campaign_runs={1024: 5, 8192: 3}, fig9_runs=50,
    include_tss=False, simulator="msg-fast",
)
MIN_WARM_SPEEDUP = 20.0


def _stable(text: str) -> str:
    return "\n".join(
        line for line in text.splitlines()
        if "took" not in line and "campaign time" not in line
    )


def test_bench_warm_cache_campaign(benchmark, tmp_path):
    from repro.experiments.campaign import run_full_campaign

    root = tmp_path / "cache"
    cold_out = io.StringIO()
    t0 = time.perf_counter()
    run_full_campaign(out=cold_out, cache=root, **QUICK)
    cold = time.perf_counter() - t0

    warm_out = io.StringIO()
    t0 = time.perf_counter()
    benchmark.pedantic(
        run_full_campaign, kwargs=dict(out=warm_out, cache=root, **QUICK),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    warm = time.perf_counter() - t0

    assert _stable(warm_out.getvalue()) == _stable(cold_out.getvalue())
    speedup = cold / warm
    print(f"\ncold {cold:.2f}s, warm {warm:.2f}s, speedup {speedup:.0f}x")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cached campaign only {speedup:.1f}x faster than cold "
        f"(cold {cold:.2f}s, warm {warm:.2f}s); expected >= "
        f"{MIN_WARM_SPEEDUP:.0f}x"
    )
