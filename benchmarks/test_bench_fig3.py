"""Figure 3 — TSS experiment 1 (100,000 tasks, constant 110 us).

Regenerates the speedup-vs-PEs series of Figure 3b and evaluates the
reproduced / not-reproduced verdicts against the digitized published
curves of Figure 3a.  The expected outcome is the paper's own: CSS, TSS
and GSS(80) reproduce; SS and GSS(1) do not (explicit master-worker
parallelism has none of the 1993 machine's shared-index contention).
"""

from __future__ import annotations

from repro.experiments.tss_experiments import (
    run_tss_experiment,
    tss_reproduction_verdicts,
)

from conftest import once


def test_bench_fig3(benchmark, print_series):
    result = once(benchmark, run_tss_experiment, 1)
    print_series(
        "Figure 3b — speedups (SimGrid-MSG-like simulation)",
        result.speedups,
        result.pe_counts,
    )
    verdicts = {v.technique: v for v in tss_reproduction_verdicts(result)}
    print("verdicts:", {
        t: ("ok" if v.reproduced else "DIVERGES") for t, v in verdicts.items()
    })

    # Shape assertions mirroring Section IV-A's conclusions.
    top = result.pe_counts.index(72)
    assert result.speedups["CSS"][top] > 60
    assert result.speedups["TSS"][top] > 60
    assert verdicts["CSS"].reproduced
    assert verdicts["TSS"].reproduced
    assert verdicts["GSS(80)"].reproduced
    assert not verdicts["SS"].reproduced       # negative result preserved
    benchmark.extra_info["speedup_css_72"] = result.speedups["CSS"][top]
