"""Figure 6 — BOLD experiment with 8,192 tasks (a-d sub-figures)."""

from __future__ import annotations

from bold_bench_common import assert_common_shape, run_figure
from conftest import env_runs, once


def test_bench_fig6(benchmark):
    result, rows = run_figure(benchmark, 8192, env_runs(12), once)
    assert_common_shape(result)
    # SS at p=2 is ~ h*n/p = 2048 s, an order of magnitude above all
    # other techniques (the dominant line of Figure 6a/6b).
    at_p2 = {t: v[0] for t, v in result.values.items()}
    assert at_p2["SS"] > 1800
    others = max(v for t, v in at_p2.items() if t != "SS")
    assert at_p2["SS"] > 10 * others
