"""Batch-replication kernel vs the scalar direct simulator.

Measures the PR's headline cell — (SS, exponential, n=65,536, p=64,
h=0.5) — plus a FAC cell, batch against scalar, on one core.  The
scalar side is measured over a few replications and normalised per
replication (one scalar SS replication at this size takes ~2 s, so a
full 100-rep scalar campaign would dominate the suite); the asserted
speedup compares per-100-replication wall time.  Snapshot numbers live
in BENCH_PR1.json (``scripts/bench_snapshot.py``).
"""

from __future__ import annotations

import time

from repro.core.registry import get_technique
from repro.directsim import BatchDirectSimulator, DirectSimulator
from repro.experiments.bold_experiments import scheduling_params
from repro.workloads import ExponentialWorkload

from conftest import env_runs, once

BATCH_RUNS = 100


def _bench_cell(benchmark, technique: str, scalar_runs: int):
    params = scheduling_params(65536, 64)
    workload = ExponentialWorkload(1.0)
    factory = get_technique(technique)

    scalar = DirectSimulator(params, workload)
    t0 = time.perf_counter()
    for i in range(scalar_runs):
        scalar.run(factory, seed=i)
    scalar_per_rep = (time.perf_counter() - t0) / scalar_runs

    batch = BatchDirectSimulator(params, workload)
    results = once(
        benchmark, batch.run_batch, factory, BATCH_RUNS, 0
    )
    assert len(results) == BATCH_RUNS

    batch_time = benchmark.stats["mean"]
    scalar_equiv = scalar_per_rep * BATCH_RUNS
    speedup = scalar_equiv / batch_time
    benchmark.extra_info["scalar_s_per_rep"] = scalar_per_rep
    benchmark.extra_info["scalar_equiv_100_reps_s"] = scalar_equiv
    benchmark.extra_info["speedup_vs_scalar"] = speedup
    print(
        f"\n{technique.upper()} n=65,536 p=64: batch {BATCH_RUNS} reps "
        f"{batch_time:.2f}s, scalar {scalar_per_rep:.2f}s/rep "
        f"(~{scalar_equiv:.0f}s per {BATCH_RUNS}), speedup ~{speedup:.0f}x"
    )
    return speedup


def test_bench_batch_ss(benchmark):
    """SS: the chunk-count worst case (one chunk per task)."""
    speedup = _bench_cell(benchmark, "ss", scalar_runs=env_runs(2))
    assert speedup >= 5.0


def test_bench_batch_fac(benchmark):
    """FAC: few large batched chunks — the favourable case."""
    speedup = _bench_cell(benchmark, "fac", scalar_runs=env_runs(3))
    assert speedup >= 5.0
