"""Ablation — overhead accounting models (DESIGN.md §6).

Compares the three models of where the scheduling overhead ``h`` is
charged.  POST_HOC (the paper's accounting) and PER_WORKER agree on the
*overhead* component by construction; SERIALIZED_MASTER additionally
captures queueing at the master, so it reports strictly larger wasted
times for fine-grained techniques at high PE counts.
"""

from __future__ import annotations

import statistics

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator, OverheadModel
from repro.workloads import ExponentialWorkload

PARAMS = SchedulingParams(n=4096, p=64, h=0.5, mu=1.0, sigma=1.0)


def mean_awt(model: OverheadModel, technique="gss", runs=10) -> float:
    sim = DirectSimulator(PARAMS, ExponentialWorkload(1.0),
                          overhead_model=model)
    return statistics.mean(
        sim.run(make_factory(technique), seed=i).average_wasted_time
        for i in range(runs)
    )


def test_bench_overhead_post_hoc(benchmark):
    benchmark.extra_info["awt"] = benchmark(mean_awt, OverheadModel.POST_HOC)


def test_bench_overhead_per_worker(benchmark):
    benchmark.extra_info["awt"] = benchmark(mean_awt, OverheadModel.PER_WORKER)


def test_bench_overhead_serialized(benchmark):
    benchmark.extra_info["awt"] = benchmark(
        mean_awt, OverheadModel.SERIALIZED_MASTER
    )


def test_serialized_master_dominates_for_fine_grained():
    """Master contention punishes SS hardest (many tiny requests)."""
    post = mean_awt(OverheadModel.POST_HOC, technique="ss", runs=3)
    serialized = mean_awt(
        OverheadModel.SERIALIZED_MASTER, technique="ss", runs=3
    )
    print(f"\nSS post-hoc={post:.1f}s  serialized={serialized:.1f}s")
    assert serialized > post


def test_post_hoc_and_per_worker_close_for_coarse():
    """For STAT (one chunk per worker) the two accountings coincide."""
    post = mean_awt(OverheadModel.POST_HOC, technique="stat", runs=5)
    per = mean_awt(OverheadModel.PER_WORKER, technique="stat", runs=5)
    assert abs(post - per) / post < 0.2
