"""Shared helpers for the benchmark suite.

Every paper artifact (table/figure) has one benchmark module that
regenerates its rows/series and prints them; pytest-benchmark measures
the wall time of one full regeneration (``rounds=1`` — these are
experiment harnesses, not microbenchmarks).  Run counts follow the
laptop-scaled defaults of :mod:`repro.experiments.bold_experiments`;
override with the ``REPRO_RUNS`` environment variable.  EXPERIMENTS.md
records the settings used for the reported numbers.
"""

from __future__ import annotations

import os

import pytest


def env_runs(default: int) -> int:
    """Benchmark replication count (REPRO_RUNS wins when set)."""
    value = os.environ.get("REPRO_RUNS")
    if value:
        return max(1, int(value))
    return default


def once(benchmark, fn, *args, **kwargs):
    """Measure exactly one execution of an experiment harness."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def print_series():
    """Print a figure's series as an ASCII table (shown with -s)."""
    from repro.experiments.report import series_table

    def _print(title: str, series, keys, key_header="PEs"):
        print()
        print(title)
        print(series_table(series, keys, key_header=key_header))

    return _print
