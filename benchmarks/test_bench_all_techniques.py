"""Extension bench — the full-registry technique leaderboard.

Every registered technique (22: the verified eight, CSS/WF/TAP, the
adaptive family, the follow-on canon) measured on one exponential cell
and ranked by average wasted time.
"""

from __future__ import annotations

from repro.experiments.all_techniques import (
    all_techniques_report,
    run_all_techniques,
)

from conftest import env_runs, once


def test_bench_all_techniques(benchmark):
    rows = once(benchmark, run_all_techniques, runs=env_runs(8))
    print()
    print("n=4096, p=16, h=0.1, exp(mu=1s):")
    print(all_techniques_report(rows))

    by_name = {r.name: r for r in rows}
    order = [r.name for r in rows]
    # The factoring family occupies the top of the leaderboard...
    assert set(order[:5]) <= {"fac", "fac2", "bold", "awf", "awf-b",
                              "awf-c", "awf-d", "awf-e", "wf", "af",
                              "tap", "pls", "gss"}
    # ...and the bottom belongs to the baselines: SS's per-task
    # overhead, STAT/CSS's coarse imbalance, and the increase/random
    # shapes that front-load too little work.
    assert set(order[-4:]) <= {"ss", "stat", "css", "rnd", "viss", "fiss"}
    # Sanity: every technique executed all work at a sane speedup.
    for row in rows:
        assert 0 < row.mean_speedup <= 16 + 1e-9
    # STAT does fewest scheduling operations; SS the most.
    assert by_name["stat"].mean_chunks == min(
        r.mean_chunks for r in rows
    )
    assert by_name["ss"].mean_chunks == max(r.mean_chunks for r in rows)
