"""Figure 9 — per-run average wasted time of FAC (p=2, 524,288 tasks).

Reproduces the heavy-tail observation: a small fraction of runs has a
far-above-median wasted time (the paper saw 15/1000 above 400 s), and
excluding them collapses the mean (paper: 25.82 s).
"""

from __future__ import annotations

import statistics

from repro.experiments.bold_experiments import fac_outlier_study

from conftest import env_runs, once


def test_bench_fig9(benchmark):
    study = once(
        benchmark,
        fac_outlier_study,
        runs=env_runs(400),
        simulator="direct",
    )
    print()
    print(
        f"FAC, p={study.p}, n={study.n:,}: {study.runs} runs, "
        f"mean={study.mean:.2f} s"
    )
    print(
        f"runs above {study.threshold:.0f} s: {study.num_above} "
        f"({study.fraction_above * 100:.2f}%)  "
        f"mean excluding: {study.mean_excluding:.2f} s"
    )
    med = statistics.median(study.per_run)
    print(f"median={med:.2f} s  max={max(study.per_run):.2f} s")

    # Heavy tail: outliers exist but are rare (paper: 1.5% of runs).
    assert 0 < study.num_above < 0.1 * study.runs
    # Excluding them collapses the mean towards the paper's 25.82 s band.
    assert study.mean_excluding < study.mean
    assert 5.0 < study.mean_excluding < 120.0
    benchmark.extra_info["fraction_above"] = study.fraction_above
    benchmark.extra_info["mean_excluding"] = study.mean_excluding
