"""Figure 5 — BOLD experiment with 1,024 tasks (a-d sub-figures)."""

from __future__ import annotations

from bold_bench_common import assert_common_shape, run_figure
from conftest import env_runs, once


def test_bench_fig5(benchmark):
    result, rows = run_figure(benchmark, 1024, env_runs(40), once)
    assert_common_shape(result)
    # All techniques converge at p = n (one task per PE).
    at_pn = {t: v[-1] for t, v in result.values.items()}
    spread = max(at_pn.values()) - min(at_pn.values())
    assert spread < 0.2 * max(at_pn.values())
