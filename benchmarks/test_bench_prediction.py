"""Extension bench — pre-execution prediction accuracy.

The paper's future-work goal, measured: across a grid of (n, p, h)
cells, does `recommend_technique` pick a technique whose *simulated*
wasted time is within a small factor of the true best?
"""

from __future__ import annotations

import statistics

from repro.core.params import SchedulingParams
from repro.core.prediction import predict_all, recommend_technique
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator
from repro.workloads import ExponentialWorkload

from conftest import once

CELLS = [
    (1024, 8, 0.5),
    (4096, 16, 0.1),
    (8192, 8, 0.01),
    (4096, 64, 1.0),
    (16384, 32, 0.05),
]
TECHNIQUES = ("stat", "ss", "fsc", "gss", "tss", "fac", "fac2", "bold")


def evaluate_prediction(runs=6):
    rows = []
    for n, p, h in CELLS:
        params = SchedulingParams(n=n, p=p, h=h, mu=1.0, sigma=1.0)
        sim = DirectSimulator(params, ExponentialWorkload(1.0))
        measured = {}
        for name in TECHNIQUES:
            measured[name] = statistics.mean(
                sim.run(make_factory(name), seed=i).average_wasted_time
                for i in range(runs)
            )
        best_measured = min(measured, key=measured.get)
        picked = recommend_technique(params, TECHNIQUES)
        picked_name = picked.technique.lower()
        regret = measured[picked_name] / measured[best_measured]
        rows.append((n, p, h, picked_name, best_measured, regret))
    return rows


def test_bench_prediction_accuracy(benchmark):
    rows = once(benchmark, evaluate_prediction)
    print()
    print(f"{'n':>7} {'p':>5} {'h':>6} {'picked':>8} {'best':>8} {'regret':>7}")
    for n, p, h, picked, best, regret in rows:
        print(f"{n:>7} {p:>5} {h:>6} {picked:>8} {best:>8} {regret:>6.2f}x")

    # The recommendation is never catastrophic: within 2.5x of the true
    # best on every cell (usually much closer)...
    assert all(regret < 2.5 for *_, regret in rows)
    # ...and the geometric-mean regret is small.
    gm = statistics.geometric_mean([r for *_, r in rows])
    print(f"geometric-mean regret: {gm:.2f}x")
    assert gm < 1.6


def test_prediction_never_picks_ss_under_overhead():
    for n, p, h in CELLS:
        if h <= 0:
            continue
        params = SchedulingParams(n=n, p=p, h=h, mu=1.0, sigma=1.0)
        ranked = predict_all(params, TECHNIQUES)
        assert ranked[0].technique != "SS"
