"""Extension bench — CSS(k) chunk-size tuning sweep.

Reproduces the TSS publication's tuning claim quoted in the paper's
Section IV-A: at (P, I, L(i)) = (72, 100000, 110 us), the chunk size
k = I/P = 1389 achieves a speedup "very close to the ideal speedup, 72"
(the original measured 69.2), while both much smaller and much larger k
degrade sharply.
"""

from __future__ import annotations

from repro.experiments.tss_experiments import run_css_k_sweep

from conftest import once


def test_bench_css_k_sweep(benchmark):
    sweep = once(benchmark, run_css_k_sweep)
    print()
    print(f"{'k':>8} {'speedup':>9}")
    for k, s in sweep.items():
        marker = "  <- k = I/P (original: 69.2)" if k == 1389 else ""
        print(f"{k:>8} {s:>9.2f}{marker}")

    # The paper's anchor: k = I/P = 1389 is near-ideal on 72 PEs.
    assert sweep[1389] > 65.0
    # Tiny chunks degenerate towards SS (scheduling bound)...
    assert sweep[1] < sweep[1389]
    # ...huge chunks towards too-few-chunks imbalance.
    assert sweep[20000] < 10.0
    benchmark.extra_info["speedup_at_1389"] = sweep[1389]
