"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.simgrid.engine import Engine, SimulationError, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("b"))
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(3.0, lambda: seen.append("c"))
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        engine = Engine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        final = engine.run()
        assert times == [1.5, 4.0]
        assert final == 4.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_until_bound(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(2))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            seen.append(("outer", engine.now))
            engine.schedule(2.0, inner)

        def inner():
            seen.append(("inner", engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]


class TestProcesses:
    def test_process_runs_to_completion(self):
        engine = Engine()
        log = []

        def proc():
            log.append(engine.now)
            yield Timeout(2.0)
            log.append(engine.now)
            yield Timeout(3.0)
            log.append(engine.now)

        engine.spawn(proc(), name="p")
        engine.run()
        assert log == [0.0, 2.0, 5.0]
        assert engine.live_processes == 0

    def test_start_at_delays_first_step(self):
        engine = Engine()
        log = []

        def proc():
            log.append(engine.now)
            yield Timeout(1.0)

        engine.spawn(proc(), start_at=4.0)
        engine.run()
        assert log == [4.0]

    def test_start_in_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()

        def proc():
            yield Timeout(0.0)

        with pytest.raises(ValueError, match="past"):
            engine.spawn(proc(), start_at=1.0)

    def test_non_effect_yield_raises(self):
        engine = Engine()

        def bad():
            yield 42  # not an Effect

        engine.spawn(bad(), name="bad")
        with pytest.raises(SimulationError, match="not an Effect"):
            engine.run()

    def test_max_events_guard(self):
        engine = Engine()

        def forever():
            while True:
                yield Timeout(1.0)

        engine.spawn(forever())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)

    def test_deadlock_detection(self):
        from repro.simgrid.msg import Mailbox, Receive
        from repro.simgrid.platform import Host

        engine = Engine()
        mailbox = Mailbox("mb", Host("h"))

        def waiter():
            yield Receive(mailbox)  # nobody ever sends

        engine.spawn(waiter(), name="waiter")
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_many_processes_interleave(self):
        engine = Engine()
        done = []

        def proc(i):
            yield Timeout(float(i))
            done.append(i)

        for i in range(10):
            engine.spawn(proc(i), name=f"p{i}")
        engine.run()
        assert done == list(range(10))

    def test_timeout_duration_validated(self):
        with pytest.raises(ValueError):
            Timeout(-0.5)
