"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.simgrid.engine import Engine, SimulationError, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("b"))
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(3.0, lambda: seen.append("c"))
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        engine = Engine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        final = engine.run()
        assert times == [1.5, 4.0]
        assert final == 4.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_until_bound(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(2))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0

    def test_until_in_the_past_does_not_rewind_the_clock(self):
        # Regression: run(until=t) with t < now used to set now = t,
        # rewinding the simulated clock and corrupting any later
        # schedule() (delays are relative to now).
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(10.0, lambda: None)
        engine.run(until=5.0)
        assert engine.now == 5.0
        assert engine.run(until=2.0) == 5.0
        assert engine.now == 5.0

    def test_until_clamp_is_forward_only_across_resumes(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(engine.now))
        engine.run(until=4.0)
        engine.run(until=2.0)  # earlier bound: a no-op
        engine.run(until=6.0)  # later bound: clock moves forward
        assert engine.now == 6.0
        engine.run()
        assert fired == [10.0]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            seen.append(("outer", engine.now))
            engine.schedule(2.0, inner)

        def inner():
            seen.append(("inner", engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]


class TestProcesses:
    def test_process_runs_to_completion(self):
        engine = Engine()
        log = []

        def proc():
            log.append(engine.now)
            yield Timeout(2.0)
            log.append(engine.now)
            yield Timeout(3.0)
            log.append(engine.now)

        engine.spawn(proc(), name="p")
        engine.run()
        assert log == [0.0, 2.0, 5.0]
        assert engine.live_processes == 0

    def test_start_at_delays_first_step(self):
        engine = Engine()
        log = []

        def proc():
            log.append(engine.now)
            yield Timeout(1.0)

        engine.spawn(proc(), start_at=4.0)
        engine.run()
        assert log == [4.0]

    def test_start_in_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()

        def proc():
            yield Timeout(0.0)

        with pytest.raises(ValueError, match="past"):
            engine.spawn(proc(), start_at=1.0)

    def test_non_effect_yield_raises(self):
        engine = Engine()

        def bad():
            yield 42  # not an Effect

        engine.spawn(bad(), name="bad")
        with pytest.raises(SimulationError, match="not an Effect"):
            engine.run()

    def test_max_events_guard(self):
        engine = Engine()

        def forever():
            while True:
                yield Timeout(1.0)

        engine.spawn(forever())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)

    def test_deadlock_detection(self):
        from repro.simgrid.msg import Mailbox, Receive
        from repro.simgrid.platform import Host

        engine = Engine()
        mailbox = Mailbox("mb", Host("h"))

        def waiter():
            yield Receive(mailbox)  # nobody ever sends

        engine.spawn(waiter(), name="waiter")
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_many_processes_interleave(self):
        engine = Engine()
        done = []

        def proc(i):
            yield Timeout(float(i))
            done.append(i)

        for i in range(10):
            engine.spawn(proc(i), name=f"p{i}")
        engine.run()
        assert done == list(range(10))

    def test_timeout_duration_validated(self):
        with pytest.raises(ValueError):
            Timeout(-0.5)

    def test_spawn_in_past_does_not_register_process(self):
        """A rejected spawn must leave the engine untouched (no phantom
        live process, no scheduled first step)."""
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()

        def proc():
            yield Timeout(0.0)

        with pytest.raises(ValueError, match="past"):
            engine.spawn(proc(), start_at=1.0)
        assert engine.live_processes == 0
        assert not engine._heap
        engine.run()  # no deadlock: nothing was half-registered

    def test_finished_processes_are_dropped(self):
        engine = Engine()

        def proc():
            yield Timeout(1.0)

        for i in range(50):
            engine.spawn(proc(), name=f"p{i}")
        assert engine.live_processes == 50
        engine.run()
        assert engine.live_processes == 0
        assert not engine._live


class TestZeroAllocationKernel:
    """The event heap must hold plain callbacks, never per-event closures."""

    def test_heap_entries_are_flat_tuples_with_named_callbacks(self):
        engine = Engine()

        def proc():
            for _ in range(3):
                yield Timeout(1.0)

        process = engine.spawn(proc(), name="p")
        for time, seq, callback, args in engine._heap:
            assert callback.__name__ != "<lambda>"
            assert callback.__func__ is type(process).resume
            assert isinstance(args, tuple)

    def test_100k_events_schedule_and_drain_without_closures(self):
        engine = Engine()
        fired = [0]

        def tick(i):
            fired[0] += 1

        for i in range(100_000):
            engine.schedule(i * 1e-3, tick, i)
        # Callback identity: every heap entry holds ``tick`` itself — the
        # kernel wrapped nothing.
        assert all(entry[2] is tick for entry in engine._heap)
        engine.run()
        assert fired[0] == 100_000

    def test_kernel_statistics_track_events_and_peaks(self):
        engine = Engine()
        fired = [0]

        def tick():
            fired[0] += 1

        for i in range(10):
            engine.schedule(float(i), tick)
        assert engine.heap_peak == 10
        engine.run()
        assert engine.events_processed == 10
        assert engine.heap_peak == 10  # peaks survive the drain

    def test_live_peak_tracks_process_high_water_mark(self):
        engine = Engine()

        def proc():
            yield Timeout(1.0)

        for _ in range(4):
            engine.spawn(proc(), name="p")
        engine.run()
        assert engine.live_processes == 0
        assert engine.live_peak == 4

    def test_events_processed_counts_across_resumed_runs(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        engine.run(until=1.5)
        assert engine.events_processed == 2
        engine.run()
        assert engine.events_processed == 5

    def test_timeout_effect_schedules_bound_resume(self):
        """A Timeout-driven process drains through bound ``resume``
        callbacks — 100k timeouts, zero per-event closures."""
        engine = Engine()
        fired = [0]

        def proc():
            for _ in range(100_000):
                yield Timeout(0.001)
                fired[0] += 1

        process = engine.spawn(proc(), name="driver")
        engine.run(until=0.5)  # mid-flight: inspect the pending event
        (entry,) = engine._heap
        assert entry[2].__self__ is process
        assert entry[2].__func__ is type(process).resume
        engine.run()
        assert fired[0] == 100_000
        assert engine.live_processes == 0
