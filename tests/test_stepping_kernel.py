"""Cross-validation of the batched adaptive stepping kernel against the
scalar direct simulator (the reference oracle).

Fidelity contract (docs/simulators.md, "The adaptive stepping kernel"):
deterministic workloads are bit-identical per replication — including
the per-chunk execution logs — and stochastic workloads are equal in
distribution (two-sample KS on makespans).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.params import SchedulingParams
from repro.core.registry import get_technique, technique_names
from repro.core.stepping import (
    SteppingState,
    ordered_sum,
    stepping_state_for,
    stepping_supported,
)
from repro.directsim import (
    BatchDirectSimulator,
    DirectSimulator,
    OverheadModel,
    batch_supported,
)
from repro.experiments.runner import RunTask, run_replicated
from repro.workloads import ConstantWorkload, ExponentialWorkload
from repro.workloads.distributions import LinearWorkload, TraceWorkload

#: every technique served by the stepping kernel (no closed-form path)
STEPPING = (
    "awf", "awf-b", "awf-c", "awf-d", "awf-e", "af", "bold",
    "wf", "pls", "rnd",
)


def params(n=613, p=4):
    return SchedulingParams(n=n, p=p, h=0.25, mu=1.0, sigma=1.0)


def speeds_for(p):
    return [1.0 + 0.13 * (i % 5) for i in range(p)]


def starts_for(p):
    return [0.25 * (i % 3) for i in range(p)]


def scalar_runs(pr, workload, name, reps, **kwargs):
    sim = DirectSimulator(pr, workload, record_chunks=True, **kwargs)
    return [
        sim.run(get_technique(name), seed=1000 + i) for i in range(reps)
    ]


def batch_runs(pr, workload, name, reps, **kwargs):
    sim = BatchDirectSimulator(pr, workload, record_chunks=True, **kwargs)
    return sim.run_batch(get_technique(name), reps, seed=0)


def assert_bit_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.makespan == w.makespan
        assert g.compute_times == w.compute_times
        assert g.chunks_per_worker == w.chunks_per_worker
        assert g.num_chunks == w.num_chunks
        assert g.total_task_time == w.total_task_time
        assert g.chunk_log == w.chunk_log


def ks_statistic(a, b):
    """Two-sample Kolmogorov-Smirnov statistic (numpy only)."""
    a, b = np.sort(np.asarray(a)), np.sort(np.asarray(b))
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / a.size
    cdf_b = np.searchsorted(b, values, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_threshold(m, n, alpha=1e-3):
    return math.sqrt(-0.5 * math.log(alpha / 2)) * math.sqrt(
        (m + n) / (m * n)
    )


class TestRegistry:
    @pytest.mark.parametrize("name", STEPPING)
    def test_stepping_supported(self, name):
        assert stepping_supported(name)
        assert batch_supported(name)

    def test_unregistered_technique_raises_key_error(self):
        proto = get_technique("gss")(params())
        with pytest.raises(KeyError, match="no batched stepping state"):
            stepping_state_for(proto, 2)

    def test_state_rejects_nonpositive_reps(self):
        proto = get_technique("awf")(params())
        with pytest.raises(ValueError):
            stepping_state_for(proto, 0)

    def test_ordered_sum_matches_sequential_accumulation(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(1.0, size=(5, 33))
        for row in values:
            acc = 0.0
            for v in row:
                acc += v
            assert ordered_sum(row) == acc
        assert np.all(
            ordered_sum(values) == [sum(row) * 0 + ordered_sum(row)
                                    for row in values]
        )


class TestBitIdentity:
    """Deterministic workloads: the kernel must reproduce the scalar
    oracle exactly, per replication, chunk log included."""

    @pytest.mark.parametrize("name", STEPPING)
    @pytest.mark.parametrize("p", (4, 16, 64))
    def test_constant_heterogeneous(self, name, p):
        pr = params(n=613, p=p)
        workload = ConstantWorkload(1.0)
        kwargs = dict(speeds=speeds_for(p), start_times=starts_for(p))
        want = scalar_runs(pr, workload, name, 3, **kwargs)
        got = batch_runs(pr, workload, name, 3, **kwargs)
        assert_bit_identical(got, want)

    @pytest.mark.parametrize("name", STEPPING)
    @pytest.mark.parametrize(
        "model", list(OverheadModel), ids=lambda m: m.value
    )
    def test_linear_workload_all_overhead_models(self, name, model):
        pr = params(n=400, p=5)
        workload = LinearWorkload(400, 2.0, 0.5)
        want = scalar_runs(pr, workload, name, 2, overhead_model=model)
        got = batch_runs(pr, workload, name, 2, overhead_model=model)
        assert_bit_identical(got, want)

    @pytest.mark.parametrize("name", ("awf-c", "bold", "wf", "rnd"))
    def test_trace_workload(self, name):
        rng = np.random.default_rng(3)
        pr = params(n=350, p=4)
        workload = TraceWorkload(rng.exponential(1.0, size=350))
        want = scalar_runs(pr, workload, name, 2)
        got = batch_runs(pr, workload, name, 2)
        assert_bit_identical(got, want)

    @pytest.mark.parametrize("name", ("awf-b", "af", "pls"))
    def test_block_streaming_is_invisible(self, name):
        """Tiny max_block_elements forces many internal blocks; on a
        deterministic workload the partitioning cannot change results."""
        pr = params(n=300, p=4)
        workload = ConstantWorkload(1.0)
        one = BatchDirectSimulator(pr, workload).run_batch(
            get_technique(name), 7, seed=0
        )
        many = BatchDirectSimulator(
            pr, workload, max_block_elements=1
        ).run_batch(get_technique(name), 7, seed=0)
        assert [r.makespan for r in many] == [r.makespan for r in one]
        assert [r.num_chunks for r in many] == [r.num_chunks for r in one]

    def test_single_task_tiny_cell(self):
        """n=1: one chunk, every technique's clip path."""
        for name in STEPPING:
            pr = params(n=1, p=3)
            workload = ConstantWorkload(2.0)
            want = scalar_runs(pr, workload, name, 2)
            got = batch_runs(pr, workload, name, 2)
            assert_bit_identical(got, want)


class TestDistributionalEquality:
    """Stochastic workloads: block sampling changes the draw order, so
    the contract is equality in distribution, not bit-identity."""

    @pytest.mark.parametrize("name", STEPPING)
    def test_exponential_makespans_ks(self, name):
        pr = params(n=1024, p=8)
        workload = ExponentialWorkload(1.0)
        runs = 120
        scalar = DirectSimulator(pr, workload)
        want = [
            scalar.run(get_technique(name), seed=2000 + i).makespan
            for i in range(runs)
        ]
        got = [
            r.makespan
            for r in BatchDirectSimulator(pr, workload).run_batch(
                get_technique(name), runs, seed=42
            )
        ]
        stat = ks_statistic(got, want)
        assert stat <= ks_threshold(runs, runs), (
            f"{name}: KS statistic {stat:.4f} exceeds threshold"
        )

    @pytest.mark.parametrize("name", ("rnd", "pls"))
    @pytest.mark.parametrize("p", (4, 16))
    def test_worker_dependent_ks_across_p(self, name, p):
        pr = params(n=1024, p=p)
        workload = ExponentialWorkload(1.0)
        runs = 100
        scalar = DirectSimulator(pr, workload)
        want = [
            scalar.run(get_technique(name), seed=3000 + i).makespan
            for i in range(runs)
        ]
        got = [
            r.makespan
            for r in BatchDirectSimulator(pr, workload).run_batch(
                get_technique(name), runs, seed=7
            )
        ]
        assert ks_statistic(got, want) <= ks_threshold(runs, runs)

    def test_rnd_chunk_sequences_match_scalar_draw_for_draw(self):
        """RND consumes one draw per scheduling operation from the
        technique seed; the kernel's shared-draw trick must reproduce
        each scalar run's size sequence exactly."""
        pr = params(n=800, p=4)
        workload = ConstantWorkload(1.0)
        want = scalar_runs(pr, workload, "rnd", 3)
        got = batch_runs(pr, workload, "rnd", 3)
        for g, w in zip(got, want):
            assert [e.record.size for e in g.chunk_log] == [
                e.record.size for e in w.chunk_log
            ]


class TestRunnerIntegration:
    def make_task(self, technique="awf-c", simulator="direct-batch",
                  **overrides):
        kwargs = dict(
            technique=technique,
            params=params(n=512, p=4),
            workload=ExponentialWorkload(1.0),
            simulator=simulator,
        )
        kwargs.update(overrides)
        return RunTask(**kwargs)

    def test_every_stepping_technique_resolves_without_fallback(self):
        from repro.backends import drain_fallback_events, resolve_backend

        drain_fallback_events()
        for name in STEPPING:
            assert resolve_backend(self.make_task(name)).name == (
                "direct-batch"
            )
        assert drain_fallback_events() == []

    def test_replicated_adaptive_campaign_deterministic(self):
        a = run_replicated(self.make_task(), 6, campaign_seed=3, processes=1)
        b = run_replicated(self.make_task(), 6, campaign_seed=3, processes=1)
        assert [r.makespan for r in a] == [r.makespan for r in b]
        assert all(r.stats.backend == "direct-batch" for r in a)

    def test_pool_matches_sequential(self):
        from repro.experiments.runner import BATCH_BLOCK_RUNS

        runs = BATCH_BLOCK_RUNS + 3  # force >1 block
        task = self.make_task("bold")
        seq = run_replicated(task, runs, campaign_seed=11, processes=1)
        pooled = run_replicated(task, runs, campaign_seed=11, processes=2)
        assert [r.makespan for r in pooled] == [r.makespan for r in seq]


class TestCacheRegression:
    """Scalar-era adaptive entries (satellite 6): bit-identical coverage
    expansion keeps its keys; changed observables miss cleanly."""

    def det_task(self, **overrides):
        kwargs = dict(
            technique="awf-c",
            params=params(n=256, p=4),
            workload=ConstantWorkload(1.0),
            simulator="direct-batch",
        )
        kwargs.update(overrides)
        return RunTask(**kwargs)

    def test_result_version_is_per_task(self):
        from repro.backends import get_backend

        backend = get_backend("direct-batch")
        det = self.det_task()
        sto = self.det_task(workload=ExponentialWorkload(1.0))
        closed = self.det_task(
            technique="fac2", workload=ExponentialWorkload(1.0)
        )
        assert backend.result_version_for(det) == backend.result_version
        assert backend.result_version_for(sto) == (
            backend.STEPPING_RESULT_VERSION
        )
        assert backend.result_version_for(closed) == backend.result_version

    def test_deterministic_scalar_era_entry_is_a_clean_hit(self, tmp_path):
        """In the scalar era this cell fell back to direct but was keyed
        under simulator='direct-batch' with results-v1.  The stepping
        kernel serves it bit-identically, and its key is unchanged — so
        the old entry is served as a hit and passes verification."""
        from repro.cache import ResultCache, set_cache, clear_cache

        task = self.det_task()
        cache = ResultCache(tmp_path, verify_fraction=1.0)
        key = cache.task_key(task)
        # A scalar-era entry: produced by the direct simulator (the old
        # fallback target), stored under the direct-batch task's key.
        sim = DirectSimulator(task.params, task.workload)
        scalar_result = sim.run(
            get_technique(task.technique), seed=task.seed_sequence()
        )
        cache.put(key, [scalar_result], backend="direct")
        set_cache(cache)
        try:
            result = task.execute()
        finally:
            clear_cache()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0
        assert result.makespan == scalar_result.makespan

    def test_stochastic_scalar_era_entry_misses_cleanly(self, tmp_path):
        """The stochastic adaptive cell's observables changed (block
        sampling), so its key carries the bumped result version: the
        v1-era key no longer matches and the old entry cannot be
        served with wrong provenance."""
        from repro.backends import get_backend
        from repro.cache import ResultCache, set_cache, clear_cache

        task = self.det_task(workload=ExponentialWorkload(1.0))
        cache = ResultCache(tmp_path)
        backend_cls = type(get_backend("direct-batch"))
        # The key a scalar-era cache would have used: results-v1.
        old_version = backend_cls.STEPPING_RESULT_VERSION
        backend_cls.STEPPING_RESULT_VERSION = backend_cls.result_version
        try:
            v1_key = cache.task_key(task)
        finally:
            backend_cls.STEPPING_RESULT_VERSION = old_version
        assert cache.task_key(task) != v1_key
        sim = DirectSimulator(task.params, task.workload)
        cache.put(
            v1_key,
            [sim.run(get_technique(task.technique),
                     seed=task.seed_sequence())],
            backend="direct",
        )
        stores_before = cache.stats.stores
        set_cache(cache)
        try:
            task.execute()
        finally:
            clear_cache()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.stores == stores_before + 1

    def test_deterministic_workloads_flagged(self):
        from repro.workloads.distributions import PerTaskSampling

        assert ConstantWorkload(1.0).deterministic
        assert LinearWorkload(8, 2.0, 1.0).deterministic
        assert TraceWorkload(np.ones(4)).deterministic
        assert not ExponentialWorkload(1.0).deterministic
        assert PerTaskSampling(ConstantWorkload(1.0)).deterministic
        assert not PerTaskSampling(ExponentialWorkload(1.0)).deterministic


class TestCoverage:
    def test_stepping_plus_closed_form_cover_registry(self):
        assert all(batch_supported(name) for name in technique_names())

    def test_stepping_states_subclass_base(self):
        for name in STEPPING:
            proto_params = params(n=64, p=4)
            state = stepping_state_for(
                get_technique(name)(proto_params), 2
            )
            assert isinstance(state, SteppingState)
