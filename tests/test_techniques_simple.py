"""Tests for STAT, SS and CSS — the baseline techniques."""

from __future__ import annotations

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


class TestStaticChunking:
    def test_equal_chunks(self):
        s = create("stat", SchedulingParams(n=100, p=4))
        assert chunk_sizes(s) == [25, 25, 25, 25]

    def test_uneven_division_ceils(self):
        # ceil(10/3) = 4, so chunks are 4, 4, 2.
        s = create("stat", SchedulingParams(n=10, p=3))
        assert chunk_sizes(s) == [4, 4, 2]

    def test_exactly_p_scheduling_operations_at_most(self):
        s = create("stat", SchedulingParams(n=1000, p=7))
        sizes = chunk_sizes(s)
        assert len(sizes) <= 7

    def test_single_pe_takes_everything(self):
        s = create("stat", SchedulingParams(n=42, p=1))
        assert chunk_sizes(s) == [42]

    def test_more_pes_than_tasks(self):
        s = create("stat", SchedulingParams(n=3, p=8))
        assert chunk_sizes(s) == [1, 1, 1]

    def test_requires_matches_table2(self):
        assert create(
            "stat", SchedulingParams(n=1, p=1)
        ).requires == frozenset({"p", "n"})


class TestSelfScheduling:
    def test_all_chunks_are_one(self):
        s = create("ss", SchedulingParams(n=25, p=4))
        assert chunk_sizes(s) == [1] * 25

    def test_n_scheduling_operations(self):
        s = create("ss", SchedulingParams(n=100, p=3))
        chunk_sizes(s)
        assert s.num_scheduling_operations == 100

    def test_requires_nothing(self):
        assert create("ss", SchedulingParams(n=1, p=1)).requires == frozenset()


class TestChunkSelfScheduling:
    def test_default_k_is_n_over_p(self):
        # Tzen & Ni use k = n/p; with n=100000, p=72 that is 1389.
        s = create("css", SchedulingParams(n=100_000, p=72))
        assert s.k == 1389

    def test_explicit_k(self):
        s = create("css", SchedulingParams(n=100, p=4), k=10)
        assert chunk_sizes(s) == [10] * 10

    def test_k_from_params(self):
        s = create("css", SchedulingParams(n=100, p=4, chunk_size=30))
        assert chunk_sizes(s) == [30, 30, 30, 10]

    def test_kwarg_overrides_params(self):
        s = create("css", SchedulingParams(n=100, p=4, chunk_size=30), k=50)
        assert s.k == 50

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            create("css", SchedulingParams(n=100, p=4), k=0)

    def test_last_chunk_clipped(self):
        s = create("css", SchedulingParams(n=25, p=4), k=10)
        assert chunk_sizes(s) == [10, 10, 5]
