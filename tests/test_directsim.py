"""Tests for the direct (Hagerup-replica) simulator."""

from __future__ import annotations

import pytest

from repro.core.params import SchedulingParams
from repro.core.registry import create, make_factory
from repro.directsim import DirectSimulator, OverheadModel, replicate
from repro.workloads import ConstantWorkload, ExponentialWorkload

from conftest import BOLD_EIGHT


def make_sim(n=100, p=4, h=0.5, workload=None, **kwargs) -> DirectSimulator:
    params = SchedulingParams(n=n, p=p, h=h, mu=1.0, sigma=1.0)
    return DirectSimulator(params, workload or ConstantWorkload(1.0), **kwargs)


class TestBasicRuns:
    def test_constant_workload_perfect_balance(self):
        # 100 tasks of 1s on 4 PEs with STAT: makespan exactly 25.
        result = make_sim().run(make_factory("stat"))
        assert result.makespan == pytest.approx(25.0)
        assert result.compute_times == pytest.approx([25.0] * 4)
        assert result.num_chunks == 4

    def test_all_tasks_executed(self):
        for name in BOLD_EIGHT:
            result = make_sim(n=137).run(make_factory(name))
            assert sum(result.chunks_per_worker) == result.num_chunks
            assert result.total_task_time == pytest.approx(137.0)

    def test_makespan_at_least_critical_path(self):
        result = make_sim(n=64, p=8).run(make_factory("ss"))
        assert result.makespan >= max(result.compute_times) - 1e-12

    def test_speedup_bounded_by_p(self):
        result = make_sim(n=1000, p=8).run(make_factory("fac2"))
        assert 0 < result.speedup <= 8.0 + 1e-9

    def test_fresh_scheduler_required(self):
        sim = make_sim()
        scheduler = create("gss", sim.params)
        sim.run(scheduler)
        with pytest.raises(ValueError, match="fresh"):
            sim.run(scheduler)

    def test_scheduler_instance_accepted(self):
        sim = make_sim()
        result = sim.run(create("gss", sim.params))
        assert result.technique == "GSS"

    def test_deterministic_given_seed(self):
        sim = make_sim(workload=ExponentialWorkload(1.0))
        a = sim.run(make_factory("fac2"), seed=11)
        b = sim.run(make_factory("fac2"), seed=11)
        assert a.makespan == b.makespan
        assert a.compute_times == b.compute_times

    def test_different_seeds_differ(self):
        sim = make_sim(workload=ExponentialWorkload(1.0))
        a = sim.run(make_factory("fac2"), seed=1)
        b = sim.run(make_factory("fac2"), seed=2)
        assert a.makespan != b.makespan


class TestOverheadModels:
    def test_post_hoc_adds_overhead_outside_makespan(self):
        base = make_sim(overhead_model=OverheadModel.POST_HOC)
        result = base.run(make_factory("ss"), seed=0)
        # idle average is 0 for constant workload and p | n;
        # wasted = h * n / p = 0.5 * 100 / 4.
        assert result.average_wasted_time == pytest.approx(12.5)
        assert result.makespan == pytest.approx(25.0)

    def test_per_worker_inflates_makespan(self):
        sim = make_sim(overhead_model=OverheadModel.PER_WORKER)
        result = sim.run(make_factory("ss"), seed=0)
        # Each worker: 25 chunks of (0.5 overhead + 1s work) = 37.5.
        assert result.makespan == pytest.approx(37.5)
        assert result.average_wasted_time == pytest.approx(12.5)

    def test_serialized_master_queues_requests(self):
        sim = make_sim(n=4, p=4, h=2.0,
                       overhead_model=OverheadModel.SERIALIZED_MASTER)
        result = sim.run(make_factory("ss"), seed=0)
        # Master serves requests at t=2,4,6,8; last worker computes 1s.
        assert result.makespan == pytest.approx(9.0)

    def test_post_hoc_equals_per_worker_accounting_for_stat(self):
        # STAT gives each worker exactly one chunk, so both accountings
        # charge h once per worker.
        post = make_sim(overhead_model=OverheadModel.POST_HOC).run(
            make_factory("stat"), seed=0
        )
        per = make_sim(overhead_model=OverheadModel.PER_WORKER).run(
            make_factory("stat"), seed=0
        )
        assert post.average_wasted_time == pytest.approx(
            per.average_wasted_time
        )


class TestHeterogeneity:
    def test_speeds_scale_compute_time(self):
        sim = make_sim(n=100, p=2, h=0.0, speeds=[1.0, 4.0])
        result = sim.run(make_factory("ss"))
        # The 4x faster worker executes ~4x the tasks.
        slow, fast = result.chunks_per_worker
        assert fast == pytest.approx(4 * slow, abs=2)

    def test_speed_validation(self):
        params = SchedulingParams(n=10, p=2)
        with pytest.raises(ValueError, match="speeds"):
            DirectSimulator(params, ConstantWorkload(1.0), speeds=[1.0])
        with pytest.raises(ValueError, match="positive"):
            DirectSimulator(params, ConstantWorkload(1.0), speeds=[1.0, 0.0])

    def test_start_times_delay_workers(self):
        sim = make_sim(n=10, p=2, h=0.0, start_times=[0.0, 100.0])
        result = sim.run(make_factory("gss"))
        # Worker 0 does everything before worker 1 even starts.
        assert result.chunks_per_worker[1] == 0
        assert result.makespan <= 10.0 + 1e-9

    def test_start_time_validation(self):
        params = SchedulingParams(n=10, p=2)
        with pytest.raises(ValueError, match="start times"):
            DirectSimulator(
                params, ConstantWorkload(1.0), start_times=[0.0]
            )
        with pytest.raises(ValueError, match="non-negative"):
            DirectSimulator(
                params, ConstantWorkload(1.0), start_times=[0.0, -1.0]
            )


class TestChunkLog:
    def test_disabled_by_default(self):
        result = make_sim().run(make_factory("gss"))
        assert result.chunk_log == []

    def test_records_every_chunk(self):
        sim = make_sim(record_chunks=True)
        result = sim.run(make_factory("gss"))
        assert len(result.chunk_log) == result.num_chunks
        assert sum(c.record.size for c in result.chunk_log) == 100

    def test_execution_windows_are_ordered_per_worker(self):
        sim = make_sim(record_chunks=True, workload=ExponentialWorkload(1.0))
        result = sim.run(make_factory("fac2"), seed=3)
        by_worker: dict[int, list] = {}
        for ce in result.chunk_log:
            by_worker.setdefault(ce.record.worker, []).append(ce)
        for executions in by_worker.values():
            for a, b in zip(executions, executions[1:]):
                assert b.start_time >= a.end_time - 1e-9


class TestReplicate:
    def test_count_and_determinism(self):
        sim = make_sim(workload=ExponentialWorkload(1.0))
        a = replicate(sim, make_factory("fac2"), runs=5, seed=9)
        b = replicate(sim, make_factory("fac2"), runs=5, seed=9)
        assert len(a) == 5
        assert [r.makespan for r in a] == [r.makespan for r in b]

    def test_runs_validated(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            replicate(sim, make_factory("ss"), runs=0)

    def test_adaptive_techniques_run(self):
        sim = make_sim(n=512, p=4, workload=ExponentialWorkload(1.0))
        for name in ("awf-b", "awf-c", "af"):
            result = sim.run(make_factory(name), seed=1)
            assert result.total_task_time > 0
