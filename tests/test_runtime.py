"""Tests for the real-execution DLS backend (repro.runtime)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import DLSExecutor, dls_map

from conftest import BOLD_EIGHT


class TestCorrectness:
    def test_results_in_item_order(self):
        report = DLSExecutor("gss", workers=3).map(
            lambda x: x * x, list(range(100))
        )
        assert report.results == [x * x for x in range(100)]

    @pytest.mark.parametrize("name", BOLD_EIGHT + ("awf-c", "af"))
    def test_every_technique_executes_everything(self, name):
        report = DLSExecutor(
            name, workers=4, h=0.001, mu=1e-4, sigma=1e-4
        ).map(lambda x: x + 1, list(range(64)))
        assert report.results == list(range(1, 65))
        assert sum(report.chunks_per_worker) == report.num_chunks

    def test_empty_input(self):
        report = DLSExecutor("fac2", workers=2).map(lambda x: x, [])
        assert report.results == []
        assert report.num_chunks == 0

    def test_single_worker(self):
        report = DLSExecutor("ss", workers=1).map(lambda x: -x, [1, 2, 3])
        assert report.results == [-1, -2, -3]
        assert report.num_chunks == 3

    def test_dls_map_convenience(self):
        assert dls_map(str, [1, 2, 3], technique="fac2", workers=2) == [
            "1", "2", "3",
        ]

    def test_exception_propagates(self):
        def boom(x):
            if x == 5:
                raise RuntimeError("task failed")
            return x

        with pytest.raises(RuntimeError, match="task failed"):
            DLSExecutor("gss", workers=2).map(boom, list(range(10)))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            DLSExecutor(workers=0)


class TestParallelBehaviour:
    def test_multiple_threads_participate(self):
        seen: set[str] = set()
        lock = threading.Lock()

        def task(x):
            with lock:
                seen.add(threading.current_thread().name)
            time.sleep(0.001)  # release the GIL so others get chunks
            return x

        report = DLSExecutor("ss", workers=4).map(task, list(range(64)))
        assert len(seen) >= 2
        assert all(c > 0 for c in report.chunks_per_worker)

    def test_io_bound_speedup(self):
        items = list(range(16))

        def sleepy(x):
            time.sleep(0.01)
            return x

        serial = DLSExecutor("fac2", workers=1).map(sleepy, items)
        parallel = DLSExecutor("fac2", workers=8).map(sleepy, items)
        assert parallel.wall_time < serial.wall_time / 2

    def test_adaptive_technique_receives_real_timings(self):
        executor = DLSExecutor("awf-c", workers=2)

        def uneven(x):
            time.sleep(0.002 if x % 2 else 0.0001)
            return x

        report = executor.map(uneven, list(range(200)))
        assert report.results == list(range(200))
        assert report.num_chunks >= 2


class TestReport:
    def test_utilization_bounded(self):
        report = DLSExecutor("fac2", workers=4).map(
            lambda x: x, list(range(100))
        )
        assert 0.0 <= report.utilization <= 1.0 + 1e-9

    def test_wasted_time_nonnegative(self):
        report = DLSExecutor("gss", workers=4).map(
            lambda x: x, list(range(100))
        )
        assert report.average_wasted_time >= -1e-9

    def test_technique_label(self):
        report = DLSExecutor("fac2", workers=2).map(lambda x: x, [1])
        assert report.technique == "FAC2"
