"""Tests for the statistical verification machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.stats import (
    bootstrap_ci,
    equivalence_report,
    ks_two_sample,
    welch_t_test,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestWelch:
    def test_same_distribution_compatible(self):
        a = rng(1).normal(10, 2, 200)
        b = rng(2).normal(10, 2, 200)
        result = welch_t_test(a, b)
        assert result.compatible()
        assert abs(result.mean_difference) < 1.0

    def test_shifted_means_detected(self):
        a = rng(1).normal(10, 1, 200)
        b = rng(2).normal(12, 1, 200)
        result = welch_t_test(a, b)
        assert not result.compatible()
        assert result.p_value < 1e-6

    def test_unequal_variances_handled(self):
        a = rng(1).normal(10, 0.1, 50)
        b = rng(2).normal(10, 5.0, 50)
        result = welch_t_test(a, b)
        assert result.compatible(alpha=0.001)
        # Welch dof is far below the pooled 98 when variances differ.
        assert result.degrees_of_freedom < 98

    def test_identical_constant_samples(self):
        result = welch_t_test([5.0, 5.0, 5.0], [5.0, 5.0])
        assert result.p_value == 1.0
        assert result.compatible()

    def test_distinct_constant_samples(self):
        result = welch_t_test([5.0, 5.0], [6.0, 6.0])
        assert result.p_value == 0.0

    def test_too_small_samples_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [2.0, 3.0])

    def test_matches_scipy(self):
        from scipy import stats

        a = rng(3).exponential(1.0, 40)
        b = rng(4).exponential(1.2, 60)
        ours = welch_t_test(a, b)
        ref = stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)


class TestBootstrap:
    def test_ci_contains_true_mean_usually(self):
        hits = 0
        for i in range(20):
            sample = rng(i).normal(5.0, 1.0, 100)
            ci = bootstrap_ci(sample, resamples=500, seed=i)
            hits += ci.contains(5.0)
        assert hits >= 17  # ~95% coverage

    def test_interval_brackets_statistic(self):
        sample = rng(0).exponential(1.0, 50)
        ci = bootstrap_ci(sample)
        assert ci.low <= ci.statistic <= ci.high

    def test_custom_statistic(self):
        sample = rng(0).exponential(1.0, 200)
        ci = bootstrap_ci(sample, statistic=np.median)
        assert ci.low <= np.median(sample) <= ci.high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_deterministic_given_seed(self):
        sample = list(rng(0).normal(0, 1, 30))
        a = bootstrap_ci(sample, seed=7)
        b = bootstrap_ci(sample, seed=7)
        assert (a.low, a.high) == (b.low, b.high)


class TestKs:
    def test_same_distribution_compatible(self):
        a = rng(1).exponential(1.0, 300)
        b = rng(2).exponential(1.0, 300)
        assert ks_two_sample(a, b).compatible()

    def test_different_shapes_detected(self):
        a = rng(1).exponential(1.0, 300)
        b = rng(2).normal(1.0, 1.0, 300)
        assert not ks_two_sample(a, b).compatible()

    def test_statistic_in_unit_interval(self):
        a = rng(1).normal(0, 1, 50)
        b = rng(2).normal(0, 1, 50)
        result = ks_two_sample(a, b)
        assert 0.0 <= result.statistic <= 1.0
        assert 0.0 <= result.p_value <= 1.0

    def test_matches_scipy_statistic(self):
        from scipy import stats

        a = rng(3).exponential(1.0, 80)
        b = rng(4).exponential(1.5, 120)
        ours = ks_two_sample(a, b)
        ref = stats.ks_2samp(a, b)
        assert ours.statistic == pytest.approx(ref.statistic)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])


class TestEquivalenceReport:
    def test_agreeing_simulator_samples(self):
        """The real use: wasted times from both simulators agree."""
        from repro.core.params import SchedulingParams
        from repro.core.registry import make_factory
        from repro.directsim import DirectSimulator
        from repro.simgrid import MasterWorkerSimulation
        from repro.workloads import ExponentialWorkload

        params = SchedulingParams(n=512, p=8, h=0.5, mu=1.0, sigma=1.0)
        workload = ExponentialWorkload(1.0)
        direct = [
            DirectSimulator(params, workload)
            .run(make_factory("fac2"), seed=i)
            .average_wasted_time
            for i in range(40)
        ]
        msg = [
            MasterWorkerSimulation(params, workload)
            .run(make_factory("fac2"), seed=1000 + i)
            .average_wasted_time
            for i in range(40)
        ]
        report = equivalence_report(direct, msg)
        assert report.agree(alpha=0.001, max_relative_difference=0.3)

    def test_disagreeing_samples(self):
        a = rng(1).normal(10, 1, 100)
        b = rng(2).normal(20, 1, 100)
        report = equivalence_report(a, b)
        assert not report.agree()
        assert report.relative_mean_difference == pytest.approx(-0.5, abs=0.05)
