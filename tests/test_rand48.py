"""Tests for the exact rand48 reproduction."""

from __future__ import annotations

import math

import pytest

from repro.workloads.rand48 import Rand48


class TestLcgDefinition:
    def test_srand48_seeding(self):
        gen = Rand48(12345)
        assert gen.state == (12345 << 16) | 0x330E

    def test_step_matches_posix_recurrence(self):
        gen = Rand48(0)
        x0 = gen.state
        gen.erand48()
        expected = (0x5DEECE66D * x0 + 0xB) & ((1 << 48) - 1)
        assert gen.state == expected

    def test_known_first_drand48_values_seed_zero(self):
        # Reference values computed from the POSIX recurrence (identical
        # to glibc's drand48 after srand48(0)).
        gen = Rand48(0)
        first = [gen.drand48() for _ in range(3)]
        assert first[0] == pytest.approx(0.170828036, abs=1e-9)
        assert first[1] == pytest.approx(0.749901980, abs=1e-9)
        assert first[2] == pytest.approx(0.096371656, abs=1e-9)

    def test_erand48_in_unit_interval(self):
        gen = Rand48(42)
        for _ in range(1000):
            u = gen.erand48()
            assert 0.0 <= u < 1.0

    def test_nrand48_is_high_31_bits(self):
        gen_a = Rand48(7)
        gen_b = Rand48(7)
        raw = []
        for _ in range(10):
            gen_a._step()
            raw.append(gen_a.state >> 17)
        got = [gen_b.nrand48() for _ in range(10)]
        assert got == raw

    def test_nrand48_range(self):
        gen = Rand48(99)
        for _ in range(1000):
            v = gen.nrand48()
            assert 0 <= v < 2**31

    def test_from_xsubi_roundtrip(self):
        gen = Rand48.from_xsubi(0x123456789ABC)
        assert gen.state == 0x123456789ABC

    def test_seed_determinism(self):
        a = [Rand48(5).erand48() for _ in range(1)]
        b = [Rand48(5).erand48() for _ in range(1)]
        assert a == b

    def test_different_seeds_differ(self):
        assert Rand48(1).erand48() != Rand48(2).erand48()


class TestExponential:
    def test_inversion_formula(self):
        gen_u = Rand48(3)
        gen_e = Rand48(3)
        u = gen_u.erand48()
        e = gen_e.exponential(2.0)
        assert e == pytest.approx(-2.0 * math.log(1.0 - u))

    def test_mean_statistic(self):
        gen = Rand48(1234)
        n = 20_000
        total = sum(gen.exponential(1.0) for _ in range(n))
        assert total / n == pytest.approx(1.0, rel=0.05)

    def test_exponential_array(self):
        gen_a = Rand48(8)
        gen_b = Rand48(8)
        arr = gen_a.exponential_array(50, mean=1.5)
        seq = [gen_b.exponential(1.5) for _ in range(50)]
        assert arr.tolist() == pytest.approx(seq)

    def test_uniform_array(self):
        gen = Rand48(8)
        arr = gen.uniform_array(100)
        assert arr.shape == (100,)
        assert ((arr >= 0) & (arr < 1)).all()

    def test_all_values_positive(self):
        gen = Rand48(77)
        assert all(gen.exponential(1.0) > 0 for _ in range(1000))
