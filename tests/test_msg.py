"""Tests for the MSG layer: mailboxes, send/receive, compute tasks."""

from __future__ import annotations

import pytest

from repro.simgrid.engine import Engine, Timeout
from repro.simgrid.msg import (
    ComputeTask,
    Execute,
    Mailbox,
    Receive,
    Send,
)
from repro.simgrid.platform import Host, Link, Platform


def two_host_platform(latency=0.5, bandwidth=100.0) -> Platform:
    platform = Platform()
    platform.add_host(Host("a", speed=1.0))
    platform.add_host(Host("b", speed=2.0))
    link = platform.add_link(Link("l", bandwidth=bandwidth, latency=latency))
    platform.add_route("a", "b", [link])
    return platform


class TestSendReceive:
    def test_message_arrives_after_transfer_time(self):
        platform = two_host_platform(latency=0.5, bandwidth=100.0)
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("b"))
        log = {}

        def sender():
            yield Send(platform, platform.host("a"), mailbox, "hi", size=50.0)
            log["send_done"] = engine.now

        def receiver():
            msg = yield Receive(mailbox)
            log["recv"] = engine.now
            log["payload"] = msg.payload
            log["meta"] = (msg.source, msg.size, msg.sent_at, msg.delivered_at)

        engine.spawn(sender(), name="s")
        engine.spawn(receiver(), name="r")
        engine.run()
        # transfer = latency + size/bandwidth = 0.5 + 0.5 = 1.0
        assert log["recv"] == pytest.approx(1.0)
        assert log["send_done"] == pytest.approx(1.0)
        assert log["payload"] == "hi"
        assert log["meta"] == ("a", 50.0, 0.0, 1.0)

    def test_receive_before_send_blocks(self):
        platform = two_host_platform(latency=0.25, bandwidth=1e9)
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("b"))
        times = []

        def receiver():
            yield Receive(mailbox)
            times.append(engine.now)

        def sender():
            yield Timeout(5.0)
            yield Send(platform, platform.host("a"), mailbox, 1, size=0.0)

        engine.spawn(receiver())
        engine.spawn(sender())
        engine.run()
        assert times[0] == pytest.approx(5.25)

    def test_messages_queue_fifo(self):
        platform = two_host_platform(latency=0.1, bandwidth=1e12)
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("b"))
        got = []

        def sender():
            for i in range(3):
                yield Send(platform, platform.host("a"), mailbox, i, size=0.0)

        def receiver():
            yield Timeout(10.0)  # let all three queue up
            for _ in range(3):
                msg = yield Receive(mailbox)
                got.append(msg.payload)

        engine.spawn(sender())
        engine.spawn(receiver())
        engine.run()
        assert got == [0, 1, 2]

    def test_multiple_waiters_served_in_order(self):
        platform = two_host_platform(latency=0.1, bandwidth=1e12)
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("b"))
        got = []

        def waiter(i):
            msg = yield Receive(mailbox)
            got.append((i, msg.payload))

        def sender():
            yield Timeout(1.0)
            yield Send(platform, platform.host("a"), mailbox, "x", size=0.0)
            yield Send(platform, platform.host("a"), mailbox, "y", size=0.0)

        engine.spawn(waiter(0))
        engine.spawn(waiter(1))
        engine.spawn(sender())
        engine.run()
        assert got == [(0, "x"), (1, "y")]

    def test_loopback_send_instant(self):
        platform = two_host_platform()
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("a"))
        times = []

        def proc():
            yield Send(platform, platform.host("a"), mailbox, 1, size=1e6)
            times.append(engine.now)
            yield Receive(mailbox)

        engine.spawn(proc())
        engine.run()
        assert times[0] == 0.0

    def test_negative_size_rejected(self):
        platform = two_host_platform()
        mailbox = Mailbox("mb", platform.host("b"))
        with pytest.raises(ValueError):
            Send(platform, platform.host("a"), mailbox, 1, size=-1.0)

    def test_pending_message_count(self):
        platform = two_host_platform(latency=0.0, bandwidth=1e12)
        engine = Engine()
        mailbox = Mailbox("mb", platform.host("b"))

        def sender():
            yield Send(platform, platform.host("a"), mailbox, 1, size=0.0)

        engine.spawn(sender())
        engine.run()
        assert mailbox.pending_messages == 1


class TestComputeTask:
    def test_duration_scales_with_speed(self):
        task = ComputeTask("t", amount=10.0)
        assert task.duration_on(Host("x", speed=2.0)) == 5.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            ComputeTask("t", amount=-1.0)

    def test_execute_occupies_process(self):
        engine = Engine()
        host = Host("h", speed=4.0)
        times = []

        def proc():
            yield Execute(ComputeTask("t", amount=8.0), host)
            times.append(engine.now)

        engine.spawn(proc())
        engine.run()
        assert times[0] == pytest.approx(2.0)
