"""Tests for the technique registry (repro.core.registry)."""

from __future__ import annotations

import pytest

from repro.core.base import Scheduler
from repro.core.params import SchedulingParams
from repro.core.registry import (
    create,
    get_technique,
    iter_techniques,
    make_factory,
    register,
    technique_names,
)

from conftest import ALL_TECHNIQUES


def test_all_expected_techniques_registered():
    names = technique_names()
    for expected in ALL_TECHNIQUES:
        assert expected in names


def test_lookup_is_case_insensitive():
    assert get_technique("GSS") is get_technique("gss")


def test_unknown_name_lists_known(capsys):
    with pytest.raises(KeyError, match="known:"):
        get_technique("nope")


def test_create_instantiates(params_small):
    s = create("gss", params_small)
    assert s.name == "gss"
    assert s.params is params_small


def test_create_passes_kwargs(params_small):
    s = create("gss", params_small, min_chunk=7)
    assert s.min_chunk_size == 7


def test_make_factory(params_small):
    factory = make_factory("css", k=13)
    s = factory(params_small)
    assert s.k == 13


def test_iter_techniques_sorted():
    names = [cls.name for cls in iter_techniques()]
    assert names == sorted(names)


def test_register_requires_name():
    class Nameless(Scheduler):
        name = ""

        def _chunk_size(self, worker: int) -> int:
            return 1

    with pytest.raises(ValueError, match="non-empty 'name'"):
        register(Nameless)


def test_register_rejects_duplicates():
    class DupA(Scheduler):
        name = "dup-test"

        def _chunk_size(self, worker: int) -> int:
            return 1

    class DupB(Scheduler):
        name = "dup-test"

        def _chunk_size(self, worker: int) -> int:
            return 1

    register(DupA)
    try:
        with pytest.raises(ValueError, match="duplicate"):
            register(DupB)
    finally:
        from repro.core import registry

        registry._REGISTRY.pop("dup-test", None)


def test_registered_classes_have_labels_and_requires():
    for cls in iter_techniques():
        assert cls.label, cls
        assert isinstance(cls.requires, frozenset), cls


def test_every_technique_drains(params_small):
    from repro.core.base import chunk_sizes

    for name in technique_names():
        sizes = chunk_sizes(create(name, params_small))
        assert sum(sizes) == params_small.n, name
