"""Tests for the experiment harness (BOLD + TSS experiments, runner)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    BOLD_PE_COUNTS,
    BOLD_TECHNIQUES,
    RunTask,
    bold_reference,
    bold_reference_available,
    bold_reference_metadata,
    compare_to_reference,
    fac_outlier_study,
    run_bold_experiment,
    run_replicated,
    run_tss_experiment,
    tss_published_speedups,
    tss_reproduction_verdicts,
)
from repro.experiments.bold_experiments import default_runs, scheduling_params
from repro.workloads import ExponentialWorkload


class TestRunner:
    def test_run_task_direct(self):
        task = RunTask(
            technique="fac2",
            params=scheduling_params(256, 4),
            workload=ExponentialWorkload(1.0),
            simulator="direct",
        )
        result = task.execute()
        assert result.total_task_time > 0

    def test_run_task_msg(self):
        task = RunTask(
            technique="gss",
            params=scheduling_params(256, 4),
            workload=ExponentialWorkload(1.0),
            simulator="msg",
        )
        assert task.execute().num_chunks > 0

    def test_replications_are_deterministic(self):
        task = RunTask(
            technique="fac2",
            params=scheduling_params(256, 4),
            workload=ExponentialWorkload(1.0),
            simulator="direct",
        )
        a = run_replicated(task, 4, campaign_seed=3, processes=1)
        b = run_replicated(task, 4, campaign_seed=3, processes=1)
        assert [r.makespan for r in a] == [r.makespan for r in b]

    def test_replications_are_independent(self):
        task = RunTask(
            technique="fac2",
            params=scheduling_params(256, 4),
            workload=ExponentialWorkload(1.0),
            simulator="direct",
        )
        results = run_replicated(task, 4, campaign_seed=3, processes=1)
        assert len({r.makespan for r in results}) == 4

    def test_technique_kwargs_passed(self):
        task = RunTask(
            technique="gss",
            params=scheduling_params(256, 4),
            workload=ExponentialWorkload(1.0),
            simulator="direct",
            technique_kwargs={"min_chunk": 16},
        )
        result = task.execute()
        # min_chunk=16 caps the chunk count at ~n/16 + tail.
        assert result.num_chunks <= 256 // 16 + 4


class TestBoldExperiment:
    def test_small_experiment_shape(self):
        result = run_bold_experiment(
            n=256, pe_counts=(2, 8), techniques=("STAT", "SS", "FAC2"),
            runs=3, simulator="direct", seed=1,
        )
        assert set(result.values) == {"STAT", "SS", "FAC2"}
        assert all(len(v) == 2 for v in result.values.values())
        assert result.value("SS", 2) > result.value("FAC2", 2)

    def test_ss_wasted_time_dominated_by_overhead(self):
        # SS's POST_HOC wasted time is ~ h*n/p plus a small idle term.
        result = run_bold_experiment(
            n=256, pe_counts=(2,), techniques=("SS",), runs=3,
            simulator="direct", seed=1,
        )
        assert result.value("SS", 2) == pytest.approx(64.0, rel=0.2)

    def test_default_runs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "7")
        assert default_runs(1024) == 7
        monkeypatch.delenv("REPRO_RUNS")
        assert default_runs(1024) > 0

    def test_msg_and_direct_agree(self):
        kwargs = dict(
            n=256, pe_counts=(4,), techniques=("FAC2",), runs=10, seed=5
        )
        msg = run_bold_experiment(simulator="msg", **kwargs)
        direct = run_bold_experiment(simulator="direct", **kwargs)
        m, d = msg.value("FAC2", 4), direct.value("FAC2", 4)
        assert abs(m - d) / d < 0.5


@pytest.mark.skipif(
    not bold_reference_available(), reason="reference data not generated"
)
class TestReference:
    def test_reference_has_all_cells(self):
        for n in (1024, 8192, 65536, 524288):
            ref = bold_reference(n)
            assert set(ref) == set(BOLD_TECHNIQUES)
            for values in ref.values():
                assert len(values) == len(BOLD_PE_COUNTS)
                assert all(v > 0 for v in values)

    def test_reference_metadata(self):
        meta = bold_reference_metadata()
        assert meta["seed"] == 19971202
        assert "per-task" in meta["sampling"]

    def test_ss_anchor_value(self):
        """SS at n=524288, p=2 must be ~1.3e5 s (the paper's anchor)."""
        ref = bold_reference(524288)
        ss_at_2 = ref["SS"][BOLD_PE_COUNTS.index(2)]
        assert ss_at_2 == pytest.approx(131072, rel=0.01)

    def test_unknown_n_rejected(self):
        with pytest.raises(KeyError):
            bold_reference(999)

    def test_compare_to_reference_rows(self):
        result = run_bold_experiment(
            n=1024, pe_counts=BOLD_PE_COUNTS,
            techniques=("STAT", "FAC2"), runs=5, simulator="direct", seed=2,
        )
        rows = compare_to_reference(result)
        assert {r.technique for r in rows} == {"STAT", "FAC2"}
        for row in rows:
            assert len(row.discrepancies) == len(BOLD_PE_COUNTS)


class TestFacOutlierStudy:
    def test_small_study(self):
        study = fac_outlier_study(
            n=8192, p=2, runs=30, threshold=60.0, simulator="direct", seed=4
        )
        assert len(study.per_run) == 30
        assert study.mean > 0
        assert 0 <= study.num_above <= 30
        assert study.mean_excluding <= max(study.per_run)

    def test_heavy_tail_exists_at_paper_cell(self):
        """Some runs are far above the median (the Figure 9 phenomenon)."""
        study = fac_outlier_study(
            n=65536, p=2, runs=40, threshold=200.0, simulator="direct",
            seed=7,
        )
        import statistics

        med = statistics.median(study.per_run)
        assert max(study.per_run) > 3 * med


class TestTssExperiment:
    def test_small_sweep(self):
        result = run_tss_experiment(1, pe_counts=(2, 8, 16))
        assert set(result.speedups) == {
            "SS", "CSS", "GSS(1)", "GSS(80)", "TSS",
        }
        for curve in result.speedups.values():
            assert len(curve) == 3
            assert all(s > 0 for s in curve)

    def test_css_and_tss_near_ideal(self):
        result = run_tss_experiment(1, pe_counts=(16,))
        assert result.speedups["CSS"][0] > 14.0
        assert result.speedups["TSS"][0] > 14.0

    def test_metrics_triple_available(self):
        result = run_tss_experiment(2, pe_counts=(8,))
        m = result.metrics["TSS"][0]
        assert m.total == pytest.approx(8.0, rel=0.05)
        assert result.overheads["TSS"][0] >= 0
        assert result.imbalances["TSS"][0] >= 0

    def test_invalid_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_tss_experiment(3)

    def test_published_data_shape(self):
        for exp in (1, 2):
            pub = tss_published_speedups(exp)
            assert all(len(v) == 10 for v in pub.values())

    def test_published_unknown_experiment(self):
        with pytest.raises(ValueError):
            tss_published_speedups(5)

    def test_verdicts_mark_ss_not_reproduced(self):
        """The paper's negative result: SS diverges from the 1993 values."""
        from repro.experiments.tss_experiments import TSS_PE_COUNTS

        result = run_tss_experiment(1, pe_counts=TSS_PE_COUNTS)
        verdicts = {
            v.technique: v for v in tss_reproduction_verdicts(result)
        }
        assert not verdicts["SS"].reproduced
        assert verdicts["CSS"].reproduced
        assert verdicts["TSS"].reproduced
