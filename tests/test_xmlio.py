"""Tests for the platform/deployment XML reader and writer."""

from __future__ import annotations

import pytest

from repro.simgrid.platform import star_platform
from repro.simgrid.xmlio import (
    ProcessPlacement,
    deployment_to_xml,
    load_deployment,
    load_platform,
    loads_deployment,
    loads_platform,
    master_worker_deployment,
    parse_bandwidth,
    parse_latency,
    parse_speed,
    platform_to_xml,
)

PLATFORM_XML = """<?xml version='1.0'?>
<platform version="4.1">
  <zone id="AS0" routing="Full">
    <host id="master" speed="1Gf"/>
    <host id="worker-0" speed="500Mf" core="2"/>
    <link id="link-0" bandwidth="125MBps" latency="50us"/>
    <route src="master" dst="worker-0"><link_ctn id="link-0"/></route>
  </zone>
</platform>
"""

DEPLOYMENT_XML = """<?xml version='1.0'?>
<deployment>
  <process host="master" function="master"/>
  <process host="worker-0" function="worker"><argument value="0"/></process>
</deployment>
"""


class TestUnitParsing:
    def test_speeds(self):
        assert parse_speed("1Gf") == 1e9
        assert parse_speed("500Mf") == 5e8
        assert parse_speed("2.5Kf") == 2500.0
        assert parse_speed("100f") == 100.0
        assert parse_speed("42") == 42.0

    def test_bandwidths(self):
        assert parse_bandwidth("125MBps") == 1.25e8
        assert parse_bandwidth("1GBps") == 1e9
        assert parse_bandwidth("10Bps") == 10.0

    def test_latencies(self):
        assert parse_latency("50us") == pytest.approx(5e-5)
        assert parse_latency("1ms") == 1e-3
        assert parse_latency("2ns") == pytest.approx(2e-9)
        assert parse_latency("0.5s") == 0.5

    def test_case_insensitive(self):
        assert parse_speed("1gf") == 1e9

    def test_bad_value_raises(self):
        with pytest.raises(ValueError, match="speed"):
            parse_speed("fast")
        with pytest.raises(ValueError, match="bandwidth"):
            parse_bandwidth("xMBps")


class TestPlatformXml:
    def test_parse_platform(self):
        platform = loads_platform(PLATFORM_XML)
        assert platform.host("master").speed == 1e9
        worker = platform.host("worker-0")
        assert worker.speed == 5e8
        assert worker.cores == 2
        # transfer = 50us + 64/125MBps
        assert platform.transfer_time("master", "worker-0", 64.0) == (
            pytest.approx(5e-5 + 64 / 1.25e8)
        )

    def test_route_symmetric_default(self):
        platform = loads_platform(PLATFORM_XML)
        assert platform.route("worker-0", "master").links

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "platform.xml"
        path.write_text(PLATFORM_XML)
        platform = load_platform(path)
        assert "worker-0" in platform.host_names

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError, match="<platform>"):
            loads_platform("<bogus/>")

    def test_missing_attribute_rejected(self):
        xml = "<platform><zone><host id='x'/></zone></platform>"
        with pytest.raises(ValueError, match="speed"):
            loads_platform(xml)

    def test_roundtrip(self):
        original = star_platform(3, bandwidth=1e6, latency=1e-4)
        text = platform_to_xml(original)
        back = loads_platform(text)
        assert set(back.host_names) == set(original.host_names)
        for i in range(3):
            assert back.transfer_time("master", f"worker-{i}", 100.0) == (
                pytest.approx(
                    original.transfer_time("master", f"worker-{i}", 100.0)
                )
            )


class TestDeploymentXml:
    def test_parse_deployment(self):
        placements = loads_deployment(DEPLOYMENT_XML)
        assert placements[0] == ProcessPlacement("master", "master")
        assert placements[1] == ProcessPlacement(
            "worker-0", "worker", arguments=("0",)
        )

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "deploy.xml"
        path.write_text(DEPLOYMENT_XML)
        assert len(load_deployment(path)) == 2

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError, match="<deployment>"):
            loads_deployment("<platform/>")

    def test_master_worker_deployment(self):
        placements = master_worker_deployment(3)
        assert placements[0].function == "master"
        assert [p.host for p in placements[1:]] == [
            "worker-0", "worker-1", "worker-2",
        ]

    def test_roundtrip(self):
        placements = master_worker_deployment(2)
        text = deployment_to_xml(placements)
        assert loads_deployment(text) == placements
