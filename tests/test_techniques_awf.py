"""Tests for the AWF family (adaptive weighted factoring)."""

from __future__ import annotations

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


def params(n=1024, p=4, h=0.25) -> SchedulingParams:
    return SchedulingParams(n=n, p=p, h=h)


def drain_with_speeds(scheduler, speeds):
    """Drain a scheduler, reporting times that reflect PE speeds."""
    sizes_by_worker = {w: [] for w in range(len(speeds))}
    worker = 0
    while not scheduler.done:
        size = scheduler.next_chunk(worker)
        if size == 0:
            break
        sizes_by_worker[worker].append(size)
        scheduler.record_finished(worker, size, elapsed=size / speeds[worker])
        worker = (worker + 1) % len(speeds)
    return sizes_by_worker


class TestAwfCommon:
    @pytest.mark.parametrize("name", ["awf", "awf-b", "awf-c", "awf-d", "awf-e"])
    def test_conservation(self, name):
        assert sum(chunk_sizes(create(name, params()))) == 1024

    @pytest.mark.parametrize("name", ["awf", "awf-b", "awf-c", "awf-d", "awf-e"])
    def test_marked_adaptive(self, name):
        assert create(name, params()).adaptive

    def test_initial_weights_equal(self):
        s = create("awf-b", params())
        assert s.current_weights() == [1.0] * 4

    def test_initial_weights_from_params(self):
        p = SchedulingParams(n=100, p=2, weights=(1.0, 3.0))
        s = create("awf-b", p)
        assert s.current_weights() == [0.5, 1.5]

    def test_weights_adapt_to_fast_worker(self):
        s = create("awf-c", params(n=4096, p=2))
        drain_with_speeds(s, speeds=[1.0, 4.0])
        w = s.current_weights()
        assert w[1] > w[0]
        assert sum(w) == pytest.approx(2.0)

    def test_fast_worker_receives_more_tasks(self):
        s = create("awf-c", params(n=4096, p=2))
        by_worker = drain_with_speeds(s, speeds=[1.0, 4.0])
        assert sum(by_worker[1]) > sum(by_worker[0])

    def test_weights_mean_one(self):
        s = create("awf-b", params(n=2048, p=4))
        drain_with_speeds(s, speeds=[1.0, 2.0, 3.0, 4.0])
        assert sum(s.current_weights()) == pytest.approx(4.0)


class TestAwfVariantDifferences:
    def test_chunk_updates_react_faster_than_batch(self):
        """AWF-C recomputes weights mid-batch; AWF-B waits for batch end."""
        def feed_two_chunks(s):
            # Workers 0 and 1 complete their first-batch chunks (workers
            # 2 and 3 have not claimed theirs, so the batch is still open).
            s1 = s.next_chunk(0)
            s.record_finished(0, s1, elapsed=s1 * 1.0)   # slow worker
            s2 = s.next_chunk(1)
            s.record_finished(1, s2, elapsed=s2 * 0.25)  # fast worker

        c = create("awf-c", params(n=512, p=4))
        feed_two_chunks(c)
        wc = c.current_weights()
        assert wc[1] > wc[0]  # adapted mid-batch
        b = create("awf-b", params(n=512, p=4))
        feed_two_chunks(b)
        # AWF-B recomputes only at the next batch start.
        assert b.current_weights() == [1.0, 1.0, 1.0, 1.0]

    def test_overhead_inclusive_variants_differ(self):
        """AWF-D folds h into the measured time; AWF-B does not."""
        pd = params(n=512, p=2, h=5.0)
        d = create("awf-d", pd)
        b = create("awf-b", pd)
        for s in (d, b):
            s.next_chunk(0)
            s.record_finished(0, s.chunks[0].size, elapsed=1.0)
            s.next_chunk(1)
            s.record_finished(1, s.chunks[1].size, elapsed=2.0)
            # Force a recompute by starting the next batch.
            while not s.done:
                size = s.next_chunk(0)
                s.record_finished(0, size, elapsed=1.0)
        # The h=5 addend dilutes the relative difference for AWF-D.
        assert d._stats[0].pi != b._stats[0].pi


class TestTimestepAwf:
    def test_start_timestep_rearms_scheduler(self):
        s = create("awf", params(n=100, p=2))
        total = sum(chunk_sizes(s))
        assert total == 100
        s.start_timestep()
        assert not s.done
        assert sum(chunk_sizes(s)) == 100
        assert s.timestep == 1

    def test_start_timestep_recomputes_weights(self):
        s = create("awf", params(n=400, p=2))
        drain_with_speeds(s, speeds=[1.0, 3.0])
        assert s.current_weights() == [1.0, 1.0]  # frozen during step
        s.start_timestep()
        w = s.current_weights()
        assert w[1] > w[0]  # adapted between steps

    def test_start_timestep_with_outstanding_rejected(self):
        s = create("awf", params(n=100, p=2))
        s.next_chunk(0)
        with pytest.raises(RuntimeError, match="outstanding"):
            s.start_timestep()

    def test_weights_track_speed_changes_across_steps(self):
        s = create("awf", params(n=400, p=2))
        drain_with_speeds(s, speeds=[1.0, 3.0])
        s.start_timestep()
        first = list(s.current_weights())
        # Worker 0 becomes the fast one; later chunks weigh more, so the
        # ordering flips after enough steps.
        for _ in range(6):
            drain_with_speeds(s, speeds=[5.0, 1.0])
            s.start_timestep()
        second = s.current_weights()
        assert first[1] > first[0]
        assert second[0] > second[1]
