"""Tests for the extended techniques (TFSS, FISS, VISS, RND, PLS)."""

from __future__ import annotations

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


def params(n=1000, p=4, **kw) -> SchedulingParams:
    return SchedulingParams(n=n, p=p, **kw)


class TestTfss:
    def test_conservation(self):
        for n in (1, 10, 1000, 4097):
            assert sum(chunk_sizes(create("tfss", params(n=n)))) == n

    def test_batch_uniform_chunks(self):
        sizes = chunk_sizes(create("tfss", params()))
        # Chunks within a batch of p are equal.
        assert sizes[0] == sizes[1] == sizes[2] == sizes[3]

    def test_batches_decrease(self):
        sizes = chunk_sizes(create("tfss", params(n=4000)))
        batch_sizes = sizes[::4]
        assert batch_sizes == sorted(batch_sizes, reverse=True)

    def test_batch_mean_below_tss_first_chunk(self):
        tss = create("tss", params())
        tfss = create("tfss", params())
        # TFSS's first batch chunk is the mean of p trapezoid steps,
        # hence smaller than TSS's first chunk.
        assert tfss.next_chunk(0) <= tss.next_chunk(0)

    def test_invalid_f_l(self):
        with pytest.raises(ValueError, match="l <= f"):
            create("tfss", params(), first_chunk=2, last_chunk=10)


class TestFiss:
    def test_conservation(self):
        for n in (1, 10, 1000, 4097):
            assert sum(chunk_sizes(create("fiss", params(n=n)))) == n

    def test_chunks_increase_across_batches(self):
        s = create("fiss", params(n=4000))
        sizes = chunk_sizes(s)
        batch_sizes = []
        for i in range(0, len(sizes) - 4, 4):
            batch_sizes.append(sizes[i])
        increasing = [
            b for a, b in zip(batch_sizes, batch_sizes[1:]) if b >= a
        ]
        assert len(increasing) >= len(batch_sizes) - 2

    def test_custom_batch_budget(self):
        s = create("fiss", params(), batches=2)
        assert s.batches == 2
        assert sum(chunk_sizes(s)) == 1000

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            create("fiss", params(), batches=0)


class TestViss:
    def test_conservation(self):
        for n in (1, 10, 1000, 4097):
            assert sum(chunk_sizes(create("viss", params(n=n)))) == n

    def test_chunks_nondecreasing(self):
        sizes = chunk_sizes(create("viss", params(n=4000)))
        # Ignoring the clipped final chunk, sizes never shrink.
        assert sizes[:-1] == sorted(sizes[:-1])

    def test_increments_halve(self):
        s = create("viss", params(n=10_000, p=2))
        sizes = chunk_sizes(s)
        batch = sorted(set(sizes[:-1]))
        # c0, c0 + c0/2, c0 + c0/2 + c0/4 ...
        if len(batch) >= 3:
            inc1 = batch[1] - batch[0]
            inc2 = batch[2] - batch[1]
            assert inc2 <= inc1


class TestRnd:
    def test_conservation(self):
        assert sum(chunk_sizes(create("rnd", params()))) == 1000

    def test_bounds_respected(self):
        s = create("rnd", params(n=10_000, p=4))
        sizes = chunk_sizes(s)
        assert all(1 <= x <= 10_000 // 8 for x in sizes[:-1])

    def test_seeded_determinism(self):
        a = chunk_sizes(create("rnd", params(), seed=5))
        b = chunk_sizes(create("rnd", params(), seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        a = chunk_sizes(create("rnd", params(), seed=1))
        b = chunk_sizes(create("rnd", params(), seed=2))
        assert a != b


class TestPls:
    def test_conservation(self):
        for n in (1, 10, 1000, 4097):
            assert sum(chunk_sizes(create("pls", params(n=n)))) == n

    def test_static_prefix_per_worker(self):
        s = create("pls", params(n=1000, p=4), swr=0.5)
        # Each worker's first chunk is the even static share: 125 tasks.
        for w in range(4):
            assert s.next_chunk(w) == 125

    def test_dynamic_tail_is_guided(self):
        s = create("pls", params(n=1000, p=4), swr=0.5)
        for w in range(4):
            s.next_chunk(w)
        # After the static phase, chunks follow GSS on the remainder.
        assert s.next_chunk(0) == 125  # ceil(500/4)

    def test_swr_zero_is_pure_gss(self):
        a = chunk_sizes(create("pls", params(), swr=0.0))
        b = chunk_sizes(create("gss", params()))
        assert a == b

    def test_swr_validated(self):
        with pytest.raises(ValueError):
            create("pls", params(), swr=1.5)


class TestExtendedGeneric:
    @pytest.mark.parametrize("name", ["tfss", "fiss", "viss", "rnd", "pls"])
    def test_registered_and_simulatable(self, name):
        from repro.core.registry import make_factory
        from repro.directsim import DirectSimulator
        from repro.workloads import ExponentialWorkload

        pr = SchedulingParams(n=512, p=8, h=0.1, mu=1.0, sigma=1.0)
        sim = DirectSimulator(pr, ExponentialWorkload(1.0))
        result = sim.run(make_factory(name), seed=3)
        assert result.total_task_time > 0
        assert result.speedup <= 8 + 1e-9
