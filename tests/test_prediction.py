"""Tests for the pre-execution performance predictor."""

from __future__ import annotations

import statistics

import pytest

from repro.core.params import SchedulingParams
from repro.core.prediction import (
    Prediction,
    predict,
    predict_all,
    prediction_report,
    recommend_technique,
)
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator
from repro.workloads import ExponentialWorkload


def params(n=8192, p=8, h=0.5, mu=1.0, sigma=1.0) -> SchedulingParams:
    return SchedulingParams(n=n, p=p, h=h, mu=mu, sigma=sigma)


class TestPredict:
    def test_ss_overhead_is_exact(self):
        pr = predict("ss", params())
        assert pr.num_chunks == 8192
        assert pr.overhead_time == pytest.approx(0.5 * 8192 / 8)

    def test_stat_zero_variance_zero_waste(self):
        pr = predict("stat", params(sigma=0.0, h=0.0))
        assert pr.predicted_wasted_time == 0.0

    def test_stat_divisible_has_no_quantisation(self):
        pr = predict("stat", params(n=8192, p=8, sigma=0.0))
        assert pr.imbalance_time == 0.0

    def test_imbalance_grows_with_sigma(self):
        low = predict("stat", params(sigma=0.5))
        high = predict("stat", params(sigma=2.0))
        assert high.imbalance_time > low.imbalance_time

    def test_zero_tasks(self):
        pr = predict("gss", params(n=0))
        assert pr.num_chunks == 0
        assert pr.predicted_wasted_time == 0.0

    def test_kwargs_forwarded(self):
        small = predict("gss", params(), min_chunk=1)
        large = predict("gss", params(), min_chunk=64)
        assert large.num_chunks < small.num_chunks


class TestRanking:
    def test_predicted_ranking_matches_simulation(self):
        """The paper's goal: pick the right technique before execution."""
        pr = params(n=4096, p=8, h=0.5)
        predictions = {
            x.technique: x.predicted_wasted_time for x in predict_all(pr)
        }
        sim = DirectSimulator(pr, ExponentialWorkload(1.0))
        measured = {}
        for name in ("stat", "ss", "fsc", "gss", "tss", "fac", "fac2",
                     "bold"):
            label = predict(name, pr).technique
            measured[label] = statistics.mean(
                sim.run(make_factory(name), seed=i).average_wasted_time
                for i in range(12)
            )
        # Rank correlation between prediction and measurement.
        from scipy import stats

        order = sorted(predictions)
        rho, _ = stats.spearmanr(
            [predictions[t] for t in order],
            [measured[t] for t in order],
        )
        assert rho > 0.7

    def test_worst_and_best_identified(self):
        pr = params(n=8192, p=8, h=0.5)
        ranked = predict_all(pr)
        names = [x.technique for x in ranked]
        # SS's overhead puts it last; a factoring-family/guided technique
        # leads.
        assert names[-1] == "SS"
        assert names[0] in ("GSS", "FAC", "FAC2", "BOLD")

    def test_recommendation_depends_on_overhead(self):
        # With huge overhead, coarse chunking wins; with none, variance
        # smoothing wins.
        coarse = recommend_technique(params(h=50.0, sigma=0.1))
        fine = recommend_technique(params(h=0.0, sigma=2.0))
        assert coarse.num_chunks <= fine.num_chunks

    def test_recommend_returns_prediction(self):
        rec = recommend_technique(params())
        assert isinstance(rec, Prediction)


class TestReport:
    def test_report_sorted_best_first(self):
        text = prediction_report(params())
        lines = text.splitlines()[2:]
        values = [float(line.split()[-1]) for line in lines]
        assert values == sorted(values)

    def test_report_contains_all_defaults(self):
        text = prediction_report(params())
        for label in ("STAT", "SS", "GSS", "TSS", "FAC2", "BOLD"):
            assert label in text

    def test_custom_technique_list(self):
        text = prediction_report(params(), techniques=("ss", "stat"))
        assert "GSS" not in text
