"""Property-based tests on the simulators (hypothesis).

Conservation laws both simulators must satisfy for any technique,
workload and seed:

* every task is executed exactly once (chunk sizes sum to n);
* the makespan is at least every worker's busy time;
* total busy time never exceeds p * makespan;
* wasted times are non-negative; speedup never exceeds p;
* the run is reproducible from its seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator
from repro.simgrid import MasterWorkerSimulation
from repro.workloads import (
    BimodalWorkload,
    ConstantWorkload,
    ExponentialWorkload,
    GammaWorkload,
    UniformWorkload,
)

from conftest import BOLD_EIGHT

TECHNIQUES = BOLD_EIGHT + ("tap", "awf-c", "af")

workload_strategy = st.sampled_from([
    ConstantWorkload(0.5),
    ExponentialWorkload(1.0),
    UniformWorkload(0.1, 2.0),
    GammaWorkload(2.0, 0.5),
    BimodalWorkload(0.2, 3.0),
])

config_strategy = st.fixed_dictionaries({
    "n": st.integers(min_value=1, max_value=600),
    "p": st.integers(min_value=1, max_value=16),
    "h": st.sampled_from([0.0, 0.1, 1.0]),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "name": st.sampled_from(TECHNIQUES),
    "workload": workload_strategy,
})


def check_conservation(result, params):
    assert result.num_chunks >= 1 if params.n > 0 else result.num_chunks == 0
    assert sum(result.chunks_per_worker) == result.num_chunks
    assert result.makespan >= max(result.compute_times) - 1e-9
    assert sum(result.compute_times) <= params.p * result.makespan + 1e-9
    assert all(w >= -1e-9 for w in result.wasted_times)
    assert result.speedup <= params.p + 1e-9
    assert result.average_wasted_time >= -1e-9
    assert result.total_task_time >= 0


@settings(max_examples=40, deadline=None)
@given(cfg=config_strategy)
def test_directsim_invariants(cfg):
    params = SchedulingParams(
        n=cfg["n"], p=cfg["p"], h=cfg["h"], mu=1.0, sigma=1.0
    )
    sim = DirectSimulator(params, cfg["workload"])
    result = sim.run(make_factory(cfg["name"]), seed=cfg["seed"])
    check_conservation(result, params)


@settings(max_examples=20, deadline=None)
@given(cfg=config_strategy)
def test_msg_invariants(cfg):
    params = SchedulingParams(
        n=cfg["n"], p=cfg["p"], h=cfg["h"], mu=1.0, sigma=1.0
    )
    sim = MasterWorkerSimulation(params, cfg["workload"])
    result = sim.run(make_factory(cfg["name"]), seed=cfg["seed"])
    check_conservation(result, params)


@settings(max_examples=15, deadline=None)
@given(cfg=config_strategy)
def test_directsim_reproducible_from_seed(cfg):
    params = SchedulingParams(
        n=cfg["n"], p=cfg["p"], h=cfg["h"], mu=1.0, sigma=1.0
    )
    sim = DirectSimulator(params, cfg["workload"])
    a = sim.run(make_factory(cfg["name"]), seed=cfg["seed"])
    b = sim.run(make_factory(cfg["name"]), seed=cfg["seed"])
    assert a.makespan == b.makespan
    assert a.compute_times == b.compute_times
    assert a.num_chunks == b.num_chunks


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=400),
    p=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
    name=st.sampled_from(BOLD_EIGHT),
)
def test_simulators_agree_on_free_network(n, p, seed, name):
    """The paper's cross-validation as a property over random cells."""
    params = SchedulingParams(n=n, p=p, h=0.5, mu=1.0, sigma=1.0)
    workload = ExponentialWorkload(1.0)
    direct = DirectSimulator(params, workload).run(
        make_factory(name), seed=seed
    )
    msg = MasterWorkerSimulation(params, workload).run(
        make_factory(name), seed=seed
    )
    assert msg.num_chunks == direct.num_chunks
    assert msg.average_wasted_time == pytest.approx(
        direct.average_wasted_time, rel=1e-6, abs=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=400),
    p=st.integers(min_value=2, max_value=8),
    speed=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
)
def test_uniform_speedup_scaling(n, p, speed):
    """Scaling every PE speed by c scales the makespan by 1/c."""
    params = SchedulingParams(n=n, p=p, h=0.0, mu=1.0, sigma=1.0)
    workload = ExponentialWorkload(1.0)
    base = DirectSimulator(params, workload).run(
        make_factory("gss"), seed=5
    )
    scaled = DirectSimulator(
        params, workload, speeds=[speed] * p
    ).run(make_factory("gss"), seed=5)
    assert scaled.makespan * speed == pytest.approx(base.makespan, rel=1e-9)
