"""Tests for the metrics package."""

from __future__ import annotations

import pytest

from repro.metrics import (
    OverheadModel,
    Summary,
    average_wasted_time,
    discrepancy,
    discrepancy_table,
    ideal_speedup,
    max_abs_relative_discrepancy,
    mean_excluding_above,
    per_worker_wasted_times,
    relative_discrepancy,
    summarize,
    tzen_ni_metrics,
)
from repro.metrics.wasted_time import OverheadModel as OM
from repro.results import RunResult


def make_result(makespan=10.0, compute=(8.0, 9.0), num_chunks=4, h=0.5,
                total_task_time=17.0, model=OM.POST_HOC,
                extras=None) -> RunResult:
    return RunResult(
        technique="T",
        n=100,
        p=len(compute),
        h=h,
        overhead_model=model,
        makespan=makespan,
        compute_times=list(compute),
        chunks_per_worker=[num_chunks // len(compute)] * len(compute),
        num_chunks=num_chunks,
        total_task_time=total_task_time,
        extras=extras or {},
    )


class TestWastedTime:
    def test_post_hoc_formula(self):
        # idle = ((10-8) + (10-9))/2 = 1.5; overhead = 0.5*4/2 = 1.0
        value = average_wasted_time(10.0, [8.0, 9.0], 4, 0.5, OM.POST_HOC)
        assert value == pytest.approx(2.5)

    def test_in_model_variants_skip_addend(self):
        for model in (OM.PER_WORKER, OM.SERIALIZED_MASTER):
            value = average_wasted_time(10.0, [8.0, 9.0], 4, 0.5, model)
            assert value == pytest.approx(1.5)

    def test_empty_workers_rejected(self):
        with pytest.raises(ValueError):
            average_wasted_time(1.0, [], 1, 0.5, OM.POST_HOC)

    def test_per_worker_wasted_times(self):
        assert per_worker_wasted_times(10.0, [8.0, 9.0]) == [2.0, 1.0]

    def test_model_from_name(self):
        assert OverheadModel.from_name("post-hoc") is OM.POST_HOC
        assert OverheadModel.from_name("PER_WORKER") is OM.PER_WORKER
        with pytest.raises(ValueError):
            OverheadModel.from_name("bogus")

    def test_run_result_property_consistent(self):
        r = make_result()
        assert r.average_wasted_time == pytest.approx(2.5)
        assert r.wasted_times == [2.0, 1.0]


class TestTzenNi:
    def test_triple_sums_to_p(self):
        r = make_result(makespan=10.0, compute=(8.0, 9.0), num_chunks=2,
                        h=0.5, total_task_time=17.0)
        m = tzen_ni_metrics(r)
        assert m.total == pytest.approx(2.0)

    def test_speedup_definition(self):
        r = make_result(total_task_time=17.0, makespan=10.0)
        assert tzen_ni_metrics(r).speedup == pytest.approx(1.7)

    def test_overhead_includes_wait_times_when_present(self):
        r = make_result(extras={"wait_times": [0.5, 0.5]})
        with_comm = tzen_ni_metrics(r, comm_as_overhead=True)
        without = tzen_ni_metrics(r, comm_as_overhead=False)
        assert with_comm.scheduling_overhead > without.scheduling_overhead

    def test_overhead_clamped_to_available_waste(self):
        # Huge h would exceed total idle; theta must not exceed p - r.
        r = make_result(h=100.0, num_chunks=10)
        m = tzen_ni_metrics(r)
        assert m.load_imbalance >= 0.0
        assert m.total == pytest.approx(2.0)

    def test_zero_makespan_rejected(self):
        r = make_result(makespan=0.0)
        with pytest.raises(ValueError):
            tzen_ni_metrics(r)

    def test_ideal_speedup(self):
        assert ideal_speedup(64) == 64.0


class TestDiscrepancy:
    def test_signed_difference(self):
        assert discrepancy(11.0, 10.0) == pytest.approx(1.0)
        assert discrepancy(9.0, 10.0) == pytest.approx(-1.0)

    def test_relative_percentage(self):
        assert relative_discrepancy(11.0, 10.0) == pytest.approx(10.0)

    def test_relative_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            relative_discrepancy(1.0, 0.0)

    def test_table_construction(self):
        rows = discrepancy_table(
            {"A": [11.0, 22.0]},
            {"A": [10.0, 20.0], "B": [1.0, 2.0]},
            keys=(2, 8),
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.discrepancies == pytest.approx((1.0, 2.0))
        assert row.relative_discrepancies == pytest.approx((10.0, 10.0))
        assert row.max_abs_discrepancy == pytest.approx(2.0)
        assert row.max_abs_relative_discrepancy == pytest.approx(10.0)

    def test_table_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            discrepancy_table({"A": [1.0]}, {"A": [1.0, 2.0]}, keys=(2, 8))

    def test_max_with_exclusion(self):
        rows = discrepancy_table(
            {"FAC": [50.0, 11.0], "SS": [10.5, 21.0]},
            {"FAC": [10.0, 10.0], "SS": [10.0, 20.0]},
            keys=(2, 8),
        )
        # FAC at p=2 is 400% off; excluding it the worst is 10%.
        assert max_abs_relative_discrepancy(rows) == pytest.approx(400.0)
        assert max_abs_relative_discrepancy(
            rows, exclude=[("FAC", 2)]
        ) == pytest.approx(10.0)


class TestSummary:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.sem == pytest.approx(1.0 / 3**0.5)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        lo, hi = s.confidence_interval()
        assert lo < s.mean < hi

    def test_mean_excluding_above(self):
        mean, excluded = mean_excluding_above([1.0, 2.0, 500.0], 400.0)
        assert mean == pytest.approx(1.5)
        assert excluded == 1

    def test_mean_excluding_everything_rejected(self):
        with pytest.raises(ValueError):
            mean_excluding_above([500.0], 400.0)


class TestRunResultProperties:
    def test_speedup_and_efficiency(self):
        r = make_result(total_task_time=16.0, makespan=10.0)
        assert r.speedup == pytest.approx(1.6)
        assert r.efficiency == pytest.approx(0.8)

    def test_zero_makespan_speedup_is_ideal(self):
        r = make_result(makespan=0.0, compute=(0.0, 0.0),
                        total_task_time=0.0)
        assert r.speedup == 2.0
