"""Tests for FAC and FAC2 (factoring) and their batch machinery."""

from __future__ import annotations

import math

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create
from repro.core.techniques.factoring import factoring_x


class TestFactoringX:
    def test_zero_sigma_first_batch_is_one(self):
        assert factoring_x(1000, 4, 1.0, 0.0, first_batch=True) == 1.0

    def test_zero_sigma_later_batch_is_two(self):
        assert factoring_x(1000, 4, 1.0, 0.0, first_batch=False) == 2.0

    def test_first_batch_formula(self):
        r, p, mu, sigma = 1000, 4, 1.0, 1.0
        b = (p / (2 * math.sqrt(r))) * (sigma / mu)
        expected = 1 + b * b + b * math.sqrt(b * b + 2)
        assert factoring_x(r, p, mu, sigma, True) == pytest.approx(expected)

    def test_later_batch_formula(self):
        r, p, mu, sigma = 500, 4, 1.0, 1.0
        b = (p / (2 * math.sqrt(r))) * (sigma / mu)
        expected = 2 + b * b + b * math.sqrt(b * b + 4)
        assert factoring_x(r, p, mu, sigma, False) == pytest.approx(expected)

    def test_x_grows_with_variance(self):
        low = factoring_x(1000, 8, 1.0, 0.5, False)
        high = factoring_x(1000, 8, 1.0, 2.0, False)
        assert high > low

    def test_later_x_at_least_two(self):
        assert factoring_x(10, 64, 1.0, 3.0, False) >= 2.0


class TestFac2:
    def test_halving_batches(self):
        # n=1024, p=4: batches of chunk ceil(1024/8)=128, then 64, 32, ...
        s = create("fac2", SchedulingParams(n=1024, p=4))
        sizes = chunk_sizes(s)
        assert sizes[:4] == [128, 128, 128, 128]
        assert sizes[4:8] == [64, 64, 64, 64]
        assert sum(sizes) == 1024

    def test_batch_chunk_closed_form(self):
        s = create("fac2", SchedulingParams(n=4096, p=8))
        sizes = chunk_sizes(s)
        expected_first = math.ceil(4096 / (2 * 8))
        assert sizes[0] == expected_first

    def test_terminates_with_single_task_chunks(self):
        s = create("fac2", SchedulingParams(n=100, p=4))
        sizes = chunk_sizes(s)
        assert sizes[-1] >= 1
        assert sum(sizes) == 100

    def test_requires_only_p_r(self):
        # FAC2 must work without mu/sigma (Table II).
        s = create("fac2", SchedulingParams(n=100, p=4))
        assert sum(chunk_sizes(s)) == 100


class TestFac:
    def test_requires_mu_sigma(self):
        with pytest.raises(ValueError, match="requires parameters"):
            create("fac", SchedulingParams(n=100, p=4))

    def test_first_batch_larger_than_fac2(self):
        # With modest variance x_0 ~ 1, so FAC's first chunks exceed
        # FAC2's R/(2p).
        params = SchedulingParams(n=10_000, p=4, mu=1.0, sigma=0.5)
        fac = chunk_sizes(create("fac", params))
        fac2 = chunk_sizes(create("fac2", params))
        assert fac[0] > fac2[0]

    def test_zero_variance_degenerates_to_static_first_batch(self):
        params = SchedulingParams(n=1000, p=4, mu=1.0, sigma=0.0)
        sizes = chunk_sizes(create("fac", params))
        assert sizes[:4] == [250, 250, 250, 250]

    def test_high_variance_schedules_conservatively(self):
        cautious = chunk_sizes(
            create("fac", SchedulingParams(n=1000, p=4, mu=1.0, sigma=5.0))
        )
        confident = chunk_sizes(
            create("fac", SchedulingParams(n=1000, p=4, mu=1.0, sigma=0.1))
        )
        assert cautious[0] < confident[0]

    def test_batch_uniformity(self):
        # Within a batch all full chunks are equal.
        s = create("fac", SchedulingParams(n=4096, p=4, mu=1.0, sigma=1.0))
        sizes = chunk_sizes(s)
        assert sizes[0] == sizes[1] == sizes[2] == sizes[3]

    def test_conservation(self):
        for n in (1, 7, 100, 4097):
            s = create("fac", SchedulingParams(n=n, p=3, mu=1.0, sigma=1.0))
            assert sum(chunk_sizes(s)) == n
