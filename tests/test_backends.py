"""Tests for the simulation-backend registry and capability dispatch."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backends import (
    BackendResolutionError,
    FallbackEvent,
    ReplicationBlock,
    backend_names,
    capability_matrix,
    capability_matrix_markdown,
    drain_fallback_events,
    get_backend,
    iter_backends,
    peek_fallback_events,
    resolve_backend,
)
from repro.core.params import SchedulingParams
from repro.experiments.runner import RunTask, run_replicated
from repro.simgrid.platform import star_platform
from repro.workloads import ConstantWorkload, ExponentialWorkload

DOCS = Path(__file__).resolve().parents[1] / "docs" / "simulators.md"


def make_task(technique: str = "gss", simulator: str = "msg",
              **overrides) -> RunTask:
    kwargs = dict(
        technique=technique,
        params=SchedulingParams(n=256, p=4, h=0.5, mu=1.0, sigma=1.0),
        workload=ExponentialWorkload(1.0),
        simulator=simulator,
    )
    kwargs.update(overrides)
    return RunTask(**kwargs)


class TestRegistry:
    def test_all_four_simulators_registered(self):
        assert backend_names() == [
            "direct", "direct-batch", "msg", "msg-fast",
        ]

    def test_get_backend_case_insensitive(self):
        assert get_backend("MSG-Fast").name == "msg-fast"

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(KeyError) as err:
            get_backend("simgrid4")
        message = str(err.value)
        for name in backend_names():
            assert name in message

    def test_iter_backends_sorted(self):
        assert [b.name for b in iter_backends()] == backend_names()

    def test_fallbacks_point_at_registered_backends(self):
        for backend in iter_backends():
            if backend.fallback is not None:
                assert get_backend(backend.fallback).name != backend.name


class TestResolution:
    def setup_method(self):
        drain_fallback_events()

    def test_closed_form_stays_on_requested_backend(self):
        for name in backend_names():
            task = make_task("gss", simulator=name)
            assert resolve_backend(task).name == name
        assert peek_fallback_events() == []

    def test_direct_batch_serves_adaptive_natively(self):
        """The stepping kernel closed the adaptive capability gap:
        direct-batch serves the feedback-loop techniques itself, with
        no FallbackEvent."""
        for technique in ("awf", "awf-b", "af", "bold"):
            task = make_task(technique, simulator="direct-batch")
            assert resolve_backend(task).name == "direct-batch"
        assert peek_fallback_events() == []

    def test_msg_fast_adaptive_falls_back_to_msg(self):
        task = make_task("af", simulator="msg-fast")
        assert resolve_backend(task).name == "msg"
        (event,) = drain_fallback_events()
        assert (event.requested, event.chosen) == ("msg-fast", "msg")
        assert event.category == "capability"

    def test_worker_dependent_schedule_serves_natively(self):
        for technique in ("wf", "pls", "rnd"):
            task = make_task(technique, simulator="direct-batch")
            assert resolve_backend(task).name == "direct-batch"
        assert peek_fallback_events() == []

    def test_chunk_log_still_falls_back(self):
        """direct-batch records per-chunk logs only on the stepping
        path, and only on request — the capability stays off, so traced
        tasks still degrade to direct with a recorded event."""
        task = make_task("awf-b", simulator="direct-batch",
                         collect_chunk_log=True)
        assert resolve_backend(task).name == "direct"
        (event,) = drain_fallback_events()
        assert "chunk" in event.reason
        assert event.category == "capability"

    def test_no_fallback_raises_resolution_error(self):
        task = make_task("gss", simulator="direct",
                         platform=star_platform(4))
        with pytest.raises(BackendResolutionError) as err:
            resolve_backend(task)
        assert "direct" in str(err.value)

    def test_chain_exhaustion_names_every_backend_tried(self):
        task = make_task("bold", simulator="direct-batch",
                         platform=star_platform(4))
        with pytest.raises(BackendResolutionError) as err:
            resolve_backend(task)
        assert "direct-batch -> direct" in str(err.value)

    def test_fallback_log_deduplicates(self):
        task = make_task("bold", simulator="direct-batch",
                         collect_chunk_log=True)
        resolve_backend(task)
        resolve_backend(task)
        assert len(drain_fallback_events()) == 1


class TestExecution:
    def setup_method(self):
        drain_fallback_events()

    def test_run_replicated_records_fallback(self):
        task = make_task("bold", simulator="direct-batch",
                         collect_chunk_log=True)
        results = run_replicated(task, 3, campaign_seed=5, processes=1)
        assert len(results) == 3
        events = drain_fallback_events()
        assert [(e.requested, e.chosen) for e in events] == [
            ("direct-batch", "direct")
        ]

    def test_run_replicated_adaptive_stays_on_batch(self):
        task = make_task("awf-b", simulator="direct-batch")
        results = run_replicated(task, 3, campaign_seed=5, processes=1)
        assert len(results) == 3
        assert all(r.stats.backend == "direct-batch" for r in results)
        assert drain_fallback_events() == []

    def test_degraded_matches_direct_backend(self):
        """A degraded direct-batch task is bit-identical to asking for
        direct outright (same derived seeds: shared resolution path)."""
        import dataclasses

        batch = make_task("bold", simulator="direct-batch",
                          workload=ConstantWorkload(1.0))
        direct = dataclasses.replace(batch, simulator="direct")
        a = run_replicated(batch, 3, campaign_seed=11, processes=1)
        b = run_replicated(direct, 3, campaign_seed=11, processes=1)
        assert [r.makespan for r in a] == [r.makespan for r in b]

    def test_pooled_blocks_partition_runs(self):
        backend = get_backend("direct-batch")
        blocks = backend.replication_blocks(
            make_task("gss", simulator="direct-batch"), 130, 3
        )
        assert [b.runs for b in blocks] == [64, 64, 2]
        assert all(isinstance(b, ReplicationBlock) for b in blocks)

    def test_run_block_not_implemented_on_scalar_backends(self):
        block = ReplicationBlock(
            backend="direct", task=make_task(), runs=1, seed_entropy=(1,)
        )
        with pytest.raises(NotImplementedError):
            block.execute()


class TestDerivedEntropy:
    def test_platform_enters_the_seed_key(self):
        """Two un-seeded tasks differing only in platform must derive
        different seeds (regression: platform was omitted)."""
        base = make_task("gss", simulator="msg")
        with_platform = make_task(
            "gss", simulator="msg", platform=star_platform(4)
        )
        assert base.derived_entropy() != with_platform.derived_entropy()

    def test_platform_key_is_content_based(self):
        a = make_task("gss", platform=star_platform(4))
        b = make_task("gss", platform=star_platform(4))
        assert a.derived_entropy() == b.derived_entropy()

    def test_msg_fast_shares_msg_entropy_namespace(self):
        assert get_backend("msg-fast").entropy_namespace == "msg"
        fast = make_task("gss", simulator="msg-fast")
        msg = make_task("gss", simulator="msg")
        assert fast.derived_entropy() == msg.derived_entropy()
        assert (
            make_task("gss", simulator="direct").derived_entropy()
            != msg.derived_entropy()
        )


class TestCapabilityMatrix:
    def test_matrix_covers_every_backend(self):
        matrix = dict(capability_matrix())
        assert sorted(matrix) == backend_names()
        assert matrix["msg"]["adaptive_techniques"]
        assert matrix["direct-batch"]["adaptive_techniques"]
        assert matrix["direct-batch"]["nondeterministic_schedules"]
        assert not matrix["direct-batch"]["chunk_log"]

    def test_docs_capability_matrix_in_sync(self):
        """docs/simulators.md embeds the generated matrix verbatim."""
        text = DOCS.read_text()
        begin = "<!-- capability-matrix:begin -->"
        end = "<!-- capability-matrix:end -->"
        embedded = text.split(begin)[1].split(end)[0].strip()
        assert embedded == capability_matrix_markdown().strip()


class TestFallbackEvent:
    def test_round_trips_to_json(self):
        event = FallbackEvent(
            task_key="bold(n=1, p=2)", requested="a", chosen="b", reason="r"
        )
        assert event.to_json() == {
            "task": "bold(n=1, p=2)",
            "requested": "a",
            "chosen": "b",
            "reason": "r",
            "category": "capability",
        }

    def test_category_distinguishes_non_capability_degradations(self):
        event = FallbackEvent(
            task_key="replicate_msg(n=1, p=2)", requested="process-pool",
            chosen="serial", reason="does not pickle", category="pickle",
        )
        assert event.to_json()["category"] == "pickle"
