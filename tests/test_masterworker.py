"""Tests for the MSG master-worker DLS application."""

from __future__ import annotations

import pytest

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.metrics.wasted_time import OverheadModel
from repro.simgrid import (
    MasterWorkerConfig,
    MasterWorkerSimulation,
    fast_network_platform,
    replicate_msg,
    star_platform,
)
from repro.workloads import ConstantWorkload, ExponentialWorkload

from conftest import BOLD_EIGHT


def make_sim(n=100, p=4, h=0.5, workload=None, platform=None,
             config=None) -> MasterWorkerSimulation:
    params = SchedulingParams(n=n, p=p, h=h, mu=1.0, sigma=1.0)
    return MasterWorkerSimulation(
        params, workload or ConstantWorkload(1.0), platform=platform,
        config=config,
    )


class TestProtocol:
    def test_every_technique_completes(self):
        for name in BOLD_EIGHT + ("css", "wf", "tap", "awf-b", "af"):
            result = make_sim(n=64).run(make_factory(name), seed=0)
            assert result.total_task_time == pytest.approx(64.0), name
            assert sum(result.chunks_per_worker) == result.num_chunks

    def test_free_network_constant_workload_balance(self):
        result = make_sim().run(make_factory("stat"))
        assert result.makespan == pytest.approx(25.0, rel=1e-6)
        assert result.compute_times == pytest.approx([25.0] * 4)

    def test_extras_recorded(self):
        result = make_sim().run(make_factory("gss"))
        extras = result.extras
        # One request per chunk plus one final request per worker.
        assert extras["total_requests"] == result.num_chunks + 4
        # Master sees every request.
        assert extras["master_messages"] == extras["total_requests"]
        assert len(extras["wait_times"]) == 4

    def test_deterministic_given_seed(self):
        sim = make_sim(workload=ExponentialWorkload(1.0))
        a = sim.run(make_factory("fac2"), seed=5)
        b = sim.run(make_factory("fac2"), seed=5)
        assert a.makespan == b.makespan

    def test_network_latency_slows_execution(self):
        fast = make_sim(platform=fast_network_platform(4))
        slow = make_sim(
            platform=star_platform(4, bandwidth=1e6, latency=0.05)
        )
        t_fast = fast.run(make_factory("ss")).makespan
        t_slow = slow.run(make_factory("ss")).makespan
        assert t_slow > t_fast

    def test_fresh_scheduler_required(self):
        from repro.core.registry import create

        sim = make_sim()
        scheduler = create("gss", sim.params)
        sim.run(scheduler)
        with pytest.raises(ValueError, match="fresh"):
            sim.run(scheduler)

    def test_start_times_respected(self):
        config = MasterWorkerConfig(start_times=[0.0, 50.0, 0.0, 0.0])
        result = make_sim(n=20, h=0.0, config=config).run(make_factory("gss"))
        # Worker 1 joins at t=50, after all 20 seconds of work is gone.
        assert result.chunks_per_worker[1] == 0

    def test_start_time_validation(self):
        config = MasterWorkerConfig(start_times=[0.0])
        with pytest.raises(ValueError, match="start times"):
            make_sim(config=config)

    def test_adaptive_feedback_received(self):
        """AWF-C sees real chunk times piggy-backed on requests."""
        from repro.core.registry import create

        params = SchedulingParams(n=512, p=2, h=0.0)
        platform = star_platform(
            2, worker_speed=[1.0, 5.0], bandwidth=1e12, latency=1e-9
        )
        sim = MasterWorkerSimulation(params, ConstantWorkload(1.0), platform)
        scheduler = create("awf-c", params)
        sim.run(scheduler)
        w = scheduler.current_weights()
        assert w[1] > w[0]  # learned that worker 1 is faster


class TestOverheadModels:
    def test_post_hoc_accounting(self):
        result = make_sim(n=100, p=4).run(make_factory("ss"))
        assert result.average_wasted_time == pytest.approx(12.5, rel=1e-3)

    def test_per_worker_inflates_makespan(self):
        config = MasterWorkerConfig(overhead_model=OverheadModel.PER_WORKER)
        result = make_sim(config=config).run(make_factory("ss"))
        assert result.makespan == pytest.approx(37.5, rel=1e-6)

    def test_serialized_master_respects_h(self):
        config = MasterWorkerConfig(
            overhead_model=OverheadModel.SERIALIZED_MASTER
        )
        result = make_sim(n=4, p=4, h=2.0, config=config).run(
            make_factory("ss")
        )
        assert result.makespan == pytest.approx(9.0, rel=1e-6)
        assert result.extras["master_busy_time"] == pytest.approx(8.0)


class TestHeterogeneousPlatform:
    def test_faster_worker_does_more(self):
        params = SchedulingParams(n=200, p=2, h=0.0)
        platform = star_platform(
            2, worker_speed=[1.0, 3.0], bandwidth=1e12, latency=1e-9
        )
        sim = MasterWorkerSimulation(params, ConstantWorkload(1.0), platform)
        result = sim.run(make_factory("ss"))
        slow, fast = result.chunks_per_worker
        assert fast > 2 * slow

    def test_missing_worker_host_rejected(self):
        params = SchedulingParams(n=10, p=3)
        platform = star_platform(2)  # one worker short
        with pytest.raises(KeyError, match="worker-2"):
            MasterWorkerSimulation(params, ConstantWorkload(1.0), platform)


class TestChunkLogAndReplication:
    def test_chunk_log_recorded(self):
        config = MasterWorkerConfig(record_chunks=True)
        result = make_sim(config=config).run(make_factory("gss"))
        assert len(result.chunk_log) == result.num_chunks
        assert sum(c.record.size for c in result.chunk_log) == 100

    def test_replicate_msg(self):
        sim = make_sim(workload=ExponentialWorkload(1.0))
        results = replicate_msg(sim, make_factory("fac2"), runs=4, seed=1)
        assert len(results) == 4
        makespans = {r.makespan for r in results}
        assert len(makespans) == 4  # independent draws

    def test_replicate_msg_validates_runs(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            replicate_msg(sim, make_factory("ss"), runs=0)
