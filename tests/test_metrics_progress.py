"""Tests for the metrics registry and live progress (repro.obs v2)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.params import SchedulingParams
from repro.experiments.runner import RunTask, run_campaign, run_replicated
from repro.obs import metrics_to, progress_to
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    clear_registry,
    record_results,
    set_registry,
)
from repro.obs.progress import (
    ProgressEvent,
    ProgressTracker,
    campaign_tracker,
    stream_renderer,
)
from repro.workloads import ConstantWorkload, ExponentialWorkload


def _merge_remote(hist: Histogram) -> Histogram:
    """Round-trip helper executed in a pool worker (module-level so it
    pickles)."""
    hist.observe(5.0)
    return hist


class TestHistogram:
    def test_observe_tracks_exact_moments(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0, 100.0])
        assert hist.count == 4
        assert hist.sum == 106.0
        assert hist.mean == 26.5
        assert hist.min == 1.0
        assert hist.max == 100.0

    def test_power_of_two_bucket_bounds(self):
        hist = Histogram("h")
        # an exact power of two belongs to its own bucket (le = value),
        # one epsilon above it spills into the next
        hist.observe(8.0)
        hist.observe(8.000001)
        bounds = dict(hist.bucket_bounds())
        assert bounds[8.0] == 1
        assert bounds[16.0] == 1

    def test_zero_and_negative_share_the_zero_bucket(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(-1.0)
        assert dict(hist.bucket_bounds()) == {0.0: 2}

    def test_merge_accumulates(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe_many([1.0, 2.0])
        b.observe_many([4.0, 8.0])
        a.merge(b)
        assert a.count == 4
        assert a.sum == 15.0
        assert a.max == 8.0

    def test_quantile_is_bucket_resolution(self):
        hist = Histogram("h")
        hist.observe_many([1.0] * 90 + [1000.0] * 10)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 1000.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_pickles_through_a_process_pool(self):
        import multiprocessing

        hist = Histogram("pool")
        hist.observe_many([1.0, 2.0])
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            back = pool.apply(_merge_remote, (hist,))
        assert back.count == 3
        assert back.sum == 8.0
        assert pickle.loads(pickle.dumps(back)) == back

    def test_format_ascii(self):
        hist = Histogram("h")
        assert hist.format_ascii() == "(no observations)"
        hist.observe_many([1.0, 1.5, 100.0])
        text = hist.format_ascii(width=10)
        assert "#" in text and "<=" in text


class TestRegistry:
    def test_get_or_create_by_name(self):
        reg = MetricsRegistry()
        assert reg.histogram("a") is reg.histogram("a")
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c").incr(-1)

    def test_merge_joins_on_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        b.counter("c").incr(5)
        b.gauge("g").set(3.0)
        a.merge(b)
        assert a.histogram("h").count == 2
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 3.0

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "runs").incr(3)
        reg.gauge("rate", "ev/s").set(100.0)
        hist = reg.histogram("sizes", "chunk sizes")
        hist.observe_many([1.0, 2.0, 100.0])
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_runs_total counter" in lines
        assert "repro_runs_total 3" in lines
        assert "# TYPE repro_rate gauge" in lines
        assert "# TYPE repro_sizes histogram" in lines
        # bucket series must be cumulative and end with +Inf == count
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in lines if line.startswith("repro_sizes_bucket")
        ]
        assert buckets == sorted(buckets)
        assert 'repro_sizes_bucket{le="+Inf"} 3' in lines
        assert "repro_sizes_count 3" in lines
        # every sample value parses as a float
        for line in lines:
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_save_picks_format_from_extension(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("runs_total").incr(1)
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        reg.save(prom)
        reg.save(js)
        assert prom.read_text().startswith("# TYPE repro_runs_total")
        assert json.loads(js.read_text())["counters"]["runs_total"][
            "value"] == 1

    def test_active_registry_lifecycle(self):
        assert active_registry() is None
        reg = set_registry()
        assert active_registry() is reg
        clear_registry()
        assert active_registry() is None


class TestCampaignMetrics:
    def _tasks(self, count=3):
        return [
            RunTask(
                technique="fac2",
                params=SchedulingParams(n=128, p=4),
                workload=ExponentialWorkload(1.0),
                simulator="direct",
                seed_entropy=(i,),
            )
            for i in range(count)
        ]

    def test_run_campaign_records_into_active_registry(self, tmp_path):
        path = tmp_path / "m.json"
        with metrics_to(path) as reg:
            run_campaign(self._tasks(), processes=1)
        doc = json.loads(path.read_text())
        assert doc["counters"]["runs_total"]["value"] == 3
        assert doc["counters"]["sim_events_total"]["value"] > 0
        assert doc["histograms"]["run_makespan_seconds"]["count"] == 3
        # p=4 workers per run -> 12 idle observations
        assert doc["histograms"]["worker_idle_seconds"]["count"] == 12
        assert reg.gauge("sim_events_per_second").value > 0

    def test_no_registry_no_recording(self):
        clear_registry()
        run_campaign(self._tasks(1), processes=1)
        assert active_registry() is None

    def test_record_results_chunk_sizes_with_and_without_log(self):
        reg = MetricsRegistry()
        traced = RunTask(
            technique="gss",
            params=SchedulingParams(n=64, p=2),
            workload=ConstantWorkload(1.0),
            simulator="direct",
            seed_entropy=(0,),
            collect_chunk_log=True,
        ).execute()
        record_results(reg, [traced])
        assert reg.histogram("chunk_size_tasks").count == traced.num_chunks
        reg2 = MetricsRegistry()
        untraced = RunTask(
            technique="gss",
            params=SchedulingParams(n=64, p=2),
            workload=ConstantWorkload(1.0),
            simulator="direct",
            seed_entropy=(0,),
        ).execute()
        record_results(reg2, [untraced])
        assert reg2.histogram("chunk_size_tasks").count == 1

    def test_fallbacks_counted(self):
        reg = MetricsRegistry()
        record_results(reg, [], new_fallbacks=2)
        assert reg.counter("fallbacks_total").value == 2


class TestProgress:
    def test_event_describe_and_json(self):
        event = ProgressEvent(
            label="campaign", done=5, total=10, elapsed_s=2.0,
            events=1000, events_per_second=500.0, eta_s=2.0, fallbacks=1,
        )
        assert event.fraction == 0.5
        text = event.describe()
        assert "5/10" in text and "50%" in text and "1 fallback(s)" in text
        doc = event.to_json()
        assert doc["kind"] == "progress"
        assert doc["events_per_s"] == 500.0

    def test_tracker_throttles_but_always_finishes(self):
        seen: list[ProgressEvent] = []
        tracker = ProgressTracker(
            total=100, callback=seen.append, min_interval=3600.0
        )
        for _ in range(50):
            tracker.advance()
        assert seen == []  # throttled
        tracker.finish()
        assert len(seen) == 1
        assert seen[0].done == 50

    def test_campaign_tracker_none_when_no_sink(self):
        assert campaign_tracker(total=5, label="x") is None

    def test_run_campaign_emits_heartbeats(self):
        seen: list[ProgressEvent] = []
        tasks = [
            RunTask(
                technique="fac2",
                params=SchedulingParams(n=64, p=2),
                workload=ConstantWorkload(1.0),
                simulator="direct",
                seed_entropy=(i,),
            )
            for i in range(3)
        ]
        with progress_to(seen.append, min_interval=0.0):
            run_campaign(tasks, processes=1)
        assert seen
        assert seen[-1].done == seen[-1].total == 3
        assert seen[-1].events > 0
        assert [e.done for e in seen] == sorted(e.done for e in seen)

    def test_run_replicated_emits_heartbeats(self):
        seen: list[ProgressEvent] = []
        task = RunTask(
            technique="fac2",
            params=SchedulingParams(n=64, p=2),
            workload=ConstantWorkload(1.0),
            simulator="direct",
        )
        with progress_to(seen.append, min_interval=0.0):
            run_replicated(task, runs=4, processes=1, campaign_seed=1)
        assert seen
        assert seen[-1].done == seen[-1].total == 4

    def test_journal_records_progress(self, tmp_path):
        from repro.obs import journal_to

        path = tmp_path / "j.jsonl"
        task = RunTask(
            technique="gss",
            params=SchedulingParams(n=64, p=2),
            workload=ConstantWorkload(1.0),
            simulator="direct",
        )
        with journal_to(path):
            run_replicated(task, runs=2, processes=1, campaign_seed=0)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        progress = [r for r in records if r["kind"] == "progress"]
        assert progress
        assert progress[-1]["done"] == 2
        assert all("t_s" in r for r in records)

    def test_stream_renderer_non_tty_writes_lines(self):
        import io

        out = io.StringIO()  # not a TTY
        render = stream_renderer(out)
        render(
            ProgressEvent(
                label="x", done=1, total=2, elapsed_s=1.0, events=10,
                events_per_second=10.0, eta_s=1.0, fallbacks=0,
            )
        )
        text = out.getvalue()
        assert text.endswith("\n")
        assert "1/2" in text
