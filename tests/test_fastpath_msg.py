"""Bit-identity of the compiled MSG fast path to the event-driven path.

The fast path is only allowed to exist because it is *exactly* the
event-driven simulator, float for float — no tolerance-based comparisons
here, everything is ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SchedulingParams
from repro.core.registry import get_technique
from repro.metrics.wasted_time import OverheadModel
from repro.simgrid.fastpath import (
    FastMasterWorkerSimulation,
    fastpath_ineligibility,
    replicate_msg_fast,
)
from repro.simgrid.masterworker import (
    MSG_POOL_THRESHOLD,
    MasterWorkerConfig,
    MasterWorkerSimulation,
    replicate_msg,
)
from repro.simgrid.platform import star_platform
from repro.workloads import ConstantWorkload, ExponentialWorkload

#: the twelve techniques with a precomputable (closed-form) schedule
CLOSED_FORM = (
    "css", "fac", "fac2", "fiss", "fsc", "gss",
    "ss", "stat", "tap", "tfss", "tss", "viss",
)

PARAMS = SchedulingParams(n=1024, p=4, h=0.5, mu=1.0, sigma=1.0)


def factory_for(name):
    return lambda params: get_technique(name)(params)


def assert_bit_identical(slow, fast):
    assert slow.technique == fast.technique
    assert slow.makespan == fast.makespan
    assert slow.compute_times == fast.compute_times
    assert slow.chunks_per_worker == fast.chunks_per_worker
    assert slow.num_chunks == fast.num_chunks
    assert slow.total_task_time == fast.total_task_time
    assert slow.extras == fast.extras
    assert len(slow.chunk_log) == len(fast.chunk_log)
    for a, b in zip(slow.chunk_log, fast.chunk_log):
        assert (a.record.index, a.record.worker,
                a.record.start, a.record.size) == (
            b.record.index, b.record.worker, b.record.start, b.record.size)
        assert a.start_time == b.start_time
        assert a.elapsed == b.elapsed


@pytest.mark.parametrize("technique", CLOSED_FORM)
@pytest.mark.parametrize("workload_cls", [ConstantWorkload, ExponentialWorkload])
def test_bold_configuration_bit_identical(technique, workload_cls):
    """BOLD setup (free network, POST_HOC): every closed-form technique."""
    workload = workload_cls(1.0)
    cfg = MasterWorkerConfig(record_chunks=True)
    slow = MasterWorkerSimulation(PARAMS, workload, config=cfg)
    fast = FastMasterWorkerSimulation(PARAMS, workload, config=cfg)
    result_slow = slow.run(factory_for(technique), seed=42)
    result_fast = fast.run(factory_for(technique), seed=42)
    assert fast.last_run_fast
    assert_bit_identical(result_slow, result_fast)


@pytest.mark.parametrize("model", list(OverheadModel))
def test_overhead_models_bit_identical(model):
    workload = ExponentialWorkload(1.0)
    cfg = MasterWorkerConfig(overhead_model=model)
    slow = MasterWorkerSimulation(PARAMS, workload, config=cfg)
    fast = FastMasterWorkerSimulation(PARAMS, workload, config=cfg)
    for technique in ("ss", "gss", "fac2"):
        assert_bit_identical(
            slow.run(factory_for(technique), seed=7),
            fast.run(factory_for(technique), seed=7),
        )
        assert fast.last_run_fast


def test_heterogeneous_platform_and_staggered_starts_bit_identical():
    workload = ExponentialWorkload(1.0)
    platform = star_platform(
        4, worker_speed=[1.0, 2.0, 0.5, 3.0], bandwidth=1e6, latency=1e-4
    )
    cfg = MasterWorkerConfig(start_times=[0.0, 3.0, 0.0, 7.5])
    slow = MasterWorkerSimulation(PARAMS, workload, platform=platform,
                                  config=cfg)
    fast = FastMasterWorkerSimulation(PARAMS, workload, platform=platform,
                                      config=cfg)
    assert_bit_identical(
        slow.run(factory_for("fac"), seed=11),
        fast.run(factory_for("fac"), seed=11),
    )
    assert fast.last_run_fast


@pytest.mark.parametrize("technique", ["awf", "awf-c", "af", "bold", "wf"])
def test_fallback_techniques_still_bit_identical(technique):
    """Adaptive / nondeterministic techniques fall back — same results."""
    workload = ExponentialWorkload(1.0)
    slow = MasterWorkerSimulation(PARAMS, workload)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    assert_bit_identical(
        slow.run(factory_for(technique), seed=3),
        fast.run(factory_for(technique), seed=3),
    )
    assert not fast.last_run_fast


def test_contention_triggers_fallback():
    workload = ExponentialWorkload(1.0)
    cfg = MasterWorkerConfig(contention=True)
    fast = FastMasterWorkerSimulation(PARAMS, workload, config=cfg)
    slow = MasterWorkerSimulation(PARAMS, workload, config=cfg)
    assert_bit_identical(
        slow.run(factory_for("ss"), seed=3),
        fast.run(factory_for("ss"), seed=3),
    )
    assert not fast.last_run_fast


def test_max_events_triggers_fallback():
    workload = ConstantWorkload(1.0)
    cfg = MasterWorkerConfig(max_events=10_000_000)
    fast = FastMasterWorkerSimulation(PARAMS, workload, config=cfg)
    fast.run(factory_for("ss"), seed=3)
    assert not fast.last_run_fast


def test_ineligibility_reasons():
    cfg = MasterWorkerConfig()
    ss = get_technique("ss")(PARAMS)
    assert fastpath_ineligibility(ss, cfg) is None
    assert "contention" in fastpath_ineligibility(
        ss, MasterWorkerConfig(contention=True))
    assert "max_events" in fastpath_ineligibility(
        ss, MasterWorkerConfig(max_events=100))
    assert "adaptive" in fastpath_ineligibility(get_technique("awf")(PARAMS), cfg)
    assert fastpath_ineligibility(get_technique("bold")(PARAMS), cfg)


def test_scheduler_reuse_rejected_on_fast_path():
    workload = ConstantWorkload(1.0)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    scheduler = get_technique("ss")(PARAMS)
    fast.run(scheduler, seed=1)
    with pytest.raises(ValueError, match="already been used"):
        fast.run(scheduler, seed=1)


def test_run_many_matches_individual_runs():
    workload = ExponentialWorkload(1.0)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    seeds = np.random.SeedSequence(21).spawn(4)
    batch = fast.run_many(factory_for("fac2"), seeds)
    for seed, result in zip(seeds, batch):
        assert_bit_identical(fast.run(factory_for("fac2"), seed), result)


def test_run_many_fallback_matches_event_path():
    workload = ExponentialWorkload(1.0)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    slow = MasterWorkerSimulation(PARAMS, workload)
    seeds = np.random.SeedSequence(22).spawn(3)
    batch = fast.run_many(factory_for("awf"), seeds)
    assert not fast.last_run_fast
    for seed, result in zip(seeds, batch):
        assert_bit_identical(slow.run(factory_for("awf"), seed), result)


def test_replicate_msg_fast_matches_replicate_msg():
    workload = ExponentialWorkload(1.0)
    slow = MasterWorkerSimulation(PARAMS, workload)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    runs = MSG_POOL_THRESHOLD - 1  # keep both sides serial and in-process
    a = replicate_msg(slow, factory_for("gss"), runs, seed=123)
    b = replicate_msg_fast(fast, factory_for("gss"), runs, seed=123)
    for x, y in zip(a, b):
        assert_bit_identical(x, y)


def test_both_paths_carry_run_stats():
    """msg and msg-fast results each carry a RunStats block; the event
    path reports kernel counters, the fast path its structural
    analogues — results stay equal despite different stats."""
    workload = ExponentialWorkload(1.0)
    slow = MasterWorkerSimulation(PARAMS, workload)
    fast = FastMasterWorkerSimulation(PARAMS, workload)
    result_slow = slow.run(factory_for("gss"), seed=42)
    result_fast = fast.run(factory_for("gss"), seed=42)
    assert result_slow.stats is not None
    assert result_fast.stats is not None
    assert not result_slow.stats.fast_path
    assert result_fast.stats.fast_path
    assert result_slow.stats.events > 0
    assert result_fast.stats.events > 0
    assert_bit_identical(result_slow, result_fast)
    # Dataclass equality ignores the (differing) stats blocks entirely.
    assert result_slow.stats.events != result_fast.stats.events
    assert result_slow == result_fast
