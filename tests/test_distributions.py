"""Tests for the workload distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    BimodalWorkload,
    ConstantWorkload,
    ExponentialWorkload,
    GammaWorkload,
    LinearWorkload,
    NormalWorkload,
    PerTaskSampling,
    TraceWorkload,
    UniformWorkload,
    decreasing_workload,
    increasing_workload,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstant:
    def test_mean_std(self):
        w = ConstantWorkload(0.5)
        assert w.mean == 0.5
        assert w.std == 0.0

    def test_sample_values(self):
        w = ConstantWorkload(2.0)
        assert (w.sample(0, 10, rng()) == 2.0).all()

    def test_chunk_time_exact(self):
        w = ConstantWorkload(0.25)
        assert w.chunk_time(0, 8, rng()) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantWorkload(0.0)

    def test_serial_time(self):
        assert ConstantWorkload(2.0).serial_time(10) == 20.0


class TestExponential:
    def test_moments(self):
        w = ExponentialWorkload(3.0)
        assert w.mean == 3.0
        assert w.std == 3.0

    def test_sample_statistics(self):
        w = ExponentialWorkload(1.0)
        xs = w.sample(0, 100_000, rng(1))
        assert xs.mean() == pytest.approx(1.0, rel=0.02)
        assert xs.std() == pytest.approx(1.0, rel=0.03)

    def test_chunk_time_gamma_matches_sum_distribution(self):
        """Gamma(k) chunk draws and per-task sums agree statistically."""
        w = ExponentialWorkload(1.0)
        r = rng(2)
        k, m = 50, 4000
        gamma_draws = np.array([w.chunk_time(0, k, r) for _ in range(m)])
        sums = w.sample(0, k * m, rng(3)).reshape(m, k).sum(axis=1)
        assert gamma_draws.mean() == pytest.approx(sums.mean(), rel=0.02)
        assert gamma_draws.std() == pytest.approx(sums.std(), rel=0.1)

    def test_chunk_time_zero_size(self):
        assert ExponentialWorkload(1.0).chunk_time(0, 0, rng()) == 0.0

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialWorkload(0.0)


class TestUniform:
    def test_moments(self):
        w = UniformWorkload(1.0, 3.0)
        assert w.mean == 2.0
        assert w.std == pytest.approx(2.0 / np.sqrt(12))

    def test_range(self):
        w = UniformWorkload(1.0, 3.0)
        xs = w.sample(0, 1000, rng())
        assert ((xs >= 1.0) & (xs <= 3.0)).all()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformWorkload(3.0, 1.0)


class TestNormal:
    def test_floor_applied(self):
        w = NormalWorkload(0.1, 5.0, floor=0.0)
        xs = w.sample(0, 1000, rng())
        assert (xs >= 0.0).all()

    def test_moments_declared(self):
        w = NormalWorkload(2.0, 0.5)
        assert w.mean == 2.0
        assert w.std == 0.5


class TestGamma:
    def test_moments(self):
        w = GammaWorkload(4.0, 0.5)
        assert w.mean == 2.0
        assert w.std == 1.0

    def test_chunk_time_closed_form_statistics(self):
        w = GammaWorkload(2.0, 0.5)
        r = rng(5)
        draws = np.array([w.chunk_time(0, 10, r) for _ in range(4000)])
        assert draws.mean() == pytest.approx(10 * w.mean, rel=0.03)


class TestBimodal:
    def test_values_from_modes(self):
        w = BimodalWorkload(1.0, 10.0, p_fast=0.7)
        xs = w.sample(0, 1000, rng())
        assert set(np.unique(xs)) <= {1.0, 10.0}

    def test_mean(self):
        w = BimodalWorkload(1.0, 10.0, p_fast=0.5)
        assert w.mean == 5.5

    def test_std_formula(self):
        w = BimodalWorkload(2.0, 4.0, p_fast=0.5)
        assert w.std == pytest.approx(1.0)

    def test_rejects_degenerate_probability(self):
        with pytest.raises(ValueError):
            BimodalWorkload(1.0, 2.0, p_fast=1.0)


class TestLinear:
    def test_decreasing(self):
        w = decreasing_workload(10, first=10.0, last=1.0)
        xs = w.sample(0, 10, rng())
        assert xs[0] == 10.0
        assert xs[-1] == 1.0
        assert (np.diff(xs) < 0).all()

    def test_increasing(self):
        w = increasing_workload(10, first=1.0, last=10.0)
        xs = w.sample(0, 10, rng())
        assert (np.diff(xs) > 0).all()

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            decreasing_workload(10, first=1.0, last=10.0)
        with pytest.raises(ValueError):
            increasing_workload(10, first=10.0, last=1.0)

    def test_chunk_time_is_exact_sum(self):
        w = LinearWorkload(100, 5.0, 1.0)
        r = rng()
        assert w.chunk_time(10, 20, r) == pytest.approx(
            w.sample(10, 20, r).sum()
        )

    def test_position_dependent_flag(self):
        assert LinearWorkload(10, 2.0, 1.0).position_dependent

    def test_single_task(self):
        w = LinearWorkload(1, 3.0, 3.0)
        assert w.sample(0, 1, rng())[0] == 3.0


class TestTraceWorkload:
    def test_replays_exact_values(self):
        times = np.array([0.1, 0.2, 0.3, 0.4])
        w = TraceWorkload(times)
        assert w.sample(1, 2, rng()).tolist() == [0.2, 0.3]

    def test_out_of_range_rejected(self):
        w = TraceWorkload(np.ones(4))
        with pytest.raises(IndexError):
            w.sample(2, 3, rng())

    def test_moments_from_data(self):
        w = TraceWorkload(np.array([1.0, 3.0]))
        assert w.mean == 2.0
        assert w.std == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceWorkload(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceWorkload(np.array([1.0, -0.1]))


class TestPerTaskSampling:
    def test_delegates_moments(self):
        w = PerTaskSampling(ExponentialWorkload(2.0))
        assert w.mean == 2.0
        assert w.std == 2.0

    def test_chunk_time_uses_per_task_path(self):
        # With the same generator state, the per-task path consumes k
        # variates while the wrapped gamma path consumes one; the values
        # must still agree in expectation.
        inner = ExponentialWorkload(1.0)
        w = PerTaskSampling(inner)
        draws = [w.chunk_time(0, 20, rng(i)) for i in range(2000)]
        assert np.mean(draws) == pytest.approx(20.0, rel=0.05)


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_all_samples_nonnegative(size, seed):
    workloads = [
        ConstantWorkload(1.0),
        ExponentialWorkload(1.0),
        UniformWorkload(0.5, 2.0),
        NormalWorkload(1.0, 0.5),
        GammaWorkload(2.0, 0.5),
        BimodalWorkload(0.5, 2.0),
        LinearWorkload(500, 2.0, 1.0),
    ]
    r = rng(seed)
    for w in workloads:
        xs = w.sample(0, size, r)
        assert xs.shape == (size,)
        assert (xs >= 0).all(), w


@settings(max_examples=20, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=100),
    size=st.integers(min_value=0, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_chunk_time_nonnegative(start, size, seed):
    w = ExponentialWorkload(1.0)
    assert w.chunk_time(start, size, rng(seed)) >= 0.0
