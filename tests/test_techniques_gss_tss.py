"""Tests for GSS (guided self scheduling) and TSS (trapezoid)."""

from __future__ import annotations

import math

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


class TestGuidedSelfScheduling:
    def test_first_chunk_is_ceil_n_over_p(self):
        s = create("gss", SchedulingParams(n=1000, p=4))
        assert s.next_chunk(0) == 250

    def test_guided_decrease(self):
        s = create("gss", SchedulingParams(n=1000, p=4))
        sizes = chunk_sizes(s)
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == 1000

    def test_exact_sequence_small(self):
        # n=20, p=4: ceil(20/4)=5, ceil(15/4)=4, ceil(11/4)=3, ceil(8/4)=2,
        # ceil(6/4)=2, then 1, 1, 1, 1.
        s = create("gss", SchedulingParams(n=20, p=4))
        assert chunk_sizes(s) == [5, 4, 3, 2, 2, 1, 1, 1, 1]

    def test_min_chunk_floors_sizes(self):
        s = create("gss", SchedulingParams(n=1000, p=4), min_chunk=80)
        sizes = chunk_sizes(s)
        # Every chunk except the final clipped one respects the floor.
        assert all(x >= 80 for x in sizes[:-1])
        assert sum(sizes) == 1000

    def test_min_chunk_from_params(self):
        s = create("gss", SchedulingParams(n=1000, p=4, min_chunk=5))
        assert s.min_chunk_size == 5

    def test_invalid_min_chunk(self):
        with pytest.raises(ValueError, match=">= 1"):
            create("gss", SchedulingParams(n=10, p=2), min_chunk=0)

    def test_label_with_k(self):
        s = create("gss", SchedulingParams(n=10, p=2), min_chunk=80)
        assert s.label_with_k == "GSS(80)"

    def test_gss1_schedules_tail_finely(self):
        s = create("gss", SchedulingParams(n=100, p=10))
        sizes = chunk_sizes(s)
        assert sizes[-1] == 1


class TestTrapezoidSelfScheduling:
    def test_defaults_f_and_l(self):
        s = create("tss", SchedulingParams(n=1000, p=4))
        assert s.first == math.ceil(1000 / 8)  # n / (2p)
        assert s.last == 1

    def test_planned_chunk_count(self):
        s = create("tss", SchedulingParams(n=1000, p=4))
        # N = ceil(2n / (f + l)) = ceil(2000 / 126) = 16
        assert s.num_planned_chunks == 16

    def test_linear_decrease(self):
        s = create("tss", SchedulingParams(n=1000, p=4))
        sizes = chunk_sizes(s)
        assert sum(sizes) == 1000
        deltas = [a - b for a, b in zip(sizes, sizes[1:-1])]
        # Differences are near-constant (rounding wobbles by <= 1).
        assert all(abs(d - deltas[0]) <= 1 for d in deltas)

    def test_explicit_f_l(self):
        s = create("tss", SchedulingParams(n=100, p=2), first_chunk=20,
                   last_chunk=10)
        sizes = chunk_sizes(s)
        assert sizes[0] == 20
        assert sum(sizes) == 100

    def test_f_l_from_params(self):
        s = create(
            "tss",
            SchedulingParams(n=100, p=2, first_chunk=25, last_chunk=5),
        )
        assert s.first == 25
        assert s.last == 5

    def test_l_greater_than_f_rejected(self):
        with pytest.raises(ValueError, match="l <= f"):
            create("tss", SchedulingParams(n=100, p=2), first_chunk=5,
                   last_chunk=10)

    def test_chunks_never_below_last(self):
        s = create("tss", SchedulingParams(n=500, p=4), first_chunk=50,
                   last_chunk=5)
        sizes = chunk_sizes(s)
        assert all(x >= 5 for x in sizes[:-1])

    def test_single_chunk_degenerate(self):
        s = create("tss", SchedulingParams(n=10, p=1), first_chunk=10,
                   last_chunk=10)
        assert chunk_sizes(s) == [10]

    def test_monotone_nonincreasing(self):
        s = create("tss", SchedulingParams(n=2000, p=8))
        sizes = chunk_sizes(s)
        assert sizes == sorted(sizes, reverse=True)
