"""Tests for the Gantt renderer and Paje trace export."""

from __future__ import annotations

import pytest

from repro.core.params import SchedulingParams
from repro.core.registry import make_factory
from repro.directsim import DirectSimulator
from repro.simgrid.visualization import (
    ascii_gantt,
    paje_trace,
    save_paje_trace,
    utilization_summary,
    worker_timelines,
)
from repro.workloads import ConstantWorkload, ExponentialWorkload


def recorded_run(n=60, p=3, technique="gss", workload=None, seed=0):
    params = SchedulingParams(n=n, p=p, h=0.0, mu=1.0, sigma=1.0)
    sim = DirectSimulator(
        params, workload or ConstantWorkload(1.0), record_chunks=True
    )
    return sim.run(make_factory(technique), seed=seed)


class TestAsciiGantt:
    def test_renders_one_row_per_worker(self):
        result = recorded_run(p=3)
        text = ascii_gantt(result)
        assert text.count("w0") == 1
        assert text.count("w2") == 1
        assert "makespan" in text

    def test_requires_chunk_log(self):
        params = SchedulingParams(n=10, p=2)
        sim = DirectSimulator(params, ConstantWorkload(1.0))
        result = sim.run(make_factory("ss"))
        with pytest.raises(ValueError, match="record_chunks"):
            ascii_gantt(result)

    def test_busy_worker_painted(self):
        result = recorded_run(technique="stat")
        text = ascii_gantt(result, width=40)
        # STAT keeps every worker busy the whole run: no idle dots in rows.
        for line in text.splitlines()[1:-1]:
            body = line.split("|")[1]
            assert "." not in body

    def test_worker_cap(self):
        result = recorded_run(n=40, p=8)
        text = ascii_gantt(result, max_workers=4)
        assert "more workers" in text


class TestUtilization:
    def test_summary_rows(self):
        result = recorded_run(p=4, n=100)
        text = utilization_summary(result)
        assert len(text.splitlines()) == 5  # header + 4 workers
        assert "busy%" in text

    def test_stat_full_utilization(self):
        result = recorded_run(technique="stat", p=3, n=99)
        text = utilization_summary(result)
        assert text.count("100.0%") == 3


class TestPaje:
    def test_trace_structure(self):
        result = recorded_run()
        trace = paje_trace(result)
        assert trace.startswith("%EventDef")
        assert '"compute"' in trace
        assert '"idle"' in trace
        # One container per worker plus the platform.
        assert trace.count("PajeDefineContainerType") == 1
        assert trace.count("2 0.000000 C_w") == result.p

    def test_events_time_ordered(self):
        result = recorded_run(workload=ExponentialWorkload(1.0), seed=5)
        times = [
            float(line.split()[1])
            for line in paje_trace(result).splitlines()
            if line.startswith("3 ")
        ]
        assert times == sorted(times)

    def test_state_events_match_chunks(self):
        result = recorded_run()
        trace = paje_trace(result)
        computes = trace.count('"compute"')
        assert computes == result.num_chunks

    def test_save(self, tmp_path):
        result = recorded_run()
        path = tmp_path / "run.trace"
        save_paje_trace(result, path)
        assert path.read_text() == paje_trace(result)

    def test_requires_chunk_log(self):
        params = SchedulingParams(n=10, p=2)
        result = DirectSimulator(params, ConstantWorkload(1.0)).run(
            make_factory("ss")
        )
        with pytest.raises(ValueError):
            paje_trace(result)


class TestWorkerTimelines:
    def test_windows_sorted_and_disjoint(self):
        result = recorded_run(workload=ExponentialWorkload(1.0), seed=2)
        timelines = worker_timelines(result)
        assert set(timelines) == set(range(result.p))
        for windows in timelines.values():
            for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
                assert a1 <= b0 + 1e-9
                assert a0 <= a1

    def test_total_window_time_equals_compute(self):
        result = recorded_run()
        timelines = worker_timelines(result)
        for w, windows in timelines.items():
            total = sum(b - a for a, b in windows)
            assert total == pytest.approx(result.compute_times[w])
