"""Tests for WF (weighted factoring) and TAP (taper)."""

from __future__ import annotations

import math

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create
from repro.core.techniques.taper import taper_chunk


class TestWeightedFactoring:
    def test_homogeneous_weights_behave_like_factoring(self):
        params = SchedulingParams(n=1000, p=4, mu=1.0, sigma=1.0)
        s = create("wf", params)
        sizes = chunk_sizes(s)
        assert sum(sizes) == 1000
        # First-batch chunks equal under equal weights, up to the final
        # chunk absorbing the ceil() rounding of the batch total.
        assert max(sizes[:4]) - min(sizes[:4]) <= 1

    def test_weighted_shares_proportional(self):
        params = SchedulingParams(
            n=1000, p=2, mu=1.0, sigma=0.5, weights=(1.0, 3.0)
        )
        s = create("wf", params)
        a = s.next_chunk(0)
        b = s.next_chunk(1)
        # Worker 1 is three times faster, so it gets ~3x the tasks.
        assert b > 2 * a

    def test_conservation_with_weights(self):
        params = SchedulingParams(
            n=777, p=3, mu=1.0, sigma=1.0, weights=(1.0, 2.0, 4.0)
        )
        assert sum(chunk_sizes(create("wf", params))) == 777

    def test_fast_worker_requesting_twice_in_batch_gets_fallback(self):
        params = SchedulingParams(
            n=1000, p=2, mu=1.0, sigma=0.5, weights=(1.0, 1.0)
        )
        s = create("wf", params)
        first = s.next_chunk(0)
        second = s.next_chunk(0)  # same worker again, same batch
        assert second >= 1
        assert first + second <= 1000

    def test_requires_mu_sigma(self):
        with pytest.raises(ValueError, match="requires parameters"):
            create("wf", SchedulingParams(n=10, p=2))


class TestTaperChunk:
    def test_zero_variance_equals_guided(self):
        assert taper_chunk(1000, 4, 1.0, 0.0, 1.3) == 250

    def test_margin_reduces_chunk(self):
        with_margin = taper_chunk(1000, 4, 1.0, 1.0, 1.3)
        without = taper_chunk(1000, 4, 1.0, 0.0, 1.3)
        assert with_margin < without

    def test_formula(self):
        r, p, mu, sigma, alpha = 1000, 4, 1.0, 1.0, 1.3
        v = alpha * sigma / mu
        x = r / p
        expected = x + v * v / 2 - v * math.sqrt(2 * x + v * v / 4)
        assert taper_chunk(r, p, mu, sigma, alpha) == max(
            1, math.ceil(expected)
        )

    def test_floors_at_one(self):
        assert taper_chunk(1, 64, 1.0, 10.0, 2.0) == 1

    def test_zero_remaining(self):
        assert taper_chunk(0, 4, 1.0, 1.0, 1.3) == 0


class TestTaperScheduler:
    def test_conservation(self):
        params = SchedulingParams(n=1000, p=4, mu=1.0, sigma=1.0)
        assert sum(chunk_sizes(create("tap", params))) == 1000

    def test_decreasing_sizes(self):
        params = SchedulingParams(n=5000, p=4, mu=1.0, sigma=1.0)
        sizes = chunk_sizes(create("tap", params))
        assert sizes == sorted(sizes, reverse=True)

    def test_alpha_override(self):
        params = SchedulingParams(n=1000, p=4, mu=1.0, sigma=1.0)
        bold = create("tap", params, alpha=0.5)
        cautious = create("tap", params, alpha=3.0)
        assert bold.next_chunk(0) > cautious.next_chunk(0)

    def test_invalid_alpha(self):
        params = SchedulingParams(n=10, p=2, mu=1.0, sigma=1.0)
        with pytest.raises(ValueError, match="alpha"):
            create("tap", params, alpha=-1.0)
