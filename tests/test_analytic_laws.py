"""Analytic laws of the chunk sequences.

The published analyses give closed forms for scheduling-operation counts
and chunk structures; the implementations must obey them exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


class TestChunkCountLaws:
    def test_ss_exactly_n_operations(self):
        for n in (1, 7, 100, 999):
            s = create("ss", SchedulingParams(n=n, p=5))
            chunk_sizes(s)
            assert s.num_scheduling_operations == n

    def test_stat_exactly_min_n_p_operations(self):
        for n, p in ((100, 4), (3, 8), (64, 64)):
            s = create("stat", SchedulingParams(n=n, p=p))
            chunk_sizes(s)
            assert s.num_scheduling_operations == min(
                n, math.ceil(n / math.ceil(n / p))
            )

    def test_css_ceil_n_over_k_operations(self):
        for n, k in ((100, 7), (1000, 100), (5, 10)):
            s = create("css", SchedulingParams(n=n, p=4), k=k)
            chunk_sizes(s)
            assert s.num_scheduling_operations == math.ceil(n / k)

    def test_gss_logarithmic_operations(self):
        # GSS chunk count is Theta(p ln(n/p)): each round of p requests
        # shrinks the remainder by factor (1-1/p)^p ~ 1/e.
        n, p = 100_000, 16
        s = create("gss", SchedulingParams(n=n, p=p))
        chunk_sizes(s)
        c = s.num_scheduling_operations
        expected = p * math.log(n / p)
        assert 0.5 * expected < c < 3.0 * expected + p

    def test_tss_matches_planned_chunk_count(self):
        for n, p in ((1000, 4), (10_000, 16), (100_000, 64)):
            s = create("tss", SchedulingParams(n=n, p=p))
            planned = s.num_planned_chunks
            chunk_sizes(s)
            # Rounding can add/remove a couple of chunks at the tail.
            assert abs(s.num_scheduling_operations - planned) <= max(
                3, planned * 0.1
            )

    def test_fac2_operations_about_2p_log(self):
        # FAC2 halves per batch of p chunks: ~ p * log2(n/p) operations
        # (each batch gives every PE one chunk until chunks hit 1).
        n, p = 65_536, 8
        s = create("fac2", SchedulingParams(n=n, p=p))
        chunk_sizes(s)
        c = s.num_scheduling_operations
        expected = p * math.log2(n / p)
        assert 0.5 * expected < c < 2.0 * expected

    def test_fsc_operations_ceil_n_over_k(self):
        params = SchedulingParams(n=4096, p=8, h=0.5, sigma=1.0)
        s = create("fsc", params)
        k = s.k
        chunk_sizes(s)
        assert s.num_scheduling_operations == math.ceil(4096 / k)


class TestSumLaws:
    def test_fac2_batch_sums_halve(self):
        n, p = 4096, 4
        s = create("fac2", SchedulingParams(n=n, p=p))
        sizes = chunk_sizes(s)
        # First batch sums to ~n/2, second to ~n/4, ...
        i = 0
        remaining = n
        for _ in range(4):
            batch = sizes[i:i + p]
            if len(batch) < p:
                break
            total = sum(batch)
            assert total == pytest.approx(remaining / 2, rel=0.05)
            remaining -= total
            i += p

    def test_gss_remaining_decays_geometrically(self):
        n, p = 10_000, 10
        s = create("gss", SchedulingParams(n=n, p=p))
        sizes = chunk_sizes(s)
        remaining = n
        for size in sizes[:20]:
            assert size == math.ceil(remaining / p)
            remaining -= size

    def test_tss_consecutive_difference_is_delta(self):
        s = create("tss", SchedulingParams(n=100_000, p=8),
                   first_chunk=1000, last_chunk=100)
        sizes = chunk_sizes(s)
        deltas = [a - b for a, b in zip(sizes[:10], sizes[1:11])]
        assert all(abs(d - s.delta) <= 1.0 for d in deltas)


class TestOverheadAccountingLaws:
    def test_post_hoc_ss_equals_hn_over_p_plus_idle(self):
        from repro.core.registry import make_factory
        from repro.directsim import DirectSimulator
        from repro.workloads import ConstantWorkload

        n, p, h = 1000, 8, 0.25
        params = SchedulingParams(n=n, p=p, h=h)
        result = DirectSimulator(params, ConstantWorkload(1.0)).run(
            make_factory("ss")
        )
        idle = sum(result.wasted_times) / p
        assert result.average_wasted_time == pytest.approx(
            idle + h * n / p
        )

    def test_makespan_lower_bound(self):
        """Makespan >= total work / p for every technique (homogeneous)."""
        from repro.core.registry import make_factory
        from repro.directsim import DirectSimulator
        from repro.workloads import ExponentialWorkload

        params = SchedulingParams(n=512, p=8, h=0.0, mu=1.0, sigma=1.0)
        sim = DirectSimulator(params, ExponentialWorkload(1.0))
        for name in ("stat", "gss", "fac2", "bold"):
            r = sim.run(make_factory(name), seed=11)
            assert r.makespan >= r.total_task_time / params.p - 1e-9
