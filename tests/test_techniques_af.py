"""Tests for AF (adaptive factoring)."""

from __future__ import annotations

import math

import pytest

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create
from repro.core.techniques.adaptive_factoring import af_chunk


class TestAfChunkFormula:
    def test_homogeneous_estimates(self):
        # D = p * sigma^2/mu; T = R mu / p.
        r, p, mu, var = 1000, 4, 1.0, 1.0
        d = p * var / mu
        t = r / (p / mu)
        expected = (d + 2 * t - math.sqrt(d * d + 4 * d * t)) / (2 * mu)
        got = af_chunk(r, [mu] * p, [var] * p, worker=0)
        assert got == max(1, math.ceil(expected))

    def test_zero_variance_gives_even_share(self):
        # D = 0 -> chunk = T / mu = R/p.
        assert af_chunk(1000, [1.0] * 4, [0.0] * 4, 0) == 250

    def test_slow_worker_gets_smaller_chunk(self):
        mu = [1.0, 4.0]           # worker 1 is 4x slower per task
        var = [1.0, 1.0]
        fast = af_chunk(1000, mu, var, 0)
        slow = af_chunk(1000, mu, var, 1)
        assert slow < fast

    def test_floors_at_one(self):
        assert af_chunk(2, [1.0] * 8, [100.0] * 8, 0) == 1

    def test_zero_remaining(self):
        assert af_chunk(0, [1.0], [1.0], 0) == 0


class TestAfScheduler:
    def test_conservation(self):
        params = SchedulingParams(n=2048, p=4)
        assert sum(chunk_sizes(create("af", params))) == 2048

    def test_warmup_uses_fac2_style_chunks(self):
        params = SchedulingParams(n=1024, p=4)
        s = create("af", params)
        assert s.next_chunk(0) == math.ceil(1024 / 8)

    def test_estimates_populated_after_feedback(self):
        params = SchedulingParams(n=1024, p=2)
        s = create("af", params)
        for _ in range(2):
            size = s.next_chunk(0)
            s.record_finished(0, size, elapsed=size * 2.0)
        mu, var = s.estimates_for(0)
        assert mu == pytest.approx(2.0)
        assert var == pytest.approx(0.0, abs=1e-12)

    def test_no_estimates_before_feedback(self):
        s = create("af", SchedulingParams(n=10, p=2))
        mu, var = s.estimates_for(0)
        assert mu is None
        assert var is None

    def test_adapts_to_heterogeneous_speeds(self):
        params = SchedulingParams(n=8192, p=2)
        s = create("af", params)
        got = {0: 0, 1: 0}
        worker = 0
        while not s.done:
            size = s.next_chunk(worker)
            if size == 0:
                break
            got[worker] += size
            speed = 1.0 if worker == 0 else 5.0
            s.record_finished(worker, size, elapsed=size / speed)
            worker = 1 - worker
        assert got[1] > got[0]

    def test_marked_adaptive(self):
        assert create("af", SchedulingParams(n=10, p=2)).adaptive
