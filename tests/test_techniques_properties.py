"""Property-based tests on the DLS techniques (hypothesis).

Invariants every technique must satisfy for any valid configuration and
any request pattern:

* conservation — assigned chunk sizes sum to exactly ``n``;
* positivity — every assigned chunk has size >= 1;
* progress — the scheduler reaches ``done`` in finitely many operations;
* bounded operations — never more scheduling operations than tasks;
* determinism — identical inputs and request order give identical chunks
  (for the non-adaptive techniques).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create

from conftest import ALL_TECHNIQUES, NON_ADAPTIVE

# Keep n moderate so SS (n operations) stays fast under hypothesis.
configs = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=0, max_value=2000),
        "p": st.integers(min_value=1, max_value=64),
        "h": st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        "mu": st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        "sigma": st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    }
)


def make_params(cfg) -> SchedulingParams:
    return SchedulingParams(**cfg)


@settings(max_examples=25, deadline=None)
@given(cfg=configs, name=st.sampled_from(ALL_TECHNIQUES))
def test_conservation_and_positivity(cfg, name):
    params = make_params(cfg)
    sizes = chunk_sizes(create(name, params))
    assert sum(sizes) == params.n
    assert all(s >= 1 for s in sizes)


@settings(max_examples=25, deadline=None)
@given(cfg=configs, name=st.sampled_from(ALL_TECHNIQUES))
def test_bounded_scheduling_operations(cfg, name):
    params = make_params(cfg)
    scheduler = create(name, params)
    sizes = chunk_sizes(scheduler)
    assert len(sizes) <= max(params.n, 1)
    assert scheduler.num_scheduling_operations == len(sizes)


@settings(max_examples=25, deadline=None)
@given(cfg=configs, name=st.sampled_from(NON_ADAPTIVE))
def test_determinism_of_non_adaptive(cfg, name):
    params = make_params(cfg)
    a = chunk_sizes(create(name, params))
    b = chunk_sizes(create(name, params))
    assert a == b


@settings(max_examples=25, deadline=None)
@given(
    cfg=configs,
    name=st.sampled_from(ALL_TECHNIQUES),
    order=st.lists(st.integers(min_value=0, max_value=63), max_size=50),
)
def test_arbitrary_request_orders(cfg, name, order):
    """Any sequence of worker requests drains the scheduler correctly."""
    params = make_params(cfg)
    scheduler = create(name, params)
    total = 0
    # First follow the arbitrary prefix of requests...
    for w in order:
        if scheduler.done:
            break
        size = scheduler.next_chunk(w % params.p)
        total += size
        scheduler.record_finished(w % params.p, size, elapsed=size * 1.0)
    # ...then drain round-robin.
    w = 0
    while not scheduler.done:
        size = scheduler.next_chunk(w)
        total += size
        scheduler.record_finished(w, size, elapsed=size * 1.0)
        w = (w + 1) % params.p
    assert total == params.n


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    p=st.integers(min_value=1, max_value=128),
)
def test_gss_chunks_nonincreasing(n, p):
    sizes = chunk_sizes(create("gss", SchedulingParams(n=n, p=p)))
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    p=st.integers(min_value=1, max_value=128),
)
def test_tss_chunks_nonincreasing(n, p):
    sizes = chunk_sizes(create("tss", SchedulingParams(n=n, p=p)))
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    p=st.integers(min_value=1, max_value=64),
)
def test_fac2_batch_structure(n, p):
    """FAC2 chunk sizes halve batch over batch (up to rounding)."""
    sizes = chunk_sizes(create("fac2", SchedulingParams(n=n, p=p)))
    # Batch boundaries occur whenever the size changes; sizes within a
    # run of equal values form batches of at most p chunks (the last
    # chunk of a batch may be clipped).
    previous = sizes[0]
    for size in sizes[1:]:
        assert size <= previous or size == 1
        previous = max(previous, size)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=2000),
    p=st.integers(min_value=2, max_value=32),
    h=st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
)
def test_stat_always_fewest_operations(n, p, h):
    """No technique schedules fewer chunks than STAT (= min(n, p))."""
    params = SchedulingParams(n=n, p=p, h=h, mu=1.0, sigma=1.0)
    stat_ops = len(chunk_sizes(create("stat", params)))
    for name in ("gss", "tss", "fac", "fac2", "bold", "tap"):
        ops = len(chunk_sizes(create(name, params)))
        assert ops >= stat_ops, name
