"""Tests for the Scheduler base class (repro.core.base)."""

from __future__ import annotations

import pytest

from repro.core.base import PARAM_SYMBOLS, ChunkRecord, Scheduler, chunk_sizes
from repro.core.params import SchedulingParams
from repro.core.registry import create


class FixedFive(Scheduler):
    """Toy technique assigning five tasks per request."""

    name = "fixed-five-test"
    label = "F5"
    requires = frozenset()

    def _chunk_size(self, worker: int) -> int:
        return 5


def make(n=17, p=3) -> FixedFive:
    return FixedFive(SchedulingParams(n=n, p=p))


class TestNextChunk:
    def test_chunks_clip_to_remaining(self):
        s = make(n=12)
        assert s.next_chunk(0) == 5
        assert s.next_chunk(1) == 5
        assert s.next_chunk(2) == 2  # clipped
        assert s.next_chunk(0) == 0  # exhausted

    def test_conservation(self):
        s = make(n=17)
        total = 0
        while not s.done:
            total += s.next_chunk(0)
        assert total == 17

    def test_done_flag(self):
        s = make(n=5)
        assert not s.done
        s.next_chunk(0)
        assert s.done

    def test_zero_task_scheduler_immediately_done(self):
        s = make(n=0)
        assert s.done
        assert s.next_chunk(0) == 0

    def test_chunk_records_have_contiguous_starts(self):
        s = make(n=13)
        while not s.done:
            s.next_chunk(0)
        chunks = s.chunks
        assert [c.index for c in chunks] == list(range(len(chunks)))
        next_start = 0
        for c in chunks:
            assert c.start == next_start
            next_start += c.size
        assert next_start == 13

    def test_last_chunk_tracks_latest(self):
        s = make()
        assert s.last_chunk is None
        s.next_chunk(2)
        assert s.last_chunk == ChunkRecord(index=0, worker=2, start=0, size=5)

    def test_num_scheduling_operations(self):
        s = make(n=11)
        while not s.done:
            s.next_chunk(0)
        assert s.num_scheduling_operations == 3  # 5 + 5 + 1


class TestRecordFinished:
    def test_outstanding_bookkeeping(self):
        s = make(n=10)
        s.next_chunk(0)
        assert s.state.outstanding == 5
        assert s.state.in_flight_plus_remaining == 10
        s.record_finished(0, 5, elapsed=5.0)
        assert s.state.outstanding == 0
        assert s.state.in_flight_plus_remaining == 5

    def test_over_reporting_rejected(self):
        s = make()
        s.next_chunk(0)
        with pytest.raises(ValueError, match="outstanding"):
            s.record_finished(0, 6, elapsed=1.0)

    def test_negative_size_rejected(self):
        s = make()
        s.next_chunk(0)
        with pytest.raises(ValueError, match="non-negative"):
            s.record_finished(0, -1, elapsed=1.0)


class TestValidateParams:
    def test_missing_required_mu_raises(self):
        # FAC requires mu and sigma (Table II).
        with pytest.raises(ValueError, match="requires parameters"):
            create("fac", SchedulingParams(n=10, p=2))

    def test_missing_required_sigma_raises(self):
        with pytest.raises(ValueError, match="sigma"):
            create("fsc", SchedulingParams(n=10, p=2, h=0.5))


class TestChunkSizesHelper:
    def test_drains_scheduler(self):
        sizes = chunk_sizes(make(n=23))
        assert sum(sizes) == 23
        assert all(x > 0 for x in sizes)

    def test_drains_adaptive_scheduler(self):
        params = SchedulingParams(n=64, p=4, h=0.1, mu=1.0, sigma=0.5)
        sizes = chunk_sizes(create("af", params))
        assert sum(sizes) == 64


def test_param_symbols_match_table1():
    assert PARAM_SYMBOLS == ("p", "n", "r", "h", "mu", "sigma", "f", "l", "m")
