"""Tests for campaign persistence and regression checking."""

from __future__ import annotations

import pytest

from repro.experiments.bold_experiments import run_bold_experiment
from repro.experiments.persistence import (
    CampaignRecord,
    ExperimentSeries,
    compare_campaigns,
    regression_check,
)
from repro.experiments.tss_experiments import run_tss_experiment


def small_record(offset=0.0) -> CampaignRecord:
    record = CampaignRecord(metadata={"seed": 1})
    record.add(ExperimentSeries(
        experiment="bold-n256",
        keys=[2, 8],
        series={"SS": [64.0 + offset, 16.0 + offset],
                "FAC2": [4.0 + offset, 5.0 + offset]},
    ))
    return record


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        record = small_record()
        path = tmp_path / "campaign.json"
        record.save(path)
        back = CampaignRecord.load(path)
        assert back.metadata["seed"] == 1
        assert "provenance" in back.metadata
        assert back.experiments["bold-n256"].series == (
            record.experiments["bold-n256"].series
        )

    def test_add_bold_result(self):
        result = run_bold_experiment(
            n=256, pe_counts=(2, 4), techniques=("SS", "FAC2"),
            runs=2, simulator="direct", seed=3,
        )
        record = CampaignRecord()
        series = record.add_bold_result(result)
        assert series.experiment == "bold-n256"
        assert series.provenance["runs"] == 2
        assert set(series.series) == {"SS", "FAC2"}

    def test_add_tss_result(self):
        result = run_tss_experiment(2, pe_counts=(2, 8))
        record = CampaignRecord()
        series = record.add_tss_result(result)
        assert series.experiment == "tss-exp2"
        assert series.keys == [2, 8]

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # A crash mid-serialisation must leave the previous file intact
        # and no temp file behind.
        import json as json_module

        import repro.experiments.persistence as persistence

        path = tmp_path / "campaign.json"
        small_record().save(path)
        before = path.read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(persistence.json, "dumps", boom)
        with pytest.raises(RuntimeError, match="mid-write"):
            small_record(offset=9.0).save(path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]
        assert json_module.loads(before)  # still valid JSON

    def test_save_records_provenance(self, tmp_path):
        path = tmp_path / "campaign.json"
        small_record().save(path)
        back = CampaignRecord.load(path)
        provenance = back.metadata["provenance"]
        assert provenance["package_version"]
        assert provenance["python"]

    def test_save_keeps_caller_provenance(self, tmp_path):
        record = small_record()
        record.metadata["provenance"] = {"origin": "caller"}
        path = tmp_path / "campaign.json"
        record.save(path)
        back = CampaignRecord.load(path)
        assert back.metadata["provenance"] == {"origin": "caller"}

    def test_roundtrip_through_disk_with_real_results(self, tmp_path):
        result = run_bold_experiment(
            n=256, pe_counts=(2,), techniques=("FAC2",),
            runs=2, simulator="direct", seed=3,
        )
        record = CampaignRecord(metadata={"purpose": "test"})
        record.add_bold_result(result)
        path = tmp_path / "c.json"
        record.save(path)
        back = CampaignRecord.load(path)
        assert back.experiments["bold-n256"].series["FAC2"] == (
            pytest.approx(result.values["FAC2"])
        )


class TestComparison:
    def test_identical_campaigns_have_zero_discrepancy(self):
        comparison = compare_campaigns(small_record(), small_record())
        assert comparison.problems == []
        for row in comparison.rows["bold-n256"]:
            assert row.max_abs_discrepancy == 0.0

    def test_shifted_campaign_detected(self):
        comparison = compare_campaigns(small_record(offset=2.0), small_record())
        fac2 = next(
            r for r in comparison.rows["bold-n256"] if r.technique == "FAC2"
        )
        assert fac2.max_abs_relative_discrepancy == pytest.approx(50.0)

    def test_missing_experiment_reported_as_problem(self):
        # Regression: experiments present in only one record used to be
        # silently skipped, so a vanished series diffed clean.
        a = small_record()
        b = CampaignRecord()
        comparison = compare_campaigns(a, b)
        assert comparison.rows == {}
        assert comparison.problems == [
            "bold-n256: only in the current campaign"
        ]
        reverse = compare_campaigns(b, a)
        assert reverse.problems == [
            "bold-n256: only in the reference campaign"
        ]

    def test_missing_technique_reported_as_problem(self):
        a = small_record()
        b = small_record()
        del b.experiments["bold-n256"].series["FAC2"]
        comparison = compare_campaigns(a, b)
        assert comparison.problems == [
            "bold-n256 / FAC2: only in the current campaign"
        ]
        # The shared technique still gets its discrepancy rows.
        assert [r.technique for r in comparison.rows["bold-n256"]] == ["SS"]

    def test_key_mismatch_rejected(self):
        a = small_record()
        b = small_record()
        b.experiments["bold-n256"].keys = [2, 16]
        with pytest.raises(ValueError, match="keys differ"):
            compare_campaigns(a, b)


class TestRegressionCheck:
    def test_within_tolerance_passes(self):
        assert regression_check(small_record(), small_record()) == []

    def test_drift_reported(self):
        problems = regression_check(
            small_record(offset=3.0), small_record(), tolerance_percent=10.0
        )
        assert problems
        assert any("FAC2" in p for p in problems)

    def test_structural_mismatch_is_a_regression(self):
        # A vanished experiment fails the check at any tolerance.
        problems = regression_check(
            CampaignRecord(), small_record(), tolerance_percent=1e9
        )
        assert problems == ["bold-n256: only in the reference campaign"]

    def test_report_names_cell(self):
        problems = regression_check(
            small_record(offset=3.0), small_record(), tolerance_percent=10.0
        )
        assert any("@ 2" in p for p in problems)
