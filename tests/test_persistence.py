"""Tests for campaign persistence and regression checking."""

from __future__ import annotations

import pytest

from repro.experiments.bold_experiments import run_bold_experiment
from repro.experiments.persistence import (
    CampaignRecord,
    ExperimentSeries,
    compare_campaigns,
    regression_check,
)
from repro.experiments.tss_experiments import run_tss_experiment


def small_record(offset=0.0) -> CampaignRecord:
    record = CampaignRecord(metadata={"seed": 1})
    record.add(ExperimentSeries(
        experiment="bold-n256",
        keys=[2, 8],
        series={"SS": [64.0 + offset, 16.0 + offset],
                "FAC2": [4.0 + offset, 5.0 + offset]},
    ))
    return record


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        record = small_record()
        path = tmp_path / "campaign.json"
        record.save(path)
        back = CampaignRecord.load(path)
        assert back.metadata == {"seed": 1}
        assert back.experiments["bold-n256"].series == (
            record.experiments["bold-n256"].series
        )

    def test_add_bold_result(self):
        result = run_bold_experiment(
            n=256, pe_counts=(2, 4), techniques=("SS", "FAC2"),
            runs=2, simulator="direct", seed=3,
        )
        record = CampaignRecord()
        series = record.add_bold_result(result)
        assert series.experiment == "bold-n256"
        assert series.provenance["runs"] == 2
        assert set(series.series) == {"SS", "FAC2"}

    def test_add_tss_result(self):
        result = run_tss_experiment(2, pe_counts=(2, 8))
        record = CampaignRecord()
        series = record.add_tss_result(result)
        assert series.experiment == "tss-exp2"
        assert series.keys == [2, 8]

    def test_roundtrip_through_disk_with_real_results(self, tmp_path):
        result = run_bold_experiment(
            n=256, pe_counts=(2,), techniques=("FAC2",),
            runs=2, simulator="direct", seed=3,
        )
        record = CampaignRecord(metadata={"purpose": "test"})
        record.add_bold_result(result)
        path = tmp_path / "c.json"
        record.save(path)
        back = CampaignRecord.load(path)
        assert back.experiments["bold-n256"].series["FAC2"] == (
            pytest.approx(result.values["FAC2"])
        )


class TestComparison:
    def test_identical_campaigns_have_zero_discrepancy(self):
        rows = compare_campaigns(small_record(), small_record())
        for row in rows["bold-n256"]:
            assert row.max_abs_discrepancy == 0.0

    def test_shifted_campaign_detected(self):
        rows = compare_campaigns(small_record(offset=2.0), small_record())
        fac2 = next(
            r for r in rows["bold-n256"] if r.technique == "FAC2"
        )
        assert fac2.max_abs_relative_discrepancy == pytest.approx(50.0)

    def test_missing_experiment_skipped(self):
        a = small_record()
        b = CampaignRecord()
        assert compare_campaigns(a, b) == {}

    def test_key_mismatch_rejected(self):
        a = small_record()
        b = small_record()
        b.experiments["bold-n256"].keys = [2, 16]
        with pytest.raises(ValueError, match="keys differ"):
            compare_campaigns(a, b)


class TestRegressionCheck:
    def test_within_tolerance_passes(self):
        assert regression_check(small_record(), small_record()) == []

    def test_drift_reported(self):
        problems = regression_check(
            small_record(offset=3.0), small_record(), tolerance_percent=10.0
        )
        assert problems
        assert any("FAC2" in p for p in problems)

    def test_report_names_cell(self):
        problems = regression_check(
            small_record(offset=3.0), small_record(), tolerance_percent=10.0
        )
        assert any("@ 2" in p for p in problems)
