"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.params import SchedulingParams
from repro.experiments.runner import (
    RunTask,
    resolve_workers,
    run_campaign,
    run_replicated,
)
from repro.obs import (
    Counters,
    RunStats,
    counters,
    disable,
    drain_spans,
    enable,
    is_enabled,
    journal_to,
    load_journal,
    span,
    summarize_journal,
)
from repro.obs.core import _NULL_SPAN
from repro.obs.provenance import capture_provenance, platform_xml_hash
from repro.workloads import ExponentialWorkload


@pytest.fixture(autouse=True)
def _tracing_off():
    """Leave the process-global tracing switch as each test found it."""
    yield
    disable()
    counters().clear()


def small_task(technique="fac2", simulator="msg-fast", **kwargs) -> RunTask:
    return RunTask(
        technique=technique,
        params=SchedulingParams(n=256, p=4),
        workload=ExponentialWorkload(1.0),
        simulator=simulator,
        **kwargs,
    )


class TestSpans:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert not is_enabled()
        assert span("a") is span("b", key=1) is _NULL_SPAN
        with span("a"):
            pass
        assert drain_spans() == []

    def test_enabled_span_records_duration_and_attributes(self):
        enable()
        with span("work", technique="ss") as s:
            pass
        assert s.duration is not None and s.duration >= 0.0
        spans = drain_spans()
        assert [sp.name for sp in spans] == ["work"]
        assert spans[0].attributes == {"technique": "ss"}
        assert spans[0].to_json()["technique"] == "ss"
        assert drain_spans() == []  # drained

    def test_disable_discards_pending_spans(self):
        enable()
        with span("pending"):
            pass
        disable()
        assert drain_spans() == []

    def test_runner_emits_spans_when_enabled(self):
        enable()
        run_campaign([small_task()], processes=1)
        names = [s.name for s in drain_spans()]
        assert "run_campaign" in names


class TestCounters:
    def test_incr_and_value(self):
        c = Counters()
        c.incr("events")
        c.incr("events", 4)
        assert c.value("events") == 5
        assert c.value("missing") == 0
        assert c.as_dict() == {"events": 5}
        c.clear()
        assert len(c) == 0

    def test_global_counters_always_count(self):
        counters().incr("smoke")
        assert counters().value("smoke") == 1


class TestRunStats:
    def test_json_roundtrip(self):
        stats = RunStats(
            backend="msg", events=10, heap_peak=3, live_peak=5,
            wall_time=0.5, extra={"k": 1},
        )
        back = RunStats.from_json(stats.to_json())
        assert back == stats
        assert back.events_per_second == pytest.approx(20.0)

    def test_every_run_result_carries_stats(self):
        for simulator in ("msg", "msg-fast", "direct", "direct-batch"):
            result = small_task(simulator=simulator).execute()
            assert result.stats is not None, simulator
            assert result.stats.backend == simulator
            assert result.stats.events > 0
            assert result.stats.wall_time > 0

    def test_stats_excluded_from_result_equality(self):
        task = small_task(seed_entropy=(1,))
        a, b = task.execute(), task.execute()
        b.stats.wall_time = a.stats.wall_time + 1.0
        assert a == b  # observability metadata is not a result

    def test_stats_survive_pickling_through_the_process_pool(self):
        results = run_replicated(
            small_task(), 4, campaign_seed=11, processes=2
        )
        assert len(results) == 4
        for result in results:
            assert result.stats is not None
            assert result.stats.backend == "msg-fast"
            assert pickle.loads(pickle.dumps(result.stats)) == result.stats


class TestJournal:
    def test_journal_lines_are_valid_json_with_provenance_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with journal_to(path):
            run_replicated(small_task(), 3, campaign_seed=5)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]  # every line parses
        assert records[0]["kind"] == "provenance"
        assert records[0]["package_version"]
        task_records = [r for r in records if r["kind"] == "task"]
        assert len(task_records) == 1
        record = task_records[0]
        assert record["technique"] == "fac2"
        assert record["runs"] == 3
        assert record["backend"] == "msg-fast"
        assert record["campaign_seed"] == 5
        assert record["wall_time_s"] > 0

    def test_run_campaign_writes_one_record_per_task(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        tasks = [
            small_task(seed_entropy=(1,)),
            small_task(technique="gss", seed_entropy=(2,)),
        ]
        with journal_to(path):
            run_campaign(tasks, processes=1)
        records = load_journal(path)
        task_records = [r for r in records if r["kind"] == "task"]
        assert [r["technique"] for r in task_records] == ["fac2", "gss"]
        assert [r["seed_entropy"] for r in task_records] == [[1], [2]]

    def test_fallback_recorded_in_journal(self, tmp_path):
        # awf is adaptive: msg-fast cannot serve it and degrades to msg.
        path = tmp_path / "journal.jsonl"
        with journal_to(path):
            run_replicated(small_task(technique="awf"), 2, campaign_seed=3)
        records = load_journal(path)
        fallbacks = [r for r in records if r["kind"] == "fallback"]
        assert fallbacks and fallbacks[0]["requested"] == "msg-fast"
        assert fallbacks[0]["chosen"] == "msg"
        task_record = next(r for r in records if r["kind"] == "task")
        assert task_record["requested"] == "msg-fast"
        assert task_record["backend"] == "msg"

    def test_no_journal_active_writes_nothing(self, tmp_path):
        # The runner must not require a journal.
        results = run_replicated(small_task(), 2, campaign_seed=1)
        assert len(results) == 2
        assert list(tmp_path.iterdir()) == []

    def test_load_journal_rejects_broken_lines(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "provenance"}\nnot json\n')
        with pytest.raises(ValueError, match="broken.jsonl:2"):
            load_journal(path)


class TestStatsSummary:
    def test_summary_names_backends_and_slowest_tasks(self, tmp_path):
        from repro.backends import drain_fallback_events

        # The process-wide fallback log deduplicates per (cell, hop); an
        # earlier test may already have recorded awf's msg-fast -> msg
        # hop, which would keep it out of this journal.
        drain_fallback_events()
        path = tmp_path / "journal.jsonl"
        with journal_to(path):
            run_replicated(small_task(), 3, campaign_seed=5)
            run_replicated(
                small_task(technique="awf"), 2, campaign_seed=5
            )
        text = summarize_journal(load_journal(path))
        assert "msg-fast" in text
        assert "msg" in text
        assert "capability fallbacks:" in text
        assert "slowest task" in text
        assert "fac2(n=256, p=4)" in text

    def test_summary_groups_fallbacks_by_category(self):
        records = [
            {"kind": "task", "backend": "msg", "requested": "msg-fast",
             "runs": 1, "wall_time_s": 0.1, "events": 10},
            {"kind": "fallback", "requested": "msg-fast", "chosen": "msg",
             "reason": "adaptive technique", "category": "capability"},
            {"kind": "fallback", "requested": "process-pool",
             "chosen": "serial", "reason": "does not pickle",
             "category": "pickle"},
        ]
        text = summarize_journal(records)
        assert "capability fallbacks:" in text
        assert "other fallbacks (pickle):" in text
        assert "process-pool -> serial" in text

    def test_summary_zero_fallbacks_reads_as_such(self):
        records = [
            {"kind": "task", "backend": "direct-batch",
             "requested": "direct-batch", "runs": 2, "wall_time_s": 0.1,
             "events": 20},
        ]
        text = summarize_journal(records)
        assert (
            "fallbacks: none — every task ran on its requested backend"
            in text
        )

    def test_summary_without_tasks_omits_fallback_line(self):
        text = summarize_journal([{"kind": "provenance"}])
        assert "fallbacks" not in text

    def test_summary_advise_section_percentiles_and_hit_share(self):
        records = [
            {"kind": "advise", "best": "fac2", "elapsed_s": 0.004,
             "cache_hits": 8, "cache_misses": 0},
            {"kind": "advise", "best": "fac2", "elapsed_s": 0.021,
             "cache_hits": 8, "cache_misses": 0},
            {"kind": "advise", "best": "gss", "elapsed_s": 0.350,
             "cache_hits": 0, "cache_misses": 8},
        ]
        text = summarize_journal(records)
        # nearest-rank percentiles: p95 of three samples is the max
        assert "p50 0.021s" in text
        assert "p95 0.350s" in text
        assert "cache-hit share 66.7%" in text
        assert "fac2 x2" in text
        assert "favorite: fac2" in text


class TestProvenance:
    def test_capture_provenance_fields(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        data = capture_provenance()
        assert data["package_version"]
        assert data["python"]
        assert data["repro_workers"] == "7"

    def test_platform_xml_hash_is_stable(self):
        from repro.simgrid.platform import star_platform

        platform = star_platform(4)
        assert platform_xml_hash(platform) == platform_xml_hash(platform)
        assert len(platform_xml_hash(platform)) == 64


class TestResolveWorkersValidation:
    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_WORKERS", value)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_WORKERS.*'abc'"):
            resolve_workers(None)

    def test_valid_value_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_argument_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        assert resolve_workers(2) == 2
