"""Tests for the full-campaign driver (repro.experiments.campaign)."""

from __future__ import annotations

import io

from repro.experiments.campaign import run_full_campaign


class TestRunFullCampaign:
    def test_minimal_campaign_writes_report(self):
        buf = io.StringIO()
        elapsed = run_full_campaign(
            out=buf,
            campaign_runs={1024: 1},
            fig9_runs=0,
            include_tss=False,
        )
        text = buf.getvalue()
        assert elapsed > 0
        assert "Table II" in text
        assert "fig5" in text
        assert "fig6" not in text       # not in campaign_runs
        assert "fig9" not in text       # disabled
        assert "total campaign time" in text

    def test_fig9_only(self):
        buf = io.StringIO()
        run_full_campaign(
            out=buf,
            campaign_runs={},
            fig9_runs=3,
            include_tss=False,
        )
        text = buf.getvalue()
        assert "FAC outlier study" in text
